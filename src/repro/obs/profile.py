"""Per-phase profiling hooks with a strict no-op fast path.

The hot paths (``SynthesisMechanism.propose_batch``, the engine's merge,
the approximate privacy test) call :func:`phase` unconditionally.  Unless
a :class:`PhaseProfile` has been activated for the *current thread* via
:func:`profiled`, the context manager yields immediately without reading
the clock — so worker processes (which never activate a profile) and
telemetry-off deployments pay a single thread-local attribute lookup.

Activation is thread-local on purpose: the service executes each fold
synchronously on one dispatcher thread, so the phases measured between
``profiled(...)`` enter and exit belong to exactly that fold.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.clock import Clock

_active = threading.local()


class PhaseProfile:
    """Accumulates ``phase -> (calls, seconds)`` for one activation."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock or Clock()
        self.phases: Dict[str, list] = {}

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        entry = self.phases.get(name)
        if entry is None:
            self.phases[name] = [calls, seconds]
        else:
            entry[0] += calls
            entry[1] += seconds

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"calls": entry[0], "seconds": entry[1]}
            for name, entry in sorted(self.phases.items())
        }


def current_profile() -> Optional[PhaseProfile]:
    return getattr(_active, "profile", None)


@contextmanager
def profiled(profile: PhaseProfile) -> Iterator[PhaseProfile]:
    """Activate ``profile`` for the current thread for the duration."""
    previous = getattr(_active, "profile", None)
    _active.profile = profile
    try:
        yield profile
    finally:
        _active.profile = previous


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a named phase if a profile is active; otherwise do nothing."""
    profile = getattr(_active, "profile", None)
    if profile is None:
        yield
        return
    begin = profile.clock.monotonic()
    try:
        yield
    finally:
        profile.add(name, profile.clock.monotonic() - begin)
