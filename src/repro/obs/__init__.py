"""Dependency-free telemetry for the serving stack.

Three layers, all determinism-safe (zero RNG consumption, timestamps only
from an injectable monotonic clock, one shared torn-tail-tolerant writer):

``trace``
    Hierarchical spans with explicit parent ids keyed by ``request_id``,
    optionally journaled as JSON-lines (same discipline as
    ``BudgetJournal``) and queryable via ``GET /trace/<request_id>``.

``metrics``
    A lock-safe registry of counters, gauges and fixed-bucket histograms
    rendered in Prometheus text exposition format at ``GET /metrics``.

``profile``
    Near-zero-overhead phase timers (sample, privacy test, merge, ...)
    that are inert unless a collector is activated for the current thread,
    so worker processes and telemetry-off deployments pay nothing.

``Telemetry`` bundles the three with the serving stack's standard
instrument catalog.
"""

from repro.obs.clock import Clock, ManualClock, wall_anchor
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PhaseProfile, phase, profiled
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    Span,
    TraceCorruptionError,
    TraceLog,
    Tracer,
    read_trace_log,
)

__all__ = [
    "Clock",
    "Counter",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "PhaseProfile",
    "Span",
    "Telemetry",
    "TraceCorruptionError",
    "TraceLog",
    "Tracer",
    "phase",
    "profiled",
    "read_trace_log",
    "wall_anchor",
]
