"""A lock-safe metrics registry with Prometheus text exposition.

Three instrument kinds — :class:`Counter` (monotonic), :class:`Gauge`
(set/add), and :class:`Histogram` (fixed buckets chosen at registration) —
all optionally labelled.  One ``threading.Lock`` per instrument keeps
updates safe under the service's dispatcher and HTTP threads without a
global bottleneck, and :meth:`MetricsRegistry.render` emits the standard
``# HELP`` / ``# TYPE`` exposition with deterministically sorted metric
names and label sets so the output is stable and diffable.

No external client library is used (the container has none); the format
targets the Prometheus text exposition format version 0.0.4.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    parts = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + parts + "}"


class _Instrument:
    """Shared plumbing: name/help validation, label handling, one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if not labels and not self.labelnames:  # hot path: unlabelled series
            return ()
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def samples(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing value, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}{_render_labels(self.labelnames, key)} "
            f"{_format_value(value)}"
            for key, value in items
        ]


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, utilization, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}{_render_labels(self.labelnames, key)} "
            f"{_format_value(value)}"
            for key, value in items
        ]


class Histogram(_Instrument):
    """Fixed-bucket histogram with cumulative ``_bucket`` samples plus
    ``_sum`` and ``_count``, per the Prometheus convention."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        self.buckets = bounds
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}
        self._totals: Dict[Tuple[str, ...], int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            return self._totals.get(key, 0)

    def sum(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def samples(self) -> List[str]:
        with self._lock:
            keys = sorted(self._totals) or ([()] if not self.labelnames else [])
            counts = {k: list(self._counts.get(k, [0] * len(self.buckets))) for k in keys}
            sums = {k: self._sums.get(k, 0.0) for k in keys}
            totals = {k: self._totals.get(k, 0) for k in keys}
        lines: List[str] = []
        for key in keys:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts[key]):
                cumulative += bucket_count
                labels = _render_labels(
                    self.labelnames + ("le",), key + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            inf_labels = _render_labels(
                self.labelnames + ("le",), key + ("+Inf",)
            )
            lines.append(f"{self.name}_bucket{inf_labels} {totals[key]}")
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(sums[key])}")
            lines.append(f"{self.name}_count{plain} {totals[key]}")
        return lines


class MetricsRegistry:
    """Holds instruments and renders them as Prometheus text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labelnames))

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames, buckets))

    def _register(self, instrument: _Instrument) -> "_Instrument":
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None:
                raise ValueError(
                    f"metric {instrument.name!r} already registered"
                )
            self._instruments[instrument.name] = instrument
        return instrument

    def get(self, name: str) -> _Instrument:
        with self._lock:
            return self._instruments[name]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def render(self) -> str:
        with self._lock:
            instruments = [
                self._instruments[name] for name in sorted(self._instruments)
            ]
        lines: List[str] = []
        for instrument in instruments:
            lines.extend(instrument.header())
            lines.extend(instrument.samples())
        return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> List[str]:
    """Best-effort validation of Prometheus text exposition.  Returns a
    list of problems (empty means valid).  Used by tests and the CI smoke
    scrape so a malformed ``/metrics`` payload fails loudly."""
    problems: List[str] = []
    typed: Dict[str, str] = {}
    helped: set = set()
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? "
        r"([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|\+Inf|-Inf|NaN)$"
    )
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                problems.append(f"line {lineno}: malformed HELP")
            else:
                helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                problems.append(f"line {lineno}: malformed TYPE")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = sample_re.match(line)
        if not match:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = match.group(1)
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            problems.append(f"line {lineno}: sample {name!r} missing TYPE")
        if name not in helped and base not in helped:
            problems.append(f"line {lineno}: sample {name!r} missing HELP")
    return problems
