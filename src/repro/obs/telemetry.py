"""The serving stack's telemetry bundle: tracer + metrics + phase totals.

``ServiceApp`` owns one :class:`Telemetry` (unless constructed with
``telemetry=False``) and threads it into the scheduler, engine pool and
engine event sinks.  The instrument catalog here is the single source of
truth for metric names — the README's metric catalog and the runbook
table mirror it.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Optional

from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfile
from repro.obs.trace import TraceLog, Tracer

_QUEUE_WAIT_BUCKETS = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)
_FOLD_LANE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)
_CHECKOUT_WAIT_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


class Telemetry:
    """One tracer, one metrics registry, and cumulative phase totals."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        trace_log: Optional[str | Path] = None,
        max_traces: int = 256,
    ) -> None:
        self.clock = clock or Clock()
        self.trace_log_path = Path(trace_log) if trace_log else None
        log = TraceLog(self.trace_log_path) if self.trace_log_path else None
        self.tracer = Tracer(clock=self.clock, log=log, max_traces=max_traces)
        self.metrics = MetricsRegistry()
        self._phase_lock = threading.Lock()
        self._phase_totals: Dict[str, list] = {}

        m = self.metrics
        # Request lifecycle.
        self.requests_total = m.counter(
            "repro_requests_total",
            "Generate requests by terminal status.",
            ("status",),
        )
        self.releases_total = m.counter(
            "repro_releases_total", "Committed releases."
        )
        self.released_rows_total = m.counter(
            "repro_released_rows_total", "Rows released to tenants."
        )
        # Scheduler.
        self.queue_wait_seconds = m.histogram(
            "repro_queue_wait_seconds",
            "Scheduler queue wait, recorded at dequeue.",
            buckets=_QUEUE_WAIT_BUCKETS,
        )
        self.queue_depth = m.gauge(
            "repro_queue_depth", "Requests waiting in scheduler queues."
        )
        self.folds_total = m.counter(
            "repro_folds_total", "Engine jobs dispatched (fold windows)."
        )
        self.folded_lanes_total = m.counter(
            "repro_folded_lanes_total",
            "Requests actually executed as fold lanes.",
        )
        self.fold_dropped_total = m.counter(
            "repro_fold_dropped_total",
            "Requests drained from the queue but dropped before folding.",
            ("reason",),
        )
        self.fold_lanes = m.histogram(
            "repro_fold_lanes",
            "Lanes per dispatched fold.",
            buckets=_FOLD_LANE_BUCKETS,
        )
        self.engine_busy_seconds_total = m.counter(
            "repro_engine_busy_seconds_total",
            "Wall seconds dispatchers spent executing engine jobs.",
        )
        self.engine_utilization = m.gauge(
            "repro_engine_utilization",
            "Busy fraction of dispatcher capacity since start.",
        )
        # Engine pool / supervision.
        self.engine_checkout_wait_seconds = m.histogram(
            "repro_engine_checkout_wait_seconds",
            "Wait to check an engine out of the pool.",
            buckets=_CHECKOUT_WAIT_BUCKETS,
        )
        self.chunk_retries_total = m.counter(
            "repro_chunk_retries_total",
            "Engine chunks retried after a worker death.",
        )
        self.worker_restarts_total = m.counter(
            "repro_worker_restarts_total", "Engine workers respawned."
        )
        self.pool_rebuilds_total = m.counter(
            "repro_pool_rebuilds_total", "Engine worker pools rebuilt."
        )
        # Privacy test.
        self.privacy_test_attempts_total = m.counter(
            "repro_privacy_test_attempts_total",
            "Candidates put through the plausible-deniability test.",
        )
        self.privacy_records_checked_total = m.counter(
            "repro_privacy_records_checked_total",
            "Seed records examined by the privacy test.",
        )
        self.privacy_records_available_total = m.counter(
            "repro_privacy_records_available_total",
            "Seed records an exact scan would have examined.",
        )
        self.privacy_escalations_total = m.counter(
            "repro_privacy_escalations_total",
            "Approximate-test candidates escalated to the exact scan.",
        )
        self.privacy_scan_fraction = m.gauge(
            "repro_privacy_scan_fraction",
            "records_checked / records_available since start.",
        )
        self.privacy_escalation_rate = m.gauge(
            "repro_privacy_escalation_rate",
            "Escalations per tested candidate since start.",
        )
        # Budget spend.
        self.tenant_rows_spent_total = m.counter(
            "repro_tenant_rows_spent_total",
            "Row budget committed, per tenant session.",
            ("tenant",),
        )
        self.tenant_epsilon_spent_total = m.counter(
            "repro_tenant_epsilon_spent_total",
            "Epsilon committed, per tenant session.",
            ("tenant",),
        )
        self.tenant_delta_spent_total = m.counter(
            "repro_tenant_delta_spent_total",
            "Delta committed, per tenant session.",
            ("tenant",),
        )
        # Model registry.
        self.fit_cache_hits = m.gauge(
            "repro_fit_cache_hits", "Registry model-cache hits since start."
        )
        self.fit_cache_misses = m.gauge(
            "repro_fit_cache_misses",
            "Registry fits performed (cache misses) since start.",
        )
        # Phase profiling.
        self.phase_seconds_total = m.counter(
            "repro_phase_seconds_total",
            "Cumulative seconds per profiled phase.",
            ("phase",),
        )
        self.phase_calls_total = m.counter(
            "repro_phase_calls_total",
            "Cumulative calls per profiled phase.",
            ("phase",),
        )

    def new_profile(self) -> PhaseProfile:
        return PhaseProfile(clock=self.clock)

    def add_phase(self, name: str, seconds: float, calls: int = 1) -> None:
        with self._phase_lock:
            entry = self._phase_totals.get(name)
            if entry is None:
                self._phase_totals[name] = [calls, seconds]
            else:
                entry[0] += calls
                entry[1] += seconds
        self.phase_seconds_total.inc(seconds, phase=name)
        self.phase_calls_total.inc(calls, phase=name)

    def observe_profile(self, profile: PhaseProfile) -> None:
        for name, (calls, seconds) in profile.phases.items():
            self.add_phase(name, seconds, calls)

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        with self._phase_lock:
            return {
                name: {
                    "calls": entry[0],
                    "seconds": round(entry[1], 6),
                }
                for name, entry in sorted(self._phase_totals.items())
            }

    def engine_event(self, kind: str, payload: Optional[Dict] = None) -> None:
        """Engine supervision events (called from ``SynthesisEngine``)."""
        if kind == "worker_restart":
            self.worker_restarts_total.inc()
        elif kind == "chunk_retry":
            self.chunk_retries_total.inc()
        elif kind == "pool_rebuild":
            self.pool_rebuilds_total.inc()

    def close(self) -> None:
        self.tracer.close()
