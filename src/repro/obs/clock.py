"""Injectable time sources for the telemetry subsystem.

Telemetry must be determinism-safe: it consumes zero randomness and its
timestamps never influence synthesis.  All span and phase timings come
from ``time.monotonic`` behind the injectable :class:`Clock`, so tests can
drive time by hand with :class:`ManualClock`.  The single sanctioned
wall-clock read in ``repro.obs`` is :func:`wall_anchor`, recorded once per
tracer so operators can line monotonic span offsets up with the wall-time
audit log.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic time source.  The default reads ``time.monotonic``."""

    def monotonic(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """Deterministic clock for tests: advances only when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def monotonic(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("ManualClock cannot move backwards")
        self._now += float(seconds)


def wall_anchor() -> float:
    """The one wall-clock read telemetry is allowed: an anchor recorded at
    tracer creation (operational metadata, never fed into synthesis)."""
    return time.time()  # repro: allow[det-wall-clock] trace wall anchor
