"""Hierarchical request tracing with deterministic span ids.

A :class:`Tracer` produces :class:`Span` records keyed by the service's
``request_id``.  Span ids come from a process-local counter — telemetry
consumes **zero** randomness — and every timestamp is a reading of the
tracer's injectable monotonic clock.  One wall-clock anchor
(:func:`repro.obs.clock.wall_anchor`) is recorded at tracer creation so
operators can convert monotonic offsets to wall time; it never feeds back
into synthesis.

Finished spans are retained in a bounded per-trace LRU (for
``GET /trace/<request_id>``) and optionally appended to a
:class:`TraceLog` — JSON-lines with the same torn-tail-tolerant write
discipline as the service's ``BudgetJournal``: one shared line-buffered
writer under a lock, one ``json.dumps(sort_keys=True)`` object per line,
flushed per line, and a reader that drops only a torn final line.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.obs.clock import Clock, wall_anchor


class TraceCorruptionError(RuntimeError):
    """A trace log line before the final one failed to parse."""


class TraceLog:
    """Append-only JSON-lines span log (``BudgetJournal`` discipline)."""

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._handle = None

    def append(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(
                    self.path, "a", encoding="utf-8", buffering=1
                )
            self._handle.write(line + "\n")
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_trace_log(path: str | Path) -> List[Dict]:
    """Read a trace log, dropping a torn final line (a crash mid-append)
    but refusing corruption anywhere earlier."""
    path = Path(path)
    if not path.exists():
        return []
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records: List[Dict] = []
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break
            raise TraceCorruptionError(
                f"{path}: malformed trace line {index + 1}"
            ) from None
        if not isinstance(record, dict):
            raise TraceCorruptionError(
                f"{path}: trace line {index + 1} is not an object"
            )
        records.append(record)
    return records


class Span:
    """One timed operation inside a trace.  Close with :meth:`end` (in a
    ``finally``) or via ``Tracer.span(...)`` as a context manager."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end_time",
        "attrs",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
        attrs: Optional[Dict] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end_time: Optional[float] = None
        self.attrs: Dict = dict(attrs or {})
        self._tracer = tracer

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def end(self, end: Optional[float] = None) -> None:
        if self.end_time is not None:
            return
        tracer = self._tracer
        self.end_time = (
            float(end) if end is not None else tracer.clock.monotonic()
        )
        tracer._finish(self)

    def to_dict(self) -> Dict:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end_time,
            "attrs": self.attrs,
        }


class Tracer:
    """Produces spans and retains finished ones per trace id (LRU)."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        log: Optional[TraceLog] = None,
        max_traces: int = 256,
        max_spans_per_trace: int = 4096,
    ) -> None:
        self.clock = clock or Clock()
        self.wall_anchor = wall_anchor()
        self.monotonic_anchor = self.clock.monotonic()
        self._log = log
        self._max_traces = max(1, int(max_traces))
        self._max_spans = max(1, int(max_spans_per_trace))
        self._lock = threading.Lock()
        self._counter = 0
        self._traces: "OrderedDict[str, List[Dict]]" = OrderedDict()
        self._truncated: Dict[str, int] = {}

    def _next_span_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"s{self._counter:08d}"

    def start_span(
        self,
        trace_id: str,
        name: str,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict] = None,
        start: Optional[float] = None,
    ) -> Span:
        begin = float(start) if start is not None else self.clock.monotonic()
        return Span(
            self, trace_id, self._next_span_id(), parent_id, name, begin, attrs
        )

    @contextmanager
    def span(
        self,
        trace_id: str,
        name: str,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict] = None,
    ) -> Iterator[Span]:
        active = self.start_span(trace_id, name, parent_id, attrs)
        try:
            yield active
        finally:
            active.end()

    def record_span(
        self,
        trace_id: str,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict] = None,
    ) -> Span:
        """Record an already-elapsed operation (e.g. queue wait measured
        at dequeue) as a finished span."""
        recorded = Span(
            self,
            trace_id,
            self._next_span_id(),
            parent_id,
            name,
            float(start),
            attrs,
        )
        recorded.end(end=float(end))
        return recorded

    def event(
        self,
        trace_id: str,
        name: str,
        attrs: Optional[Dict] = None,
        parent_id: Optional[str] = None,
    ) -> Span:
        """A point-in-time marker (worker restart, chunk retry, ...)
        recorded as a zero-duration span."""
        now = self.clock.monotonic()
        return self.record_span(trace_id, name, now, now, parent_id, attrs)

    def _finish(self, span: Span) -> None:
        record = span.to_dict()
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                spans = []
                self._traces[span.trace_id] = spans
                while len(self._traces) > self._max_traces:
                    evicted, _ = self._traces.popitem(last=False)
                    self._truncated.pop(evicted, None)
            else:
                self._traces.move_to_end(span.trace_id)
            if len(spans) < self._max_spans:
                spans.append(record)
            else:
                self._truncated[span.trace_id] = (
                    self._truncated.get(span.trace_id, 0) + 1
                )
        if self._log is not None:
            self._log.append(record)

    def trace(self, trace_id: str) -> Optional[Dict]:
        """The finished spans of one trace, root-first, or ``None`` if the
        trace is unknown (never seen, or evicted)."""
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                return None
            snapshot = [dict(record) for record in spans]
            dropped = self._truncated.get(trace_id, 0)
        snapshot.sort(key=lambda record: (record["start"], record["span"]))
        # Spans recorded with no explicit parent attach to the trace root
        # (the earliest parentless span) so every trace has a single tree.
        root_id = None
        for record in snapshot:
            if record["parent"] is None:
                if root_id is None:
                    root_id = record["span"]
                elif record["span"] != root_id:
                    record["parent"] = root_id
        return {
            "request_id": trace_id,
            "wall_anchor": self.wall_anchor,
            "monotonic_anchor": self.monotonic_anchor,
            "dropped_spans": dropped,
            "spans": snapshot,
        }

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
