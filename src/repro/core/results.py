"""Bookkeeping structures for synthesis runs (attempts, pass rates, releases)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.schema import Schema
from repro.privacy.plausible_deniability import PrivacyTestResult

__all__ = ["SynthesisAttempt", "SynthesisReport"]


@dataclass(frozen=True)
class SynthesisAttempt:
    """One proposed candidate synthetic and its privacy-test outcome."""

    seed_index: int
    candidate: np.ndarray
    test: PrivacyTestResult

    @property
    def released(self) -> bool:
        """Whether the candidate passed the test and may be released."""
        return self.test.passed


@dataclass
class SynthesisReport:
    """Aggregated outcome of a synthesis run.

    The release count is maintained incrementally by :meth:`record` so the
    mechanism's until-n-released loop stays O(attempts) overall instead of
    re-scanning the attempt list on every iteration.  Append attempts via
    :meth:`record` (or pass them to the constructor) — mutating ``attempts``
    directly would leave the counter stale.
    """

    schema: Schema
    attempts: list[SynthesisAttempt] = field(default_factory=list)
    _num_released: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        self._num_released = sum(1 for attempt in self.attempts if attempt.released)

    def record(self, attempt: SynthesisAttempt) -> None:
        """Append one attempt to the report."""
        self.attempts.append(attempt)
        if attempt.released:
            self._num_released += 1

    @property
    def num_attempts(self) -> int:
        """Total number of candidates proposed."""
        return len(self.attempts)

    @property
    def num_released(self) -> int:
        """Number of candidates that passed the privacy test."""
        return self._num_released

    @property
    def pass_rate(self) -> float:
        """Fraction of candidates that passed the privacy test (Figure 6)."""
        if not self.attempts:
            return 0.0
        return self.num_released / self.num_attempts

    @property
    def mean_plausible_seeds(self) -> float:
        """Average plausible-seed count over all attempts."""
        if not self.attempts:
            return 0.0
        return float(np.mean([attempt.test.plausible_seeds for attempt in self.attempts]))

    def released_dataset(self) -> Dataset:
        """The released synthetic records as a dataset."""
        released = [attempt.candidate for attempt in self.attempts if attempt.released]
        if not released:
            return Dataset(self.schema, np.empty((0, len(self.schema)), dtype=np.int64))
        return Dataset(self.schema, np.vstack(released))

    def all_candidates_dataset(self) -> Dataset:
        """All proposed candidates (released or not), as the paper's tool outputs."""
        if not self.attempts:
            return Dataset(self.schema, np.empty((0, len(self.schema)), dtype=np.int64))
        return Dataset(self.schema, np.vstack([attempt.candidate for attempt in self.attempts]))

    def merge(self, *others: "SynthesisReport") -> "SynthesisReport":
        """Combine this report with any number of others (e.g. worker chunks).

        All attempt lists are concatenated in a single pass; merging W worker
        reports is O(total attempts) instead of the O(W × total) cost of
        repeated pairwise merges.
        """
        return SynthesisReport.merged(self.schema, [self, *others])

    @classmethod
    def merged(
        cls,
        schema: Schema,
        reports: "Sequence[SynthesisReport]",
        stop_after_released: int | None = None,
    ) -> "SynthesisReport":
        """Concatenate many reports (in order) into one.

        With ``stop_after_released`` set, recording stops right after the
        attempt that produces the Nth release — the same truncation rule as
        the mechanism's until-N-released loop, so a chunked engine run merged
        with this method matches the serial reference on the same chunks.
        """
        attempts: list[SynthesisAttempt] = []
        for report in reports:
            if report.schema != schema:
                raise ValueError("cannot merge reports with different schemas")
            attempts.extend(report.attempts)
        if stop_after_released is not None:
            released = 0
            for index, attempt in enumerate(attempts):
                if attempt.released:
                    released += 1
                    if released >= stop_after_released:
                        attempts = attempts[: index + 1]
                        break
        return cls(schema=schema, attempts=attempts)

    # ------------------------------------------------------------------ #
    # Compact array serialization (worker IPC and run checkpoints)
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten the report into a dict of parallel numpy arrays.

        One array per attempt field; the inverse of :meth:`from_arrays`.
        This is how chunk reports travel between engine workers and the
        parent, and how they are checkpointed to a run store — far cheaper
        than pickling per-attempt objects.
        """
        num = len(self.attempts)
        num_columns = len(self.schema)
        candidates = np.empty((num, num_columns), dtype=np.int64)
        for index, attempt in enumerate(self.attempts):
            candidates[index] = attempt.candidate
        return {
            "seed_indices": np.array(
                [attempt.seed_index for attempt in self.attempts], dtype=np.int64
            ),
            "candidates": candidates,
            "passed": np.array(
                [attempt.test.passed for attempt in self.attempts], dtype=bool
            ),
            "plausible_seeds": np.array(
                [attempt.test.plausible_seeds for attempt in self.attempts], dtype=np.int64
            ),
            "partition_indices": np.array(
                [attempt.test.partition_index for attempt in self.attempts], dtype=np.int64
            ),
            "thresholds": np.array(
                [attempt.test.threshold for attempt in self.attempts], dtype=np.float64
            ),
            "records_checked": np.array(
                [attempt.test.records_checked for attempt in self.attempts], dtype=np.int64
            ),
            "count_saturated": np.array(
                [attempt.test.count_saturated for attempt in self.attempts], dtype=bool
            ),
            "escalated": np.array(
                [attempt.test.escalated for attempt in self.attempts], dtype=bool
            ),
        }

    @classmethod
    def from_arrays(cls, schema: Schema, arrays: dict[str, np.ndarray]) -> "SynthesisReport":
        """Rebuild a report from the parallel arrays of :meth:`to_arrays`."""
        seed_indices = np.asarray(arrays["seed_indices"], dtype=np.int64)
        candidates = np.asarray(arrays["candidates"], dtype=np.int64)
        passed = np.asarray(arrays["passed"], dtype=bool)
        plausible = np.asarray(arrays["plausible_seeds"], dtype=np.int64)
        partitions = np.asarray(arrays["partition_indices"], dtype=np.int64)
        thresholds = np.asarray(arrays["thresholds"], dtype=np.float64)
        checked = np.asarray(arrays["records_checked"], dtype=np.int64)
        # Absent in pre-approximate checkpoints; default to the exact-path
        # values so old run stores keep resuming.  (`in` rather than `.get`:
        # np.load's NpzFile mapping supports membership on every version.)
        saturated = (
            np.asarray(arrays["count_saturated"], dtype=bool)
            if "count_saturated" in arrays
            else np.zeros(seed_indices.size, dtype=bool)
        )
        escalated = (
            np.asarray(arrays["escalated"], dtype=bool)
            if "escalated" in arrays
            else np.zeros(seed_indices.size, dtype=bool)
        )
        attempts = [
            SynthesisAttempt(
                seed_index=int(seed_indices[index]),
                candidate=candidates[index].copy(),
                test=PrivacyTestResult(
                    passed=bool(passed[index]),
                    plausible_seeds=int(plausible[index]),
                    partition_index=int(partitions[index]),
                    threshold=float(thresholds[index]),
                    records_checked=int(checked[index]),
                    count_saturated=bool(saturated[index]),
                    escalated=bool(escalated[index]),
                ),
            )
            for index in range(seed_indices.size)
        ]
        return cls(schema=schema, attempts=attempts)
