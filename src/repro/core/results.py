"""Bookkeeping structures for synthesis runs (attempts, pass rates, releases)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.schema import Schema
from repro.privacy.plausible_deniability import PrivacyTestResult

__all__ = ["SynthesisAttempt", "SynthesisReport"]


@dataclass(frozen=True)
class SynthesisAttempt:
    """One proposed candidate synthetic and its privacy-test outcome."""

    seed_index: int
    candidate: np.ndarray
    test: PrivacyTestResult

    @property
    def released(self) -> bool:
        """Whether the candidate passed the test and may be released."""
        return self.test.passed


@dataclass
class SynthesisReport:
    """Aggregated outcome of a synthesis run.

    The release count is maintained incrementally by :meth:`record` so the
    mechanism's until-n-released loop stays O(attempts) overall instead of
    re-scanning the attempt list on every iteration.  Append attempts via
    :meth:`record` (or pass them to the constructor) — mutating ``attempts``
    directly would leave the counter stale.
    """

    schema: Schema
    attempts: list[SynthesisAttempt] = field(default_factory=list)
    _num_released: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        self._num_released = sum(1 for attempt in self.attempts if attempt.released)

    def record(self, attempt: SynthesisAttempt) -> None:
        """Append one attempt to the report."""
        self.attempts.append(attempt)
        if attempt.released:
            self._num_released += 1

    @property
    def num_attempts(self) -> int:
        """Total number of candidates proposed."""
        return len(self.attempts)

    @property
    def num_released(self) -> int:
        """Number of candidates that passed the privacy test."""
        return self._num_released

    @property
    def pass_rate(self) -> float:
        """Fraction of candidates that passed the privacy test (Figure 6)."""
        if not self.attempts:
            return 0.0
        return self.num_released / self.num_attempts

    @property
    def mean_plausible_seeds(self) -> float:
        """Average plausible-seed count over all attempts."""
        if not self.attempts:
            return 0.0
        return float(np.mean([attempt.test.plausible_seeds for attempt in self.attempts]))

    def released_dataset(self) -> Dataset:
        """The released synthetic records as a dataset."""
        released = [attempt.candidate for attempt in self.attempts if attempt.released]
        if not released:
            return Dataset(self.schema, np.empty((0, len(self.schema)), dtype=np.int64))
        return Dataset(self.schema, np.vstack(released))

    def all_candidates_dataset(self) -> Dataset:
        """All proposed candidates (released or not), as the paper's tool outputs."""
        if not self.attempts:
            return Dataset(self.schema, np.empty((0, len(self.schema)), dtype=np.int64))
        return Dataset(self.schema, np.vstack([attempt.candidate for attempt in self.attempts]))

    def merge(self, other: "SynthesisReport") -> "SynthesisReport":
        """Combine two reports (e.g. from parallel workers)."""
        if self.schema != other.schema:
            raise ValueError("cannot merge reports with different schemas")
        merged = SynthesisReport(
            schema=self.schema, attempts=list(self.attempts) + list(other.attempts)
        )
        return merged
