"""The end-to-end synthesis pipeline (the paper's tool, Section 5).

Given an input dataset and a :class:`~repro.core.config.GenerationConfig`, the
pipeline:

1. splits the data into the DS (seeds), DT (structure), DP (parameters) and
   test subsets,
2. fits the differentially-private Bayesian-network generative model (and the
   DP marginals baseline),
3. runs Mechanism 1 to generate and filter synthetic records — serially, or
   through the chunk-dispatching :class:`~repro.core.engine.SynthesisEngine`
   when ``num_workers`` is configured,
4. tracks the privacy budget spent on model learning and reports the overall
   (ε, δ) guarantee, including the Theorem 1 guarantee of the release step.

With a :class:`~repro.core.run_store.RunStore` attached, the whole fit phase
(splits, both models, privacy ledgers) is stored as a content-addressed
artifact keyed by the dataset fingerprint, the configuration and the initial
RNG state; a later pipeline with the same inputs — in this process or another
— loads the artifact instead of refitting, and restores the RNG to its
post-fit state so everything generated afterwards is bit-identical to an
uncached run.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.engine import SynthesisEngine
from repro.core.mechanism import SynthesisMechanism
from repro.core.results import SynthesisReport
from repro.core.run_store import RunStore, canonical_payload, dataset_fingerprint
from repro.datasets.dataset import Dataset
from repro.datasets.splits import DataSplits, split_dataset
from repro.generative.bayesian_network import BayesianNetworkSynthesizer
from repro.generative.builder import fit_bayesian_network, fit_marginal_model
from repro.generative.marginal import MarginalSynthesizer
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.plausible_deniability import theorem1_guarantee

__all__ = ["PipelineTimings", "SynthesisPipeline"]


@dataclass
class PipelineTimings:
    """Wall-clock timings of the two pipeline phases (Figure 5)."""

    model_learning_seconds: float = 0.0
    synthesis_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total pipeline time."""
        return self.model_learning_seconds + self.synthesis_seconds


class SynthesisPipeline:
    """Fit the DP generative model and generate plausibly-deniable synthetics.

    ``rng`` is required: data splitting, model fitting and synthesis all
    consume randomness, and a silent ``default_rng(0)`` fallback would make
    unrelated pipelines share one stream (the same policy applied to the
    learners and the builder).  ``run_store`` optionally caches the fitted
    state across processes.
    """

    def __init__(
        self,
        dataset: Dataset,
        config: GenerationConfig | None = None,
        rng: np.random.Generator | None = None,
        run_store: RunStore | None = None,
    ):
        if rng is None:
            raise ValueError(
                "SynthesisPipeline requires an explicit rng (e.g. "
                "np.random.default_rng(seed)); the implicit default_rng(0) "
                "fallback has been removed"
            )
        self._dataset = dataset
        self._config = config if config is not None else GenerationConfig.paper_defaults()
        self._rng = rng
        self._run_store = run_store
        self._splits: DataSplits | None = None
        self._model: BayesianNetworkSynthesizer | None = None
        self._marginal_model: MarginalSynthesizer | None = None
        self._mechanism: SynthesisMechanism | None = None
        self._accountant = PrivacyAccountant()
        self._baseline_accountant = PrivacyAccountant()
        self._timings = PipelineTimings()

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> GenerationConfig:
        """The pipeline configuration."""
        return self._config

    @property
    def splits(self) -> DataSplits:
        """The DS / DT / DP / test splits (available after :meth:`fit`)."""
        if self._splits is None:
            raise RuntimeError("call fit() before accessing the splits")
        return self._splits

    @property
    def model(self) -> BayesianNetworkSynthesizer:
        """The fitted seed-based generative model (available after :meth:`fit`)."""
        if self._model is None:
            raise RuntimeError("call fit() before accessing the model")
        return self._model

    @property
    def marginal_model(self) -> MarginalSynthesizer:
        """The fitted marginals baseline (available after :meth:`fit`)."""
        if self._marginal_model is None:
            raise RuntimeError("call fit() before accessing the marginal model")
        return self._marginal_model

    @property
    def mechanism(self) -> SynthesisMechanism:
        """Mechanism 1 wired to the fitted model (available after :meth:`fit`)."""
        if self._mechanism is None:
            raise RuntimeError("call fit() before accessing the mechanism")
        return self._mechanism

    @property
    def accountant(self) -> PrivacyAccountant:
        """The privacy ledger of the model-learning phase."""
        return self._accountant

    @property
    def timings(self) -> PipelineTimings:
        """Wall-clock timings of the phases run so far."""
        return self._timings

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #
    def fit_artifact_key(self) -> str:
        """Content key of the fit phase: dataset + fit inputs + RNG state.

        Only the configuration the fit actually consumes (split fractions and
        the model spec) enters the key — generation-only knobs like
        ``num_workers`` or ``batch_size`` must not invalidate a cached fit.
        The key is stable before and after :meth:`fit` only when computed
        *before* fitting (fitting advances the RNG), so callers that want the
        published identity of a pipeline must capture it up front — the model
        registry does exactly that.
        """
        from dataclasses import asdict

        config = self._config
        return RunStore.artifact_key(
            "pipeline-fit",
            {
                "dataset": dataset_fingerprint(self._dataset),
                "seed_fraction": config.seed_fraction,
                "structure_fraction": config.structure_fraction,
                "parameter_fraction": config.parameter_fraction,
                "model": canonical_payload(asdict(config.model)),
                "rng_state": canonical_payload(self._rng.bit_generator.state),
            },
        )

    def fit(self) -> "SynthesisPipeline":
        """Split the data and fit the DP generative model and baseline.

        With a run store attached, a previously stored fit for the same
        (dataset, config, RNG state) is loaded instead — including the
        privacy ledgers and the post-fit RNG state, so downstream generation
        matches an uncached run exactly.
        """
        start = time.perf_counter()
        key = self.fit_artifact_key() if self._run_store is not None else None
        if key is not None and self._run_store.has_artifact(key):
            artifact = self._run_store.load_artifact(key)
            self._splits = artifact["splits"]
            self._model = artifact["model"]
            self._marginal_model = artifact["marginal_model"]
            self._accountant = artifact["accountant"]
            self._baseline_accountant = artifact["baseline_accountant"]
            self._rng.bit_generator.state = artifact["rng_state"]
            self._mechanism = SynthesisMechanism(
                self._model,
                self._splits.seeds,
                self._config.privacy,
                approximate=self._config.approximate,
            )
            self._timings.model_learning_seconds += time.perf_counter() - start
            return self
        config = self._config
        self._splits = split_dataset(
            self._dataset,
            seed_fraction=config.seed_fraction,
            structure_fraction=config.structure_fraction,
            parameter_fraction=config.parameter_fraction,
            rng=self._rng,
        )
        self._model = fit_bayesian_network(
            self._splits.structure,
            self._splits.parameters,
            spec=config.model,
            accountant=self._accountant,
            rng=self._rng,
        )
        # The marginals baseline is a separate release used only for utility
        # comparisons, so its budget is tracked on its own ledger.
        self._marginal_model = fit_marginal_model(
            self._splits.parameters,
            epsilon=config.model.epsilon_parameters,
            alpha=config.model.alpha,
            accountant=self._baseline_accountant,
            rng=self._rng,
        )
        self._mechanism = SynthesisMechanism(
            self._model, self._splits.seeds, config.privacy,
            approximate=config.approximate,
        )
        if key is not None:
            self._run_store.save_artifact(
                key,
                {
                    "splits": self._splits,
                    "model": self._model,
                    "marginal_model": self._marginal_model,
                    "accountant": copy.deepcopy(self._accountant),
                    "baseline_accountant": copy.deepcopy(self._baseline_accountant),
                    "rng_state": self._rng.bit_generator.state,
                },
            )
        self._timings.model_learning_seconds += time.perf_counter() - start
        return self

    def generate(
        self,
        num_records: int,
        max_attempts: int | None = None,
        batch_size: int | None = None,
        num_workers: int | None = None,
        run_id: str | None = None,
    ) -> SynthesisReport:
        """Generate synthetics until ``num_records`` pass the privacy test.

        ``batch_size`` overrides the config's batch size for this call; both
        default to the vectorized batched path when set, and to the
        single-record reference loop otherwise.  ``num_workers`` (or the
        config's ``num_workers``) routes the run through the chunk-dispatching
        :class:`~repro.core.engine.SynthesisEngine` — 1 runs the chunked
        loop in-process, larger counts start a shared-memory worker pool for
        the duration of the call; ``run_id`` (with an attached run store)
        checkpoints engine chunks so an interrupted run resumes.  Long-lived
        callers should construct a :class:`SynthesisEngine` directly so the
        pool persists across calls.
        """
        if self._mechanism is None:
            self.fit()
        assert self._mechanism is not None
        start = time.perf_counter()
        if max_attempts is None:
            max_attempts = self._config.max_attempts_per_release * max(1, num_records)
        if batch_size is None:
            batch_size = self._config.batch_size
        if num_workers is None:
            num_workers = self._config.num_workers
        if num_workers is None and run_id is not None:
            # Checkpointing is a property of the chunked engine path; honour
            # the request with the in-process engine rather than silently
            # running the uncheckpointed serial loop.
            num_workers = 1
        if num_workers is None:
            report = self._mechanism.generate(
                num_records, self._rng, max_attempts, batch_size=batch_size
            )
        else:
            # The chunk streams are derived from a base seed drawn from the
            # pipeline RNG, so repeated calls draw fresh candidates while the
            # whole pipeline stays reproducible from its seed.
            base_seed = int(self._rng.integers(2**63))
            with SynthesisEngine(
                self.model,
                self.splits.seeds,
                self._config.privacy,
                num_workers=num_workers,
                chunk_size=self._config.chunk_size,
                batch_size=batch_size,
                run_store=self._run_store,
                max_chunk_retries=self._config.max_chunk_retries,
                approximate=self._config.approximate,
            ) as engine:
                report = engine.generate(
                    num_records,
                    base_seed=base_seed,
                    max_attempts=max_attempts,
                    run_id=run_id,
                )
        self._timings.synthesis_seconds += time.perf_counter() - start
        return report

    def generate_marginals(self, num_records: int) -> Dataset:
        """Generate records from the marginals baseline (no privacy test needed)."""
        if self._marginal_model is None:
            self.fit()
        assert self._marginal_model is not None
        data = self._marginal_model.generate_many(num_records, self._rng)
        return Dataset(self._dataset.schema, data)

    # ------------------------------------------------------------------ #
    # Privacy reporting
    # ------------------------------------------------------------------ #
    def model_privacy_guarantee(self) -> tuple[float, float]:
        """Total (ε, δ) spent learning the model (DT and DP are disjoint)."""
        return self._accountant.total_guarantee(disjoint_scopes=True)

    def release_privacy_guarantee(self, t: int | None = None) -> tuple[float, float, int]:
        """Theorem 1 guarantee of releasing a single synthetic record."""
        params = self._config.privacy
        if params.epsilon0 is None:
            raise ValueError(
                "the deterministic test provides plausible deniability only; "
                "use the randomized test (epsilon0) for a differential-privacy guarantee"
            )
        return theorem1_guarantee(params.k, params.gamma, params.epsilon0, t)
