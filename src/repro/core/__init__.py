"""Core of the paper: Mechanism 1 and the end-to-end synthesis pipeline.

* :mod:`repro.core.config` — configuration objects tying together the privacy
  test parameters and the generative-model specification;
* :mod:`repro.core.mechanism` — Mechanism 1 (seed → candidate → privacy test →
  release) with both the deterministic and randomized privacy tests;
* :mod:`repro.core.results` — release bookkeeping (attempts, pass rates);
* :mod:`repro.core.pipeline` — the full tool: split the data, fit the DP
  generative model, generate and filter synthetics, report the privacy budget;
* :mod:`repro.core.engine` — the chunk-dispatching parallel synthesis engine
  (persistent shared-memory worker pool, until-N dispatch, checkpointing);
* :mod:`repro.core.run_store` — disk-backed artifact store and run
  checkpoints shared by the pipeline, the experiments and the CLI;
* :mod:`repro.core.parallel` — one-call parallel generation facade over the
  engine (Section 5 / Figure 5).
"""

from repro.core.config import GenerationConfig
from repro.core.engine import (
    ChunkProgress,
    ChunkRetryExhaustedError,
    EngineBrokenError,
    SynthesisEngine,
)
from repro.core.mechanism import SynthesisMechanism
from repro.core.parallel import generate_in_parallel
from repro.core.pipeline import SynthesisPipeline
from repro.core.results import SynthesisAttempt, SynthesisReport
from repro.core.run_store import RunStore

__all__ = [
    "ChunkProgress",
    "ChunkRetryExhaustedError",
    "EngineBrokenError",
    "GenerationConfig",
    "RunStore",
    "SynthesisEngine",
    "SynthesisMechanism",
    "SynthesisPipeline",
    "SynthesisAttempt",
    "SynthesisReport",
    "generate_in_parallel",
]
