"""Core of the paper: Mechanism 1 and the end-to-end synthesis pipeline.

* :mod:`repro.core.config` — configuration objects tying together the privacy
  test parameters and the generative-model specification;
* :mod:`repro.core.mechanism` — Mechanism 1 (seed → candidate → privacy test →
  release) with both the deterministic and randomized privacy tests;
* :mod:`repro.core.results` — release bookkeeping (attempts, pass rates);
* :mod:`repro.core.pipeline` — the full tool: split the data, fit the DP
  generative model, generate and filter synthetics, report the privacy budget;
* :mod:`repro.core.parallel` — embarrassingly-parallel generation across
  worker processes (Section 5 / Figure 5).
"""

from repro.core.config import GenerationConfig
from repro.core.mechanism import SynthesisMechanism
from repro.core.parallel import generate_in_parallel
from repro.core.pipeline import SynthesisPipeline
from repro.core.results import SynthesisAttempt, SynthesisReport

__all__ = [
    "GenerationConfig",
    "SynthesisMechanism",
    "SynthesisPipeline",
    "SynthesisAttempt",
    "SynthesisReport",
    "generate_in_parallel",
]
