"""Configuration of the synthesis pipeline.

This mirrors the config file of the paper's C++ tool (Section 5): the privacy
parameters (k, γ, ε0, ``max_plausible``, ``max_check_plausible``), the
generative-model parameters (ω, DP epsilons for structure and parameter
learning) and the data split fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.generative.builder import GenerativeModelSpec
from repro.privacy.approximate import ApproximateTestConfig
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

__all__ = ["GenerationConfig"]


@dataclass
class GenerationConfig:
    """Everything needed to run the synthesis tool end to end.

    Parameters
    ----------
    privacy:
        Plausible-deniability test parameters (k, γ, ε0, early-termination
        knobs).  The paper's defaults are k=50, γ=4, ε0=1.
    model:
        Generative-model specification (ω, DP budgets for model learning).
    seed_fraction, structure_fraction, parameter_fraction:
        Fractions of the input data assigned to the DS / DT / DP splits; the
        remainder is held out as a test set.
    max_attempts_per_release:
        Upper bound on how many candidates the mechanism may try per released
        record before giving up (guards against parameter combinations where
        almost nothing passes the test).
    batch_size:
        Number of candidates proposed per vectorized batch of Mechanism 1
        (the default).  ``None`` or 1 selects the single-record reference
        loop.
    num_workers:
        Worker processes of the chunk-dispatching synthesis engine.  ``None``
        (the default) keeps the single-stream serial path; any value >= 1
        routes generation through :class:`~repro.core.engine.SynthesisEngine`
        (1 = in-process chunked reference, >1 = shared-memory worker pool).
    chunk_size:
        Attempts per dynamically dispatched engine chunk.  Part of a run's
        RNG layout: reproducing or resuming an engine run requires the same
        chunk size.
    max_chunk_retries:
        How many times the engine supervisor may re-execute a chunk lost to
        a crashed worker before failing the job (0 = any crash fails the
        job).  Purely operational: retried chunks are bit-identical to the
        lost originals, so this knob never affects released rows and is
        excluded from fit artifact keys.
    approximate:
        Bounded-latency approximate privacy testing
        (:class:`~repro.privacy.approximate.ApproximateTestConfig`).  ``None``
        (the default) runs the exact scan; a config enables the sampling
        path, whose release decisions stay bit-identical to exact.  Like the
        engine knobs it only affects how generation is computed, so it is
        excluded from fit artifact keys; it is mutually exclusive with the
        ``max_plausible`` / ``max_check_plausible`` subset-scan knobs.
    """

    privacy: PlausibleDeniabilityParams = field(
        default_factory=lambda: PlausibleDeniabilityParams(k=50, gamma=4.0, epsilon0=1.0)
    )
    model: GenerativeModelSpec = field(default_factory=GenerativeModelSpec)
    seed_fraction: float = 0.55
    structure_fraction: float = 0.175
    parameter_fraction: float = 0.175
    max_attempts_per_release: int = 1000
    batch_size: int | None = 256
    num_workers: int | None = None
    chunk_size: int = 512
    max_chunk_retries: int = 2
    approximate: ApproximateTestConfig | None = None

    def __post_init__(self) -> None:
        fractions = (self.seed_fraction, self.structure_fraction, self.parameter_fraction)
        if min(fractions) < 0:
            raise ValueError("split fractions must be non-negative")
        if sum(fractions) > 1.0 + 1e-9:
            raise ValueError("split fractions must sum to at most 1")
        if self.max_attempts_per_release < 1:
            raise ValueError("max_attempts_per_release must be positive")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be positive when provided")
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError("num_workers must be positive when provided")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be non-negative")
        if self.approximate is not None and not isinstance(
            self.approximate, ApproximateTestConfig
        ):
            raise ValueError("approximate must be an ApproximateTestConfig or None")

    @classmethod
    def paper_defaults(cls, num_attributes: int = 11, total_epsilon: float = 1.0) -> "GenerationConfig":
        """The default parameters of the paper's evaluation (Section 6.1).

        k = 50, γ = 4, ε0 = 1, ω = 9, and an overall model-learning budget of
        ``total_epsilon`` (the paper uses ε = 1, with some results at ε = 0.1)
        split across the structure- and parameter-learning queries.
        """
        return cls(
            privacy=PlausibleDeniabilityParams(k=50, gamma=4.0, epsilon0=1.0),
            model=GenerativeModelSpec.with_total_epsilon(
                total_epsilon, num_attributes=num_attributes, omega=9
            ),
        )
