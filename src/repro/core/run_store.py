"""Disk-backed experiment artifact store and run checkpoints.

Benchmark sessions and repeated CLI invocations kept refitting the same DP
models and regenerating the same released datasets from scratch.  Following
the work-sharing theme of the related systems literature (PAPERS.md), a
:class:`RunStore` persists two kinds of state under one root directory:

``artifacts/``
    Content-addressed artifacts: any picklable object (fitted models,
    released datasets, whole pipeline fits) stored under the SHA-256 of a
    canonical-JSON *key payload* describing everything the artifact depends
    on — configuration, seeds, data fingerprint and a store schema version.
    Two processes that build the same payload share the artifact; a payload
    that differs in any field hashes to a different key, so stale reuse is
    structurally impossible (as long as payloads name their inputs honestly).

``runs/<run_id>/``
    Chunk-level synthesis checkpoints written by the parallel engine: one
    ``chunk_<index>.npz`` per completed chunk (the compact array form of a
    :class:`~repro.core.results.SynthesisReport`) plus a ``meta.json`` with
    the job signature.  A crashed or repeated run resumes from the completed
    chunks instead of regenerating them; a signature mismatch (different
    chunk size, base seed, budget, ...) is rejected rather than silently
    mixing incompatible chunks.

Writes are atomic (temp file + ``os.replace``) so a crash mid-write never
leaves a truncated artifact or chunk behind.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import re
import zipfile
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.datasets.dataset import Dataset

__all__ = [
    "RunStore",
    "RunStoreCorruptionError",
    "canonical_payload",
    "dataset_fingerprint",
]


class RunStoreCorruptionError(RuntimeError):
    """A stored artifact or checkpoint exists but could not be decoded.

    Raised instead of the underlying pickle / zip / json error so callers can
    distinguish "the store is damaged (delete the entry and regenerate)" from
    programming errors.  Atomic writes mean a *crash* never produces this —
    seeing it indicates external corruption (disk fault, manual edit,
    truncated copy).
    """

#: Bump when the stored artifact formats or the fitting algorithms change in a
#: way that invalidates previously stored artifacts.
STORE_VERSION = 1

_RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")
_CHUNK_PATTERN = re.compile(r"^chunk_(\d{8})\.npz$")


def canonical_payload(payload: Any) -> str:
    """Canonical JSON for hashing: sorted keys, tuples as lists, no floats lost.

    Only plain JSON-able values (plus tuples and numpy scalars) are accepted;
    anything else raises so a non-deterministic ``repr`` can never silently
    enter an artifact key.
    """

    def _normalize(value: Any) -> Any:
        if isinstance(value, dict):
            return {str(key): _normalize(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [_normalize(item) for item in value]
        if isinstance(value, (np.integer,)):
            return int(value)
        if isinstance(value, (np.floating,)):
            return float(value)
        if isinstance(value, np.ndarray):
            return [_normalize(item) for item in value.tolist()]
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        raise TypeError(
            f"artifact key payloads must be plain JSON-able values, got "
            f"{type(value).__name__}"
        )

    return json.dumps(_normalize(payload), sort_keys=True, separators=(",", ":"))


def dataset_fingerprint(dataset: Dataset) -> str:
    """SHA-256 fingerprint of a dataset's schema and encoded contents."""
    digest = hashlib.sha256()
    for attribute in dataset.schema:
        digest.update(attribute.name.encode())
        digest.update(str(attribute.cardinality).encode())
    matrix = np.ascontiguousarray(dataset.data)
    digest.update(str(matrix.shape).encode())
    digest.update(matrix.tobytes())
    return digest.hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    temporary = path.with_name(path.name + ".tmp")
    temporary.write_bytes(data)
    os.replace(temporary, path)


class RunStore:
    """Content-hashed artifacts plus chunk-level run checkpoints on disk."""

    def __init__(self, root: str | Path):
        self._root = Path(root)
        self._artifacts_dir = self._root / "artifacts"
        self._runs_dir = self._root / "runs"
        self._artifacts_dir.mkdir(parents=True, exist_ok=True)
        self._runs_dir.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    # ------------------------------------------------------------------ #
    # Content-addressed artifacts
    # ------------------------------------------------------------------ #
    @staticmethod
    def artifact_key(kind: str, payload: Any) -> str:
        """Content hash of a key payload (plus the store schema version)."""
        body = canonical_payload(
            {"kind": kind, "store_version": STORE_VERSION, "payload": payload}
        )
        return hashlib.sha256(body.encode()).hexdigest()

    def _artifact_path(self, key: str) -> Path:
        if not re.fullmatch(r"[0-9a-f]{64}", key):
            raise ValueError(f"artifact keys are sha-256 hex digests, got {key!r}")
        return self._artifacts_dir / f"{key}.pkl"

    def has_artifact(self, key: str) -> bool:
        """Whether an artifact is stored under ``key``."""
        return self._artifact_path(key).exists()

    def save_artifact(self, key: str, obj: Any) -> None:
        """Pickle ``obj`` under ``key`` (atomic; overwrites an existing entry)."""
        _atomic_write(self._artifact_path(key), pickle.dumps(obj, protocol=4))

    def load_artifact(self, key: str) -> Any:
        """Unpickle the artifact stored under ``key``.

        Loading marks the artifact as recently used (its mtime is bumped),
        which is what :meth:`gc` orders eviction by.
        """
        path = self._artifact_path(key)
        if not path.exists():
            raise KeyError(f"no artifact stored under key {key}")
        data = path.read_bytes()
        try:
            obj = pickle.loads(data)
        except (pickle.PickleError, EOFError, ValueError, IndexError) as exc:
            # AttributeError / ImportError deliberately propagate unchanged:
            # they mean the stored *code* moved (a renamed class — bump
            # STORE_VERSION), not that the bytes on disk are damaged.
            raise RunStoreCorruptionError(
                f"artifact {path} is corrupted and cannot be unpickled: {exc}"
            ) from exc
        try:
            os.utime(path)
        except OSError:
            pass  # recency tracking is best-effort; the load itself succeeded
        return obj

    def artifact_keys(self) -> list[str]:
        """Keys of every stored artifact (unordered)."""
        return [path.stem for path in self._artifacts_dir.glob("*.pkl")]

    def artifacts_size_bytes(self) -> int:
        """Total on-disk size of the artifact directory."""
        return sum(path.stat().st_size for path in self._artifacts_dir.glob("*.pkl"))

    def gc(self, max_bytes: int, keep: Iterable[str] = ()) -> list[str]:
        """Evict least-recently-used artifacts until the store fits ``max_bytes``.

        Artifacts are deleted oldest-mtime-first (:meth:`load_artifact` bumps
        the mtime, so "oldest" means least recently *used*, not written) until
        the total artifact size is at most ``max_bytes``.  Keys in ``keep``
        (e.g. artifacts a model registry still references) are never evicted,
        even when the pinned set alone exceeds the bound.  Run checkpoints
        under ``runs/`` are never touched.  Returns the evicted keys.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        pinned = set(keep)
        entries = []
        total = 0
        for path in self._artifacts_dir.glob("*.pkl"):
            stat = path.stat()
            total += stat.st_size
            entries.append((stat.st_mtime, path))
        evicted: list[str] = []
        for _mtime, path in sorted(entries):
            if total <= max_bytes:
                break
            if path.stem in pinned:
                continue
            size = path.stat().st_size
            path.unlink()
            total -= size
            evicted.append(path.stem)
        return evicted

    # ------------------------------------------------------------------ #
    # Run checkpoints
    # ------------------------------------------------------------------ #
    def _run_dir(self, run_id: str, create: bool = False) -> Path:
        if not _RUN_ID_PATTERN.fullmatch(run_id):
            raise ValueError(
                "run ids must be short alphanumeric/._- identifiers, "
                f"got {run_id!r}"
            )
        path = self._runs_dir / run_id
        if create:
            path.mkdir(parents=True, exist_ok=True)
        return path

    def save_run_meta(self, run_id: str, meta: dict) -> None:
        """Record the job signature of a run (atomic overwrite)."""
        path = self._run_dir(run_id, create=True) / "meta.json"
        _atomic_write(path, (canonical_payload(meta) + "\n").encode())

    def load_run_meta(self, run_id: str) -> dict | None:
        """The stored job signature, or ``None`` for an unknown run."""
        path = self._run_dir(run_id) / "meta.json"
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise RunStoreCorruptionError(
                f"run metadata {path} is corrupted and cannot be parsed: {exc}"
            ) from exc

    def save_chunk(self, run_id: str, index: int, arrays: dict[str, np.ndarray]) -> None:
        """Checkpoint one completed chunk's report arrays (atomic)."""
        if index < 0:
            raise ValueError("chunk indices must be non-negative")
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        path = self._run_dir(run_id, create=True) / f"chunk_{index:08d}.npz"
        _atomic_write(path, buffer.getvalue())

    def load_chunks(self, run_id: str) -> dict[int, dict[str, np.ndarray]]:
        """All checkpointed chunk arrays of a run, keyed by chunk index."""
        run_dir = self._run_dir(run_id)
        if not run_dir.exists():
            return {}
        chunks: dict[int, dict[str, np.ndarray]] = {}
        for path in sorted(run_dir.iterdir()):
            match = _CHUNK_PATTERN.fullmatch(path.name)
            if match is None:
                continue
            try:
                with np.load(path) as archive:
                    chunks[int(match.group(1))] = {
                        name: archive[name] for name in archive.files
                    }
            except (zipfile.BadZipFile, ValueError, EOFError, KeyError, OSError) as exc:
                raise RunStoreCorruptionError(
                    f"checkpoint chunk {path} is corrupted and cannot be "
                    f"loaded: {exc}"
                ) from exc
        return chunks

    def completed_chunks(self, run_id: str) -> set[int]:
        """Indices of the chunks already checkpointed for a run."""
        run_dir = self._run_dir(run_id)
        if not run_dir.exists():
            return set()
        return {
            int(match.group(1))
            for path in run_dir.iterdir()
            if (match := _CHUNK_PATTERN.fullmatch(path.name)) is not None
        }
