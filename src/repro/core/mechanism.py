"""Mechanism 1: seed sampling, candidate generation and the privacy test.

Given a generative model M, a seed dataset D and privacy parameters (k, γ)
(plus ε0 for the randomized test), the mechanism:

1. samples a seed record d uniformly at random from D,
2. generates a candidate synthetic y = M(d),
3. runs the privacy test on (M, D, d, y, k, γ),
4. releases y iff the test passes (otherwise there is no output).

The test counts *plausible seeds*: records of D whose probability of
generating y falls into the same geometric bucket as the true seed's.  The
mechanism asks the model for those probabilities via
``batch_seed_probabilities`` so that models can vectorize the computation.

Besides the one-candidate-at-a-time reference loop (:meth:`propose`), the
mechanism offers a batched path (:meth:`propose_batch` /
:meth:`run_attempts_batched`) that pushes whole blocks of seeds through the
model's vectorized generation and probability interfaces — the hot path for
producing millions of records (Section 5, Figure 5).
"""

from __future__ import annotations

import numpy as np

from repro.core.results import SynthesisAttempt, SynthesisReport
from repro.datasets.dataset import Dataset
from repro.obs.profile import phase as obs_phase
from repro.generative.base import GenerativeModel
from repro.privacy.approximate import (
    ApproximateTestConfig,
    approximate_plausible_counts,
)
from repro.privacy.plausible_deniability import (
    PlausibleDeniabilityParams,
    batch_plausible_seed_counts,
    make_privacy_test,
    partition_numbers,
)

__all__ = ["SynthesisMechanism"]


def _spawn_stream(rng: np.random.Generator) -> np.random.Generator:
    """An independent child generator that leaves the parent stream untouched.

    Spawning advances the parent's SeedSequence child counter but consumes no
    draws, so a path that spawns and a path that does not see identical
    values from the parent — the property the approximate test's bit-identity
    rests on.
    """
    try:
        return rng.spawn(1)[0]
    except AttributeError:  # numpy < 1.25: spawn via the seed sequence
        child_seed = rng.bit_generator.seed_seq.spawn(1)[0]
        return np.random.Generator(type(rng.bit_generator)(child_seed))


class _SeedMatchIndex:
    """Sorted fixed-prefix keys of the seed dataset, one array per ω.

    Because Pr{y = M_ω(d)} factorizes as ``match(d, y) * q_ω(y)`` — a
    fixed-attribute agreement indicator times a per-candidate factor — the
    plausible-seed count only needs, per candidate, the *multiplicity* of its
    fixed-prefix key among the seed records.  Sorting the seed keys once turns
    every batch's counting into ``searchsorted`` queries, making the per-
    candidate cost of the privacy test (nearly) independent of the seed-set
    size instead of linear in it.
    """

    def __init__(self, model, seed_data: np.ndarray):
        # Ascending ω (longest fixed prefix first), multiplicity preserved so
        # a non-uniform ω tuple keeps its weighting in the suffix sums.
        self.omegas: tuple[int, ...] = tuple(sorted(model.omegas))
        self.sorted_keys: dict[int, np.ndarray] = {}
        self.supported = True
        for omega in sorted(set(self.omegas)):
            keys = model.fixed_prefix_keys(seed_data, omega)
            if keys is None:
                self.supported = False
                return
            self.sorted_keys[omega] = np.sort(keys)


class SynthesisMechanism:
    """Mechanism 1 of the paper, parameterized by a model and a privacy test."""

    def __init__(
        self,
        model: GenerativeModel,
        seed_dataset: Dataset,
        params: PlausibleDeniabilityParams,
        approximate: ApproximateTestConfig | None = None,
    ):
        if seed_dataset.schema != model.schema:
            raise ValueError("the seed dataset's schema must match the model's schema")
        if len(seed_dataset) < params.k:
            raise ValueError(
                f"the seed dataset must hold at least k={params.k} records, "
                f"got {len(seed_dataset)}"
            )
        self._model = model
        self._seeds = seed_dataset
        self._params = params
        self._approximate = approximate
        self._test = make_privacy_test(params)
        self._match_index: _SeedMatchIndex | None = None

    @property
    def model(self) -> GenerativeModel:
        """The generative model M."""
        return self._model

    @property
    def seed_dataset(self) -> Dataset:
        """The seed dataset DS."""
        return self._seeds

    @property
    def params(self) -> PlausibleDeniabilityParams:
        """The plausible-deniability parameters."""
        return self._params

    @property
    def approximate(self) -> ApproximateTestConfig | None:
        """The approximate-test configuration, or ``None`` for exact-only."""
        return self._approximate

    def prepare(self) -> "SynthesisMechanism":
        """Build the sorted prefix-key match index eagerly.

        The index is otherwise built lazily on the first batched proposal;
        long-lived engine workers call this once at startup so the one-off
        sort cost never lands inside a timed or dispatched chunk.  A no-op
        for models without the match-structure interface.
        """
        if self._match_index is None and (
            hasattr(self._model, "fixed_prefix_keys")
            and hasattr(self._model, "candidate_factor_suffix_products")
            and hasattr(self._model, "omegas")
        ):
            self._match_index = _SeedMatchIndex(self._model, self._seeds.data)
        return self

    # ------------------------------------------------------------------ #
    # Single-candidate operation
    # ------------------------------------------------------------------ #
    def propose(self, rng: np.random.Generator) -> SynthesisAttempt:
        """Run steps 1-3 of Mechanism 1 once and return the attempt."""
        seed_index = int(rng.integers(len(self._seeds)))
        seed = self._seeds.record(seed_index)
        candidate = self._model.generate(seed, rng)
        return self.evaluate_candidate(seed_index, candidate, rng)

    def evaluate_candidate(
        self,
        seed_index: int,
        candidate: np.ndarray,
        rng: np.random.Generator,
    ) -> SynthesisAttempt:
        """Run the privacy test for an externally generated candidate."""
        seed = self._seeds.record(seed_index)
        seed_probability = self._model.seed_probability(seed, candidate)
        dataset_probabilities = self._model.batch_seed_probabilities(
            self._seeds.data, candidate
        )
        result = self._test(seed_probability, dataset_probabilities, rng)
        return SynthesisAttempt(seed_index=seed_index, candidate=candidate, test=result)

    # ------------------------------------------------------------------ #
    # Batched operation
    # ------------------------------------------------------------------ #
    def propose_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> list[SynthesisAttempt]:
        """Run steps 1-3 of Mechanism 1 for a whole block of candidates at once.

        Seeds are drawn, candidates generated and the privacy test evaluated
        through the model's vectorized batch interfaces
        (:meth:`~repro.generative.base.GenerativeModel.generate_batch` /
        :meth:`~repro.generative.base.GenerativeModel.batch_probability_matrix`),
        so the per-candidate Python overhead of :meth:`propose` is amortized
        over the batch.  Each candidate's release decision is still
        independent, exactly as in the sequential loop.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        with obs_phase("sample"):
            seed_indices = rng.integers(len(self._seeds), size=batch_size)
            candidates = self._model.generate_batch(
                self._seeds.data[seed_indices], rng
            )
        with obs_phase("privacy_test"):
            if self._approximate_active():
                results = self._approximate_batch_results(
                    seed_indices, candidates, rng
                )
            else:
                fast_counts = self._fast_batch_counts(seed_indices, candidates)
                if fast_counts is not None:
                    counts, partitions, checked, saturated = fast_counts
                    results = self._test.results_from_counts(
                        counts, partitions, checked, rng, saturated=saturated
                    )
                else:
                    probability_matrix = self._model.batch_probability_matrix(
                        self._seeds.data, candidates
                    )
                    # The true seed is a row of the seed dataset, so its
                    # generation probability is already a column of the matrix.
                    seed_probabilities = probability_matrix[
                        np.arange(batch_size), seed_indices
                    ]
                    results = self._test.run_batch(
                        seed_probabilities, probability_matrix, rng
                    )
        return [
            SynthesisAttempt(
                seed_index=int(seed_indices[index]),
                candidate=candidates[index].copy(),
                test=results[index],
            )
            for index in range(batch_size)
        ]

    def _approximate_active(self) -> bool:
        """Whether the batched path should decide candidates from samples.

        The approximate mode is mutually exclusive with the subset-scan
        knobs (``max_check_plausible`` / ``max_plausible`` already trade
        exactness for speed in a different, paper-specified way) and is
        bypassed below ``min_records`` where the exact scan is cheap.
        """
        return (
            self._approximate is not None
            and self._params.max_check_plausible is None
            and self._params.max_plausible is None
            and len(self._seeds) >= self._approximate.min_records
        )

    def _approximate_batch_results(
        self,
        seed_indices: np.ndarray,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> list:
        """Privacy-test a batch via sampling, bit-identical to the exact path.

        The main stream ``rng`` is consumed exactly as the exact batched path
        consumes it — the threshold draw below sits at the same stream
        position (the randomized test's single ``size=batch`` Laplace draw;
        a no-op for the deterministic test), and all sampler randomness comes
        from a spawned child stream.
        """
        params = self._params
        batch_size = candidates.shape[0]
        thresholds = self._test.thresholds(batch_size, rng)
        sampler_rng = _spawn_stream(rng)

        # The seed's own generation probability (hence its γ-bucket) is exact
        # and cheap: one pairwise diagonal, independent of the seed-set size.
        seed_rows = self._seeds.data[seed_indices]
        pair_matrix = self._model.batch_probability_matrix(seed_rows, candidates)
        diagonal = pair_matrix[np.arange(batch_size), np.arange(batch_size)]
        seed_partitions = partition_numbers(diagonal, params.gamma)

        def probability_fn(
            record_indices: np.ndarray, candidate_indices: np.ndarray
        ) -> np.ndarray:
            return self._model.batch_probability_matrix(
                self._seeds.data[record_indices], candidates[candidate_indices]
            )

        def exact_fn(candidate_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            subset_seeds = seed_indices[candidate_ids]
            subset_candidates = candidates[candidate_ids]
            fast = self._fast_batch_counts(subset_seeds, subset_candidates)
            if fast is not None:
                counts, _, checked, _ = fast
                return counts, checked
            matrix = self._model.batch_probability_matrix(
                self._seeds.data, subset_candidates
            )
            probabilities = matrix[np.arange(candidate_ids.size), subset_seeds]
            counts, _, checked, _ = batch_plausible_seed_counts(
                probabilities, matrix, params.gamma
            )
            return counts, checked

        report = approximate_plausible_counts(
            seed_partitions=seed_partitions,
            seed_record_indices=np.asarray(seed_indices, dtype=np.int64),
            thresholds=thresholds,
            probability_fn=probability_fn,
            exact_fn=exact_fn,
            num_records=len(self._seeds),
            gamma=params.gamma,
            config=self._approximate,
            rng=sampler_rng,
        )
        return self._test.results_from_counts(
            report.counts,
            seed_partitions,
            report.records_checked,
            escalated=report.escalated,
            thresholds=thresholds,
        )

    def _fast_batch_counts(
        self, seed_indices: np.ndarray, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """Exact plausible counts via the sorted prefix-key index, or ``None``.

        Every record with Pr{y = M(d)} > 0 agrees with the candidate on some
        fixed prefix of the re-sampling order; nesting of the prefixes across
        ω means a record's probability is determined by its *longest* matching
        prefix (its class), so per-candidate bucket counts reduce to class
        counts — key-multiplicity differences — times a partition comparison
        on the handful of per-class probabilities.  Produces the same counts
        as the dense probability-matrix path without materializing it.

        Returns ``None`` when the fast path does not apply: early-termination
        knobs request subset scans, or the model does not expose the
        match-structure interface.
        """
        params = self._params
        if params.max_check_plausible is not None or params.max_plausible is not None:
            return None
        if not (
            hasattr(self._model, "fixed_prefix_keys")
            and hasattr(self._model, "candidate_factor_suffix_products")
            and hasattr(self._model, "omegas")
        ):
            return None
        if self._match_index is None:
            self._match_index = _SeedMatchIndex(self._model, self._seeds.data)
        index = self._match_index
        if not index.supported:
            return None

        omegas = index.omegas
        num_omegas = len(omegas)
        num_candidates = candidates.shape[0]
        num_attributes = len(self._seeds.schema)
        suffix_products = self._model.candidate_factor_suffix_products(candidates)
        factors = suffix_products[[num_attributes - omega for omega in omegas]]
        # class_probability[j] = Pr of a record whose longest matching prefix
        # is fixed(ω_j): it matches every looser prefix too, so its ω-averaged
        # probability is the suffix sum of the candidate factors.
        class_probabilities = np.cumsum(factors[::-1], axis=0)[::-1] / num_omegas

        seed_rows = self._seeds.data[seed_indices]
        cumulative_matches = np.empty((num_omegas, num_candidates), dtype=np.int64)
        seed_matches = np.empty((num_omegas, num_candidates), dtype=bool)
        for j, omega in enumerate(omegas):
            keys = self._model.fixed_prefix_keys(candidates, omega)
            sorted_keys = index.sorted_keys[omega]
            left = np.searchsorted(sorted_keys, keys, side="left")
            right = np.searchsorted(sorted_keys, keys, side="right")
            cumulative_matches[j] = right - left
            seed_matches[j] = self._model.fixed_prefix_keys(seed_rows, omega) == keys
        # Prefix nesting makes the cumulative match counts monotone in j;
        # differencing yields the exact per-class counts.
        class_counts = np.diff(cumulative_matches, axis=0, prepend=0)

        class_partitions = partition_numbers(class_probabilities, params.gamma)
        # The true seed always matches the prefix of its drawn ω, so its class
        # is the first matching one.
        seed_class = np.argmax(seed_matches, axis=0)
        seed_partitions = class_partitions[seed_class, np.arange(num_candidates)]
        counts = np.sum(
            class_counts * (class_partitions == seed_partitions[None, :]), axis=0
        )
        checked = np.full(num_candidates, len(self._seeds), dtype=np.int64)
        saturated = np.zeros(num_candidates, dtype=bool)
        return counts, seed_partitions, checked, saturated

    def run_attempts_batched(
        self,
        num_attempts: int,
        rng: np.random.Generator,
        batch_size: int = 256,
    ) -> SynthesisReport:
        """Propose exactly ``num_attempts`` candidates in vectorized batches."""
        if num_attempts < 0:
            raise ValueError("num_attempts must be non-negative")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        report = SynthesisReport(schema=self._seeds.schema)
        remaining = num_attempts
        while remaining > 0:
            size = min(batch_size, remaining)
            for attempt in self.propose_batch(size, rng):
                report.record(attempt)
            remaining -= size
        return report

    def generate(
        self,
        num_released: int,
        rng: np.random.Generator,
        max_attempts: int | None = None,
        batch_size: int | None = None,
    ) -> SynthesisReport:
        """Propose candidates until ``num_released`` records pass the test.

        ``max_attempts`` bounds the total number of proposals (default: 100
        attempts per requested record); the report may therefore contain fewer
        released records than requested when the privacy parameters are
        strict.  With ``batch_size`` set, candidates are proposed through the
        vectorized batch path; recording stops at the Nth release exactly as
        in the reference loop (the unrecorded i.i.d. remainder of the final
        batch introduces no bias), so the released count never overshoots —
        every release costs privacy budget.
        """
        if num_released < 0:
            raise ValueError("num_released must be non-negative")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive when provided")
        limit = max_attempts if max_attempts is not None else 100 * max(1, num_released)
        report = SynthesisReport(schema=self._seeds.schema)
        if batch_size is None or batch_size == 1:
            while report.num_released < num_released and report.num_attempts < limit:
                report.record(self.propose(rng))
            return report
        while report.num_released < num_released and report.num_attempts < limit:
            size = min(batch_size, limit - report.num_attempts)
            for attempt in self.propose_batch(size, rng):
                report.record(attempt)
                if report.num_released >= num_released:
                    break
        return report

    def run_attempts(
        self,
        num_attempts: int,
        rng: np.random.Generator,
        batch_size: int | None = None,
    ) -> SynthesisReport:
        """Propose exactly ``num_attempts`` candidates (used for pass-rate studies).

        ``batch_size`` > 1 dispatches to :meth:`run_attempts_batched`; ``None``
        or 1 runs the single-record reference loop.
        """
        if num_attempts < 0:
            raise ValueError("num_attempts must be non-negative")
        if batch_size is not None and batch_size > 1:
            return self.run_attempts_batched(num_attempts, rng, batch_size)
        report = SynthesisReport(schema=self._seeds.schema)
        for _ in range(num_attempts):
            report.record(self.propose(rng))
        return report
