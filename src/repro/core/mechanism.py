"""Mechanism 1: seed sampling, candidate generation and the privacy test.

Given a generative model M, a seed dataset D and privacy parameters (k, γ)
(plus ε0 for the randomized test), the mechanism:

1. samples a seed record d uniformly at random from D,
2. generates a candidate synthetic y = M(d),
3. runs the privacy test on (M, D, d, y, k, γ),
4. releases y iff the test passes (otherwise there is no output).

The test counts *plausible seeds*: records of D whose probability of
generating y falls into the same geometric bucket as the true seed's.  The
mechanism asks the model for those probabilities via
``batch_seed_probabilities`` so that models can vectorize the computation.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import SynthesisAttempt, SynthesisReport
from repro.datasets.dataset import Dataset
from repro.generative.base import GenerativeModel
from repro.privacy.plausible_deniability import (
    PlausibleDeniabilityParams,
    make_privacy_test,
)

__all__ = ["SynthesisMechanism"]


class SynthesisMechanism:
    """Mechanism 1 of the paper, parameterized by a model and a privacy test."""

    def __init__(
        self,
        model: GenerativeModel,
        seed_dataset: Dataset,
        params: PlausibleDeniabilityParams,
    ):
        if seed_dataset.schema != model.schema:
            raise ValueError("the seed dataset's schema must match the model's schema")
        if len(seed_dataset) < params.k:
            raise ValueError(
                f"the seed dataset must hold at least k={params.k} records, "
                f"got {len(seed_dataset)}"
            )
        self._model = model
        self._seeds = seed_dataset
        self._params = params
        self._test = make_privacy_test(params)

    @property
    def model(self) -> GenerativeModel:
        """The generative model M."""
        return self._model

    @property
    def seed_dataset(self) -> Dataset:
        """The seed dataset DS."""
        return self._seeds

    @property
    def params(self) -> PlausibleDeniabilityParams:
        """The plausible-deniability parameters."""
        return self._params

    # ------------------------------------------------------------------ #
    # Single-candidate operation
    # ------------------------------------------------------------------ #
    def propose(self, rng: np.random.Generator) -> SynthesisAttempt:
        """Run steps 1-3 of Mechanism 1 once and return the attempt."""
        seed_index = int(rng.integers(len(self._seeds)))
        seed = self._seeds.record(seed_index)
        candidate = self._model.generate(seed, rng)
        return self.evaluate_candidate(seed_index, candidate, rng)

    def evaluate_candidate(
        self,
        seed_index: int,
        candidate: np.ndarray,
        rng: np.random.Generator,
    ) -> SynthesisAttempt:
        """Run the privacy test for an externally generated candidate."""
        seed = self._seeds.record(seed_index)
        seed_probability = self._model.seed_probability(seed, candidate)
        dataset_probabilities = self._model.batch_seed_probabilities(
            self._seeds.data, candidate
        )
        result = self._test(seed_probability, dataset_probabilities, rng)
        return SynthesisAttempt(seed_index=seed_index, candidate=candidate, test=result)

    # ------------------------------------------------------------------ #
    # Batch operation
    # ------------------------------------------------------------------ #
    def generate(
        self,
        num_released: int,
        rng: np.random.Generator,
        max_attempts: int | None = None,
    ) -> SynthesisReport:
        """Propose candidates until ``num_released`` records pass the test.

        ``max_attempts`` bounds the total number of proposals (default: 100
        attempts per requested record); the report may therefore contain fewer
        released records than requested when the privacy parameters are
        strict.
        """
        if num_released < 0:
            raise ValueError("num_released must be non-negative")
        limit = max_attempts if max_attempts is not None else 100 * max(1, num_released)
        report = SynthesisReport(schema=self._seeds.schema)
        while report.num_released < num_released and report.num_attempts < limit:
            report.record(self.propose(rng))
        return report

    def run_attempts(self, num_attempts: int, rng: np.random.Generator) -> SynthesisReport:
        """Propose exactly ``num_attempts`` candidates (used for pass-rate studies)."""
        if num_attempts < 0:
            raise ValueError("num_attempts must be non-negative")
        report = SynthesisReport(schema=self._seeds.schema)
        for _ in range(num_attempts):
            report.record(self.propose(rng))
        return report
