"""Persistent shared-memory parallel synthesis engine.

The paper generates millions of plausibly-deniable synthetics by running many
tool instances in parallel (Section 5, Figure 5).  The first-generation
``generate_in_parallel`` reproduced that with a one-shot ``pool.map``: the
whole model and seed matrix were pickled per task, attempts were split
statically, and a run could not stop when a global release target was
reached.  :class:`SynthesisEngine` replaces it with a long-lived execution
layer:

* **Shared memory instead of per-task pickling.**  The seed matrix — and the
  Bayesian-network conditional tables where feasible — live in
  ``multiprocessing.shared_memory`` segments created once per engine; workers
  attach zero-copy read-only views at startup.  Only a small skeleton spec
  (schema, structure, array offsets) is pickled, once, when the pool starts.

* **Dynamic until-N dispatch.**  Work is claimed as fixed-size chunks from a
  shared counter, so fast workers steal load instead of idling behind a
  static split.  In until-N-released mode a shared released counter stops
  workers within about one chunk of the target instead of burning a static
  attempt budget.

* **Deterministic chunk streams.**  Chunk ``i`` always uses the RNG stream
  ``SeedSequence(base_seed, spawn_key=(i,))`` (exactly the ``i``-th spawned
  child of ``SeedSequence(base_seed)``), so a chunk's content depends only on
  its index — never on which worker ran it or on scheduling order.  The
  merged report is the in-order concatenation of the chunk reports truncated
  at the Nth release, which makes every worker count produce the *identical*
  release and accounting as the serial in-process run on the same chunks.
  Chunks a speculating worker completes beyond that point are discarded
  without being recorded; like the unrecorded remainder of the final batch in
  the mechanism's until-N loop, they are i.i.d. proposals whose omission
  introduces no bias.

* **Request folding.**  :meth:`SynthesisEngine.generate_folded` fuses many
  until-N requests into ONE pool job: each request becomes a *lane* with its
  own base seed, attempt budget, release target and lane-local chunk grid,
  and the lanes' chunk plans are round-robin interleaved into a single
  dispatch.  Because a chunk's content is a pure function of (lane seed,
  local index), every lane's merged report is bit-identical to running that
  request alone — folding changes only *when* chunks run, never what they
  contain.  The serving layer uses this to turn K queued requests for one
  model into one fused scan instead of K convoyed runs.

* **Streaming reports and checkpoints.**  Chunk reports arrive incrementally
  (``progress`` callback) and can be checkpointed to a
  :class:`~repro.core.run_store.RunStore`, so a crashed or repeated run
  resumes from its completed chunks instead of regenerating them.

* **Worker supervision with deterministic chunk retry.**  Each worker
  records the chunk it is executing in a crash-proof shared in-flight table
  before touching it.  When the parent's collection loop notices a dead
  process (exitcode watch), it respawns a replacement against the *existing*
  shared-memory segments, re-dispatches the current job to it, and queues
  the lost chunk for re-execution — which is bit-identical to the lost run
  because a chunk's content is a pure function of its index.  Retries are
  bounded by ``max_chunk_retries``; past the bound the job fails with
  :class:`ChunkRetryExhaustedError` while the pool (already repaired) stays
  usable.  An unrepairable pool — a worker lost during startup, or a respawn
  that itself fails — marks the engine broken and every subsequent call
  raises :class:`EngineBrokenError` instead of hanging on corrupted queues.
  :meth:`SynthesisEngine.pool_health` exposes the restart and per-chunk
  retry counters next to :meth:`SynthesisEngine.workload_fingerprint`.

The serial reference loop (``num_workers=1``, which runs fully in-process
with no subprocesses or shared memory) is the equivalence oracle for the
parallel path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import traceback
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from queue import Empty
from typing import Callable, Sequence

import numpy as np

from repro.core.mechanism import SynthesisMechanism
from repro.core.results import SynthesisReport
from repro.obs.profile import phase as obs_phase
from repro.core.run_store import RunStore, dataset_fingerprint
from repro.datasets.dataset import Dataset
from repro.datasets.schema import Schema
from repro.generative.base import GenerativeModel
from repro.privacy.approximate import ApproximateTestConfig
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

__all__ = [
    "ChunkProgress",
    "ChunkRetryExhaustedError",
    "EngineBrokenError",
    "FoldSpec",
    "MAX_FOLD_LANES",
    "SynthesisEngine",
    "chunk_rng",
]

#: Upper bound on requests fused into one :meth:`SynthesisEngine.generate_folded`
#: job.  The per-lane released counters live in one fixed-size shared array
#: allocated at pool startup, so the bound must be known before any job runs.
MAX_FOLD_LANES = 64


class EngineBrokenError(RuntimeError):
    """The worker pool is unrecoverable; the engine refuses further work.

    Raised when a worker dies during pool startup or a supervised respawn
    itself fails.  The broken flag is sticky: every subsequent run call fails
    fast with this error instead of hanging on inconsistent queues.  Build a
    fresh engine to continue.
    """


class ChunkRetryExhaustedError(RuntimeError):
    """A chunk's crash-retry budget (``max_chunk_retries``) ran out.

    The failing *job* is abandoned cleanly, but the pool has already been
    repaired — dead workers respawned, or fully rebuilt when the crash
    wedged the shared queues — so the engine itself remains usable for
    subsequent runs.
    """

    def __init__(self, message: str, chunk_indices: tuple[int, ...] = ()):
        super().__init__(message)
        self.chunk_indices = chunk_indices


class _PoolStuckError(RuntimeError):
    """The pool is live but silent: no messages, no deaths, nothing in flight.

    A SIGKILL can land while the dying worker's queue feeder thread holds the
    shared results queue's write lock; every surviving worker's messages then
    wedge behind a lock no process will ever release.  The workers are alive,
    so supervision sees nothing to respawn — the only recovery is rebuilding
    the pool on fresh queues and resuming the job from the chunks already
    received (chunk content is a pure function of the chunk index, so the
    resumed run is bit-identical).

    ``exhausted`` carries any chunks whose crash-retry budget ran out before
    the wedge: that verdict must survive the rebuild — resuming would rerun
    the job with a fresh retry budget and silently forgive the crashes.
    """

    def __init__(self, message: str, exhausted: tuple[int, ...] = ()):
        super().__init__(message)
        self.exhausted = exhausted


def chunk_rng(base_seed: int, chunk_index: int) -> np.random.Generator:
    """The deterministic RNG stream of one dispatch chunk.

    ``SeedSequence(base_seed, spawn_key=(i,))`` is precisely the ``i``-th
    child ``SeedSequence(base_seed).spawn(...)`` would produce, constructed
    statelessly so any worker can derive any chunk's stream independently.
    """
    return np.random.default_rng(np.random.SeedSequence(base_seed, spawn_key=(chunk_index,)))


@dataclass(frozen=True)
class ChunkProgress:
    """One incremental progress event: a chunk report arrived at the parent.

    ``lane_index`` identifies which fold lane (request) owns the chunk —
    always 0 for unfolded single-request jobs — so the serving layer can
    attribute per-chunk telemetry spans to the right request.
    """

    chunk_index: int
    chunk_attempts: int
    chunk_released: int
    total_attempts: int
    total_released: int
    from_checkpoint: bool = False
    lane_index: int = 0


# --------------------------------------------------------------------------- #
# Shared-memory packing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ArraySpec:
    """Location of one array inside a shared-memory segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


def _pack_arrays(arrays: Sequence[np.ndarray]) -> tuple[SharedMemory, list[_ArraySpec]]:
    """Copy arrays into one freshly created shared-memory segment."""
    contiguous = [np.ascontiguousarray(array) for array in arrays]
    specs: list[_ArraySpec] = []
    offset = 0
    for array in contiguous:
        offset = (offset + 63) & ~63  # 64-byte alignment for clean vector loads
        specs.append(_ArraySpec(offset, array.shape, array.dtype.str))
        offset += array.nbytes
    segment = SharedMemory(create=True, size=max(offset, 1))
    for array, spec in zip(contiguous, specs):
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf, offset=spec.offset)
        view[...] = array
    return segment, specs


def _attach_segment(name: str) -> SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    On POSIX Pythons before 3.13 *attaching* also registers the segment with
    the resource tracker.  Spawned workers share the parent's tracker
    process, whose cache is a per-name set, so the duplicate registration is
    a no-op and the parent's ``unlink()`` unregisters exactly once; an
    explicit worker-side unregister would instead delete the parent's entry
    and make the final unlink double-unregister.  (If the parent dies
    without cleanup, the shared tracker unlinks the leaked segment — which
    is the behaviour we want.)
    """
    return SharedMemory(name=name)


def _attach_array(segment: SharedMemory, spec: _ArraySpec) -> np.ndarray:
    view = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf, offset=spec.offset
    )
    view.flags.writeable = False
    return view


# --------------------------------------------------------------------------- #
# Worker-side state
# --------------------------------------------------------------------------- #
@dataclass
class _WorkerSpec:
    """Everything a worker needs to rebuild its mechanism, pickled once."""

    schema_attributes: tuple
    params: PlausibleDeniabilityParams
    seed_segment: str
    seed_spec: _ArraySpec
    # Bayesian-network fast path: tables live in shared memory.
    table_segment: str | None = None
    structure: object | None = None
    omegas: tuple[int, ...] | None = None
    tables_meta: list[tuple[int, tuple[int, ...], tuple[int, ...], _ArraySpec, _ArraySpec, _ArraySpec]] | None = None
    # Fallback for arbitrary models: pickled once per worker (not per task).
    fallback_model: GenerativeModel | None = None
    # Bounded-latency approximate privacy testing (None = exact scan).
    approximate: ApproximateTestConfig | None = None


@dataclass(frozen=True)
class FoldSpec:
    """One request of a folded :meth:`SynthesisEngine.generate_folded` call.

    Mirrors the corresponding :meth:`SynthesisEngine.generate` arguments.
    The folded run's report for this spec is bit-identical to the standalone
    ``generate(num_released, base_seed=..., max_attempts=...)`` call, because
    each spec becomes its own *lane* with its own chunk-local RNG streams.
    """

    num_released: int
    base_seed: int = 0
    max_attempts: int | None = None


@dataclass(frozen=True)
class _Lane:
    """One request's share of a (possibly fused) job.

    A lane owns a standalone attempt budget, base seed and release target;
    its chunk-local indices ``0..num_chunks-1`` are seeded exactly as an
    unfolded run of the same request, so a lane's output never depends on
    which other lanes shared the job.
    """

    limit: int
    base_seed: int
    target_released: int | None

    def num_chunks(self, chunk_size: int) -> int:
        return -(-self.limit // chunk_size) if self.limit > 0 else 0

    def chunk_attempts(self, local_index: int, chunk_size: int) -> int:
        return min(chunk_size, self.limit - local_index * chunk_size)


def _fold_plan(lane_chunks: Sequence[int]) -> tuple[tuple[int, int], ...]:
    """Round-robin interleaving of the lanes' chunk plans.

    Round ``r`` visits every lane that still has an ``r``-th chunk, in lane
    order, so the shared dispatch counter stays close to *every* lane's
    release frontier: until-N lanes stop within about one chunk of their
    target instead of speculating deep into one request while another
    starves.  Within a lane the plan preserves local order — the worker-side
    skip logic relies on claims arriving in lane-local order.
    """
    plan: list[tuple[int, int]] = []
    for round_index in range(max(lane_chunks, default=0)):
        for lane_index, count in enumerate(lane_chunks):
            if round_index < count:
                plan.append((lane_index, round_index))
    return tuple(plan)


def _lane_globals(job: "_Job") -> list[list[int]]:
    """Per lane, the global chunk indices of its local chunks, in local order."""
    if job.plan is None:
        return [list(range(job.num_chunks))]
    table: list[list[int]] = [[] for _ in job.lanes]
    for index, (lane_index, _local_index) in enumerate(job.plan):
        table[lane_index].append(index)
    return table


@dataclass(frozen=True)
class _Job:
    """One dispatched run: one or more request lanes over a shared chunk plan.

    ``plan`` maps global chunk index to ``(lane, lane-local chunk)``; ``None``
    is the identity plan of a single-lane job (the common, unfolded case),
    kept implicit so the per-chunk hot path pays no table lookup.
    ``completed`` holds *global* indices adopted from a checkpoint.
    """

    job_id: int
    chunk_size: int
    batch_size: int | None
    lanes: tuple[_Lane, ...]
    plan: tuple[tuple[int, int], ...] | None
    completed: frozenset[int]

    @property
    def num_chunks(self) -> int:
        if self.plan is not None:
            return len(self.plan)
        return self.lanes[0].num_chunks(self.chunk_size)

    def entry(self, index: int) -> tuple[int, int]:
        """``(lane index, lane-local chunk index)`` of global chunk ``index``."""
        return self.plan[index] if self.plan is not None else (0, index)

    def chunk_attempts(self, index: int) -> int:
        lane_index, local_index = self.entry(index)
        return self.lanes[lane_index].chunk_attempts(local_index, self.chunk_size)

    # Single-lane accessors: checkpoint signatures and resume metadata address
    # the unfolded case through these (folded jobs never checkpoint).
    @property
    def limit(self) -> int:
        return self.lanes[0].limit

    @property
    def base_seed(self) -> int:
        return self.lanes[0].base_seed

    @property
    def target_released(self) -> int | None:
        return self.lanes[0].target_released


def _lanes_satisfied(job: _Job, lane_released) -> bool:
    """True when every lane's shared released counter has met its target.

    Lanes without a target (fixed attempt budgets) are never satisfied early;
    their chunks must all be claimed from the counter, as before folding.
    """
    for lane_index, lane in enumerate(job.lanes):
        if lane.target_released is None:
            return False
        if lane_released[lane_index] < lane.target_released:
            return False
    return True


def _build_worker_mechanism(spec: _WorkerSpec, segments: list[SharedMemory]) -> SynthesisMechanism:
    schema = Schema(list(spec.schema_attributes))
    seed_segment = _attach_segment(spec.seed_segment)
    segments.append(seed_segment)
    seeds = Dataset(schema, _attach_array(seed_segment, spec.seed_spec))

    if spec.fallback_model is not None:
        model: GenerativeModel = spec.fallback_model
    else:
        from repro.generative.bayesian_network import BayesianNetworkSynthesizer
        from repro.generative.parameters import ConditionalParameters

        assert spec.table_segment is not None and spec.tables_meta is not None
        table_segment = _attach_segment(spec.table_segment)
        segments.append(table_segment)
        tables = []
        for attribute_index, parents, cardinalities, table_spec, counts_spec, prior_spec in spec.tables_meta:
            tables.append(
                ConditionalParameters(
                    attribute_index=attribute_index,
                    parents=tuple(parents),
                    parent_cardinalities=tuple(cardinalities),
                    table=_attach_array(table_segment, table_spec),
                    counts=_attach_array(table_segment, counts_spec),
                    prior=_attach_array(table_segment, prior_spec),
                )
            )
        model = BayesianNetworkSynthesizer(schema, spec.structure, tables, spec.omegas)
    mechanism = SynthesisMechanism(
        model, seeds, spec.params, approximate=spec.approximate
    )
    mechanism.prepare()
    return mechanism


def _worker_main(
    slot,
    spec,
    job_queue,
    results_queue,
    retry_queue,
    next_chunk,
    lane_released,
    stop_flag,
    inflight,
    fault,
):
    """Worker entry point: build the mechanism once, then serve jobs forever.

    ``inflight[slot]`` is this worker's crash-proof claim record: it holds the
    chunk index being executed (-1 when idle) and is written *before* the
    chunk runs, so the supervisor can re-dispatch exactly the lost chunk of a
    SIGKILLed worker without relying on queue messages that may never have
    been flushed.  ``retry_queue`` carries those re-dispatched indices; they
    are claimed ahead of the shared counter.  ``lane_released`` holds one
    shared released counter per lane of the current job (index 0 for the
    common single-lane case).  ``fault`` is an optional
    :mod:`repro.testing.faults` injection point fired before each chunk.
    """
    segments: list[SharedMemory] = []
    try:
        mechanism = _build_worker_mechanism(spec, segments)
    except BaseException:
        results_queue.put((None, "error", (slot, traceback.format_exc())))
        return
    results_queue.put((None, "ready", slot))

    while True:
        job = job_queue.get()
        if job is None:
            return
        try:
            while True:
                if stop_flag.value:
                    break
                # Retry claims come first and ignore release targets: a
                # retried chunk is a hole in the contiguous prefix, and the
                # shared counter may already sit past the target on the
                # strength of post-hole chunks that cannot be delivered
                # until the hole is filled.
                index = None
                try:
                    index = retry_queue.get_nowait()
                except Empty:
                    pass
                if index is None:
                    if _lanes_satisfied(job, lane_released):
                        break
                    with next_chunk.get_lock():
                        index = next_chunk.value
                        if index >= job.num_chunks:
                            break
                        next_chunk.value = index + 1
                    if index in job.completed:
                        continue
                    lane_index, local_index = job.entry(index)
                    lane = job.lanes[lane_index]
                    if (
                        lane.target_released is not None
                        and lane_released[lane_index] >= lane.target_released
                    ):
                        # The lane met its target on the strength of chunks
                        # with lower local indices (claims arrive in lane-
                        # local order): consume the claim without executing.
                        continue
                else:
                    if index >= job.num_chunks or index in job.completed:
                        continue
                    lane_index, local_index = job.entry(index)
                    lane = job.lanes[lane_index]
                inflight[slot] = index
                if fault is not None:
                    fault.fire(index)
                report = mechanism.run_attempts(
                    job.chunk_attempts(index),
                    chunk_rng(lane.base_seed, local_index),
                    batch_size=job.batch_size,
                )
                with lane_released.get_lock():
                    lane_released[lane_index] += report.num_released
                results_queue.put(
                    (job.job_id, "chunk", (index, report.to_arrays(), report.num_released))
                )
                inflight[slot] = -1
            inflight[slot] = -1
            results_queue.put((job.job_id, "done", slot))
        except BaseException:
            inflight[slot] = -1
            results_queue.put((job.job_id, "error", (slot, traceback.format_exc())))


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
class SynthesisEngine:
    """Chunk-dispatching synthesis executor with a persistent worker pool.

    Parameters
    ----------
    model:
        The fitted generative model.  Bayesian-network synthesizers have
        their conditional tables placed in shared memory; other models are
        pickled once per worker at pool startup.
    seed_dataset:
        The seed split DS; its matrix is placed in shared memory.
    params:
        Plausible-deniability test parameters.
    num_workers:
        ``1`` (default) runs every chunk in-process — the serial reference
        path.  Larger values start that many spawn-context worker processes
        the first time a run method is called; the pool then persists across
        calls until :meth:`close`.
    chunk_size:
        Attempts per dispatched chunk.  Smaller chunks balance load better
        and tighten the until-N stopping window; larger chunks amortize
        dispatch overhead.  The chunk grid is part of a run's RNG layout, so
        reproducing or resuming a run requires the same chunk size.
    batch_size:
        Vectorized proposal batch size used inside each chunk (``None``/1
        selects the single-record reference loop).
    run_store:
        Optional :class:`~repro.core.run_store.RunStore`; run methods given a
        ``run_id`` checkpoint completed chunks there and resume from them.
    max_chunk_retries:
        How many times a chunk lost to a *crashed* worker may be re-executed
        before the job fails with :class:`ChunkRetryExhaustedError`.  ``0``
        disables retry (any crash mid-chunk fails the job) while still
        respawning the dead worker so the engine stays usable.
    fault_injector:
        Optional :mod:`repro.testing.faults` fault point fired by each worker
        before executing a chunk (chaos tests only; must be picklable).

    Use as a context manager (or call :meth:`close`) so worker processes and
    shared-memory segments are released deterministically.
    """

    _POLL_SECONDS = 1.0
    #: Consecutive empty polls — with every worker alive but idle — before
    #: the shared queues are declared wedged (see :class:`_PoolStuckError`).
    _STUCK_POLLS = 15
    #: Pool rebuilds allowed per job before the engine gives up as broken.
    _MAX_POOL_REBUILDS = 2

    def __init__(
        self,
        model: GenerativeModel,
        seed_dataset: Dataset,
        params: PlausibleDeniabilityParams,
        *,
        num_workers: int = 1,
        chunk_size: int = 512,
        batch_size: int | None = 256,
        run_store: RunStore | None = None,
        max_chunk_retries: int = 2,
        fault_injector=None,
        approximate: ApproximateTestConfig | None = None,
        event_sink=None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive when provided")
        if max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be non-negative")
        self._model = model
        self._seeds = seed_dataset
        self._schema = seed_dataset.schema
        self._params = params
        self._num_workers = num_workers
        self._chunk_size = chunk_size
        self._batch_size = batch_size
        self._run_store = run_store
        self._max_chunk_retries = max_chunk_retries
        self._fault_injector = fault_injector
        self._approximate = approximate
        # Optional supervision-event callback ``(kind, payload)`` with kind
        # in {"worker_restart", "chunk_retry", "pool_rebuild"}.  Telemetry
        # only: it must not raise, and it never influences execution.
        self._event_sink = event_sink
        self._job_counter = 0
        self._pending_done = 0
        self._workload_digest: str | None = None
        self._local_mechanism: SynthesisMechanism | None = None
        # Pool state (populated by start() when num_workers > 1).
        self._started = False
        self._closed = False
        self._broken = False
        self._worker_spec: _WorkerSpec | None = None
        self._processes: list = []
        self._job_queues: list = []
        self._results_queue = None
        self._retry_queue = None
        self._next_chunk = None
        self._lane_released = None
        self._stop_flag = None
        self._inflight = None
        self._segments: list[SharedMemory] = []
        # Supervision bookkeeping.
        self._worker_restarts = 0
        self._pool_rebuilds = 0
        self._chunk_retries: dict[int, int] = {}  # chunk -> crash re-executions (current job)
        self._retry_pending: set[int] = set()  # requeued chunks awaiting redelivery
        self._slot_owes_done: set[int] = set()  # slots dispatched the current job

    @property
    def num_workers(self) -> int:
        """Number of worker processes (1 = serial in-process reference path)."""
        return self._num_workers

    @property
    def chunk_size(self) -> int:
        """Attempts per dispatched chunk."""
        return self._chunk_size

    @property
    def batch_size(self) -> int | None:
        """Vectorized proposal batch size inside each chunk (None/1 = reference loop)."""
        return self._batch_size

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "SynthesisEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def start(self) -> "SynthesisEngine":
        """Start the worker pool eagerly (otherwise started on first run).

        Blocks until every worker has attached the shared-memory segments,
        rebuilt its mechanism and reported ready, so subsequent run calls
        (and their timings) contain no startup cost.  A no-op for
        ``num_workers=1`` and for an already started pool.
        """
        if self._closed:
            raise RuntimeError("the engine has been closed")
        if self._broken:
            raise EngineBrokenError("the engine pool is broken; build a fresh engine")
        if self._num_workers == 1 or self._started:
            return self
        self._worker_spec = self._build_worker_spec()
        context = get_context("spawn")
        self._results_queue = context.Queue()
        self._retry_queue = context.Queue()
        self._next_chunk = context.Value("l", 0)
        self._lane_released = context.Array("l", [0] * MAX_FOLD_LANES)
        self._stop_flag = context.Value("b", 0)
        self._inflight = context.Array("l", [-1] * self._num_workers, lock=False)
        for slot in range(self._num_workers):
            self._job_queues.append(context.Queue())
            self._processes.append(None)
            self._spawn_worker(slot)
        self._started = True
        ready = 0
        while ready < self._num_workers:
            _job_id, kind, payload = self._next_message()
            if kind == "error":
                self.close()
                raise RuntimeError(f"engine worker failed to start:\n{payload[1]}")
            if kind == "ready":
                ready += 1
        return self

    def _spawn_worker(self, slot: int) -> None:
        """(Re)start the worker of ``slot`` against the existing segments."""
        context = get_context("spawn")
        try:
            process = context.Process(
                target=_worker_main,
                args=(
                    slot,
                    self._worker_spec,
                    self._job_queues[slot],
                    self._results_queue,
                    self._retry_queue,
                    self._next_chunk,
                    self._lane_released,
                    self._stop_flag,
                    self._inflight,
                    self._fault_injector,
                ),
                daemon=True,
            )
            process.start()
        except BaseException as exc:
            self._broken = True
            raise EngineBrokenError(
                f"failed to (re)spawn engine worker {slot}: {exc}"
            ) from exc
        self._processes[slot] = process

    def close(self) -> None:
        """Stop the workers and release the shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        for job_queue in self._job_queues:
            try:
                job_queue.put(None)
            except Exception:
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        self._segments.clear()
        self._processes.clear()
        self._job_queues.clear()

    def _build_worker_spec(self) -> _WorkerSpec:
        seed_segment, (seed_spec,) = _pack_arrays([self._seeds.data])
        self._segments.append(seed_segment)
        common = dict(
            schema_attributes=tuple(self._schema.attributes),
            params=self._params,
            seed_segment=seed_segment.name,
            seed_spec=seed_spec,
            approximate=self._approximate,
        )
        from repro.generative.bayesian_network import BayesianNetworkSynthesizer

        if not isinstance(self._model, BayesianNetworkSynthesizer):
            return _WorkerSpec(fallback_model=self._model, **common)
        arrays: list[np.ndarray] = []
        for table in self._model.tables:
            arrays.extend([table.table, table.counts, table.prior])
        table_segment, specs = _pack_arrays(arrays)
        self._segments.append(table_segment)
        tables_meta = [
            (
                table.attribute_index,
                table.parents,
                table.parent_cardinalities,
                specs[3 * index],
                specs[3 * index + 1],
                specs[3 * index + 2],
            )
            for index, table in enumerate(self._model.tables)
        ]
        return _WorkerSpec(
            table_segment=table_segment.name,
            structure=self._model.structure,
            omegas=self._model.omegas,
            tables_meta=tables_meta,
            **common,
        )

    # ------------------------------------------------------------------ #
    # Run modes
    # ------------------------------------------------------------------ #
    def run_attempts(
        self,
        num_attempts: int,
        base_seed: int = 0,
        *,
        progress: Callable[[ChunkProgress], None] | None = None,
        run_id: str | None = None,
    ) -> SynthesisReport:
        """Propose exactly ``num_attempts`` candidates across the pool.

        The result is identical for every worker count: it equals the
        concatenation of the deterministic per-chunk reports in chunk order.
        ``base_seed`` selects the family of chunk streams — reuse it to
        reproduce a run, vary it to draw fresh candidates.
        """
        if num_attempts < 0:
            raise ValueError("num_attempts must be non-negative")
        return self._execute(
            limit=num_attempts,
            target_released=None,
            base_seed=base_seed,
            progress=progress,
            run_id=run_id,
        )

    def generate(
        self,
        num_released: int,
        base_seed: int = 0,
        *,
        max_attempts: int | None = None,
        progress: Callable[[ChunkProgress], None] | None = None,
        run_id: str | None = None,
    ) -> SynthesisReport:
        """Propose candidates until ``num_released`` pass the privacy test.

        Workers coordinate through a shared released counter, so generation
        stops within about one chunk per worker of the target instead of
        running out a static attempt budget.  ``max_attempts`` (default: 100
        per requested record, as in the serial mechanism) still bounds the
        run when the parameters are too strict to reach the target.  The
        released records and the merged accounting are identical for every
        worker count.
        """
        if num_released < 0:
            raise ValueError("num_released must be non-negative")
        limit = max_attempts if max_attempts is not None else 100 * max(1, num_released)
        if limit < 0:
            raise ValueError("max_attempts must be non-negative")
        return self._execute(
            limit=limit,
            target_released=num_released,
            base_seed=base_seed,
            progress=progress,
            run_id=run_id,
        )

    def generate_folded(
        self,
        specs: Sequence[FoldSpec],
        *,
        progress: Callable[[ChunkProgress], None] | None = None,
    ) -> list[SynthesisReport]:
        """Run several :meth:`generate` requests as one fused job.

        Each spec becomes its own *lane*: an independent attempt budget,
        release target and family of chunk RNG streams, exactly as a
        standalone ``generate`` call would lay them out.  The lanes' chunk
        plans are concatenated (round-robin interleaved) into one global
        dispatch over the shared worker pool, so the pool works on all
        requests concurrently instead of convoying one request at a time;
        afterwards the merged results are split back per lane by chunk
        ownership.  The ``i``-th returned report is bit-identical — rows,
        attempts, accounting — to ``generate(specs[i].num_released,
        base_seed=specs[i].base_seed, max_attempts=specs[i].max_attempts)``
        run on its own, for every worker count.

        Folded jobs do not checkpoint (no ``run_id``): they are the serving
        layer's fast path, where per-request idempotency already provides
        replay.  At most :data:`MAX_FOLD_LANES` specs fold into one job.
        """
        if len(specs) > MAX_FOLD_LANES:
            raise ValueError(
                f"at most {MAX_FOLD_LANES} requests can be folded into one job "
                f"(got {len(specs)})"
            )
        lanes: list[_Lane] = []
        for spec in specs:
            if spec.num_released < 0:
                raise ValueError("num_released must be non-negative")
            limit = (
                spec.max_attempts
                if spec.max_attempts is not None
                else 100 * max(1, spec.num_released)
            )
            if limit < 0:
                raise ValueError("max_attempts must be non-negative")
            lanes.append(
                _Lane(
                    limit=limit,
                    base_seed=spec.base_seed,
                    target_released=spec.num_released,
                )
            )
        if not lanes:
            return []
        plan = None
        if len(lanes) > 1:
            plan = _fold_plan(
                [lane.num_chunks(self._chunk_size) for lane in lanes]
            )
        return self._execute_lanes(tuple(lanes), plan, progress, run_id=None)

    # ------------------------------------------------------------------ #
    # Execution internals
    # ------------------------------------------------------------------ #
    def _execute(
        self,
        limit: int,
        target_released: int | None,
        base_seed: int,
        progress: Callable[[ChunkProgress], None] | None,
        run_id: str | None,
    ) -> SynthesisReport:
        lanes = (
            _Lane(limit=limit, base_seed=base_seed, target_released=target_released),
        )
        return self._execute_lanes(lanes, None, progress, run_id)[0]

    def _execute_lanes(
        self,
        lanes: tuple[_Lane, ...],
        plan: tuple[tuple[int, int], ...] | None,
        progress: Callable[[ChunkProgress], None] | None,
        run_id: str | None,
    ) -> list[SynthesisReport]:
        if self._closed:
            raise RuntimeError("the engine has been closed")
        if self._broken:
            raise EngineBrokenError("the engine pool is broken; build a fresh engine")
        self._job_counter += 1
        job = _Job(
            job_id=self._job_counter,
            chunk_size=self._chunk_size,
            batch_size=self._batch_size,
            lanes=lanes,
            plan=plan,
            completed=frozenset(),
        )
        # Only the contiguous prefix of checkpointed chunks is adopted: a
        # post-gap chunk's releases would preset the shared released counter
        # and could stop the pool before the gap is ever filled, silently
        # under-delivering.  Gap and post-gap chunks are simply regenerated —
        # chunk content is a pure function of the chunk index, so the rerun
        # is bit-identical to the checkpoint it replaces.
        loaded = self._load_checkpoint(job, run_id)
        reports: dict[int, SynthesisReport] = {}
        index = 0
        while index in loaded:
            reports[index] = loaded[index]
            index += 1
        if reports:
            job = dataclasses.replace(job, completed=frozenset(reports))
        tracker = _ProgressTracker(progress, job)
        for index in sorted(reports):
            tracker.emit(index, reports[index], from_checkpoint=True)

        if self._num_workers == 1:
            self._run_in_process(job, reports, tracker, run_id)
        else:
            rebuilds = 0
            self._chunk_retries = {}  # fresh crash-retry budget per job
            while True:
                self.start()
                try:
                    self._run_on_pool(job, reports, tracker, run_id)
                    break
                except _PoolStuckError as exc:
                    rebuilds += 1
                    if rebuilds > self._MAX_POOL_REBUILDS:
                        self._broken = True
                        self.close()
                        raise EngineBrokenError(
                            f"the worker pool wedged {rebuilds} times on one "
                            f"job ({exc}); the engine is broken"
                        ) from exc
                    self._rebuild_pool()
                    if exc.exhausted:
                        # The retry-budget verdict predates the wedge and must
                        # not be forgiven by the rebuild: the job is abandoned
                        # exactly as if the pool had drained cleanly.
                        raise ChunkRetryExhaustedError(
                            f"chunk(s) {list(exc.exhausted)} crashed more than "
                            f"max_chunk_retries={self._max_chunk_retries} "
                            "times; the job was abandoned but the pool has "
                            "been rebuilt and the engine remains usable",
                            chunk_indices=exc.exhausted,
                        ) from exc
                    # Resume from the chunks already received, under the same
                    # rule as checkpoint adoption: keep each lane's contiguous
                    # delivered prefix, regenerate the rest.  A post-gap
                    # report must not preset the released counters (it could
                    # stop an until-N lane before its gap is filled), and
                    # re-executing is bit-identical anyway.
                    kept: set[int] = set()
                    for lane_order in _lane_globals(job):
                        for index in lane_order:
                            if index not in reports:
                                break
                            kept.add(index)
                    for index in [i for i in reports if i not in kept]:
                        del reports[index]
                    job = dataclasses.replace(job, completed=frozenset(kept))
        return self._finalize(job, reports)

    @staticmethod
    def _lane_released_sums(job: _Job, reports: dict[int, SynthesisReport]) -> list[int]:
        """Per-lane released totals over the chunk reports received so far."""
        sums = [0] * len(job.lanes)
        for index, report in reports.items():
            if index < job.num_chunks:
                lane_index, _local_index = job.entry(index)
                sums[lane_index] += report.num_released
        return sums

    def _mechanism(self) -> SynthesisMechanism:
        if self._local_mechanism is None:
            self._local_mechanism = SynthesisMechanism(
                self._model,
                self._seeds,
                self._params,
                approximate=self._approximate,
            ).prepare()
        return self._local_mechanism

    def _run_in_process(
        self,
        job: _Job,
        reports: dict[int, SynthesisReport],
        tracker: "_ProgressTracker",
        run_id: str | None,
    ) -> None:
        mechanism = self._mechanism()
        lane_globals = _lane_globals(job)
        # Lanes run one after the other — literally the K serial unfolded
        # requests — which is exactly what the pool path must be bit-identical
        # to (chunk content is a pure function of (lane seed, local index), so
        # execution order never matters).
        for lane_index, lane in enumerate(job.lanes):
            released = 0
            for local_index, index in enumerate(lane_globals[lane_index]):
                if lane.target_released is not None and released >= lane.target_released:
                    break
                report = reports.get(index)
                if report is None:
                    report = mechanism.run_attempts(
                        lane.chunk_attempts(local_index, job.chunk_size),
                        chunk_rng(lane.base_seed, local_index),
                        batch_size=job.batch_size,
                    )
                    reports[index] = report
                    self._save_checkpoint(run_id, index, report.to_arrays())
                    tracker.emit(index, report)
                released += report.num_released

    def _run_on_pool(
        self,
        job: _Job,
        reports: dict[int, SynthesisReport],
        tracker: "_ProgressTracker",
        run_id: str | None,
    ) -> None:
        if self._pending_done:
            # A previous job's collection loop was interrupted (exception in
            # a progress callback, Ctrl-C, ...).  Its workers may still be
            # claiming chunks from the shared counters, so wait for them to
            # go quiescent before resetting state for this job.
            self._stop_flag.value = 1
            silent_polls = 0
            while self._pending_done:
                try:
                    _job_id, kind, _payload = self._results_queue.get(
                        timeout=self._POLL_SECONDS
                    )
                except Empty:
                    # A worker that died while owing a "done" will never send
                    # it; respawn it (idle: the stale job is abandoned) and
                    # stop waiting on its behalf.
                    restarts = self._worker_restarts
                    self._supervise(None, {}, None)
                    silent_polls = (
                        0
                        if self._worker_restarts != restarts
                        or any(int(flag) >= 0 for flag in self._inflight)
                        else silent_polls + 1
                    )
                    if silent_polls >= self._STUCK_POLLS:
                        raise _PoolStuckError(
                            "the stale-job drain made no progress for "
                            f"{silent_polls} polls"
                        )
                    continue
                silent_polls = 0
                if kind in ("done", "error"):
                    self._pending_done -= 1
        while True:  # clear retry indices a stopped job never consumed
            try:
                self._retry_queue.get_nowait()
            except Empty:
                break
        self._next_chunk.value = 0
        completed_sums = self._lane_released_sums(
            job, {index: reports[index] for index in job.completed}
        )
        with self._lane_released.get_lock():
            for lane_index in range(MAX_FOLD_LANES):
                self._lane_released[lane_index] = (
                    completed_sums[lane_index]
                    if lane_index < len(completed_sums)
                    else 0
                )
        self._stop_flag.value = 0
        # _chunk_retries is NOT reset here: a pool rebuild resumes the same
        # job, and its crash-retry budget is cumulative across the resume.
        self._retry_pending = set()
        self._slot_owes_done = set(range(len(self._processes)))
        for job_queue in self._job_queues:
            job_queue.put(job)
        self._pending_done = len(self._processes)

        pending = len(self._processes)
        prefix = _FoldPrefix(job, reports)
        failure: str | None = None
        exhausted: list[int] = []
        silent_polls = 0
        try:
            while pending:
                try:
                    job_id, kind, payload = self._results_queue.get(
                        timeout=self._POLL_SECONDS
                    )
                except Empty:
                    restarts = self._worker_restarts
                    self._supervise(job, reports, exhausted)
                    if exhausted and not self._stop_flag.value:
                        self._stop_flag.value = 1
                    # Workers alive but nothing computing, nothing delivered
                    # and nobody respawned: the shared queues are wedged (a
                    # crash poisoned an internal lock) and no amount of
                    # waiting or respawning will unwedge them.
                    silent_polls = (
                        0
                        if self._worker_restarts != restarts
                        or any(int(flag) >= 0 for flag in self._inflight)
                        else silent_polls + 1
                    )
                    if silent_polls >= self._STUCK_POLLS:
                        raise _PoolStuckError(
                            f"{pending} live worker(s) sent nothing for "
                            f"{silent_polls} polls with no chunk in flight",
                            exhausted=tuple(sorted(set(exhausted))),
                        )
                    continue
                silent_polls = 0
                if job_id != job.job_id:
                    # Stale message from a job whose collection loop was
                    # interrupted (e.g. a progress callback raised): drop it
                    # rather than merging another run's chunks into this one.
                    continue
                if kind == "done":
                    pending -= 1
                    self._pending_done -= 1
                    self._slot_owes_done.discard(payload)
                elif kind == "error":
                    pending -= 1
                    self._pending_done -= 1
                    self._slot_owes_done.discard(payload[0])
                    failure = payload[1]
                    self._stop_flag.value = 1
                elif kind == "chunk":
                    index, arrays, released = payload
                    if index in reports:
                        # A crash-retried chunk raced its original message
                        # (both delivered).  The content is bit-identical, so
                        # drop the duplicate and undo its double count on the
                        # lane's shared released counter.
                        lane_index, _local_index = job.entry(index)
                        with self._lane_released.get_lock():
                            self._lane_released[lane_index] -= released
                        continue
                    report = SynthesisReport.from_arrays(self._schema, arrays)
                    reports[index] = report
                    self._retry_pending.discard(index)
                    self._save_checkpoint(run_id, index, arrays)
                    tracker.emit(index, report)
                    if not self._stop_flag.value:
                        prefix.advance(job.entry(index)[0])
                        if prefix.all_satisfied():
                            self._stop_flag.value = 1
        except BaseException:
            # Parent-side failure mid-collection: tell the workers to stop
            # claiming chunks instead of burning the rest of the budget.
            self._stop_flag.value = 1
            raise
        if failure is not None:
            raise RuntimeError(f"engine worker failed:\n{failure}")
        if exhausted:
            indices = tuple(sorted(set(exhausted)))
            raise ChunkRetryExhaustedError(
                f"chunk(s) {list(indices)} crashed more than max_chunk_retries="
                f"{self._max_chunk_retries} times; the job was abandoned but the "
                "pool has been repaired and the engine remains usable",
                chunk_indices=indices,
            )

    def _emit_event(self, kind: str, payload: dict) -> None:
        """Forward one supervision event to the telemetry sink, if any."""
        if self._event_sink is not None:
            self._event_sink(kind, payload)

    def _supervise(self, job: _Job | None, reports: dict, exhausted: list | None) -> None:
        """Detect dead workers, respawn them, and re-dispatch lost chunks.

        With a ``job`` in flight the replacement worker is handed the same
        job and every chunk the crash may have swallowed is queued for
        deterministic re-execution: the crashed worker's in-flight chunk
        (from the shared ``inflight`` table, charged against
        ``max_chunk_retries`` as the potential culprit) *and* any earlier
        claimed-but-undelivered chunk (requeued uncharged) — a SIGKILL
        can take already-``put`` messages down with the queue's feeder
        thread, so a chunk the dead worker finished minutes ago may still be
        lost.  Retries are queued before the job is re-dispatched so no
        replacement can observe the job without every hole being claimable.
        The shared released counter is resynced to the reports actually
        received so a crash between a worker's counter increment and its
        (lost) chunk message can never stop an until-N run short of its
        target.
        """
        dead_slots = [
            slot for slot, process in enumerate(self._processes) if not process.is_alive()
        ]
        respawned: list[tuple[int, bool]] = []
        for slot in dead_slots:
            lost_chunk = int(self._inflight[slot])
            self._inflight[slot] = -1
            owed = slot in self._slot_owes_done
            self._worker_restarts += 1
            self._emit_event(
                "worker_restart", {"slot": slot, "lost_chunk": lost_chunk}
            )
            self._spawn_worker(slot)  # raises EngineBrokenError on failure
            if job is None:
                if owed:
                    self._slot_owes_done.discard(slot)
                    self._pending_done -= 1
                continue
            respawned.append((slot, owed))
            if lost_chunk >= 0 and lost_chunk not in reports:
                self._requeue_chunk(lost_chunk, exhausted)
        if job is None or not respawned:
            return
        self._requeue_swallowed_chunks(job, reports)
        for slot, owed in respawned:
            if owed:
                self._job_queues[slot].put(job)  # replacement owes the done instead
        sums = self._lane_released_sums(job, reports)
        with self._lane_released.get_lock():
            for lane_index, value in enumerate(sums):
                self._lane_released[lane_index] = value

    def _requeue_chunk(self, index: int, exhausted: list) -> None:
        """Queue one chunk for re-execution, charging its crash-retry budget."""
        retries = self._chunk_retries.get(index, 0)
        if retries >= self._max_chunk_retries:
            exhausted.append(index)
        else:
            self._chunk_retries[index] = retries + 1
            self._emit_event(
                "chunk_retry", {"chunk": index, "retries": retries + 1}
            )
            self._retry_pending.add(index)
            self._retry_queue.put(index)

    def _requeue_swallowed_chunks(self, job: _Job, reports: dict) -> None:
        """Requeue every claimed chunk whose delivery the crash may have lost.

        A hole — claimed off the shared counter, not delivered, not in any
        live worker's ``inflight`` slot and not already awaiting retry — is
        either a message the dead worker's feeder thread never flushed or a
        target-met claim a lane consumed without executing.  Re-executing is
        safe in both cases: chunk content is a pure function of
        ``(base_seed, chunk_index)``, a raced duplicate delivery is dropped
        with its counter double-increment undone, and :meth:`_finalize`
        truncates each lane at its target.  Unlike the dead worker's
        in-flight chunk (the potential culprit), holes are innocent victims
        of someone else's crash, so their re-execution is *not* charged
        against ``max_chunk_retries`` — the budget still bounds crash loops
        because every crash charges whatever was in flight.
        """
        claimed = min(int(self._next_chunk.value), job.num_chunks)
        inflight = {int(self._inflight[slot]) for slot in range(len(self._processes))}
        for index in range(claimed):
            if index in reports or index in job.completed:
                continue
            if index in inflight or index in self._retry_pending:
                continue
            self._retry_pending.add(index)
            self._retry_queue.put(index)

    def _rebuild_pool(self) -> None:
        """Tear down a wedged pool and leave it ready to start from scratch.

        Respawning individual workers cannot fix state *inside* the shared
        queues — a lock a SIGKILLed feeder thread died holding stays held
        forever, and any process touching that queue wedges too.  So the
        whole process tier is discarded: workers terminated, queues and
        shared counters dropped, segments unlinked.  The next :meth:`start`
        builds everything fresh.
        """
        self._pool_rebuilds += 1
        self._emit_event("pool_rebuild", {"rebuilds": self._pool_rebuilds})
        for process in self._processes:
            if process is None or not process.is_alive():
                continue
            process.terminate()
            process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        for queue in (*self._job_queues, self._retry_queue):
            try:
                # Unflushed feeder data must not block queue finalization.
                queue.cancel_join_thread()
            except Exception:  # repro: allow[robust-swallowed-exception]
                pass  # best-effort teardown of an already-poisoned queue
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:  # repro: allow[robust-swallowed-exception]
                pass  # another close() may have unlinked the segment first
        self._segments.clear()
        self._processes.clear()
        self._job_queues.clear()
        self._results_queue = None
        self._retry_queue = None
        self._pending_done = 0
        self._started = False

    def _next_message(self):
        """One (job_id, kind, payload) startup message, watching for deaths.

        Only the :meth:`start` ready-wait uses this: a worker that dies
        before the pool is even up has nothing to retry deterministically, so
        the pool is marked broken and torn down rather than supervised.
        """
        while True:
            try:
                return self._results_queue.get(timeout=self._POLL_SECONDS)
            except Empty:
                dead = [p for p in self._processes if p is not None and not p.is_alive()]
                if dead:
                    codes = [p.exitcode for p in dead]
                    self._broken = True
                    self.close()
                    raise EngineBrokenError(
                        f"{len(dead)} engine worker(s) died during pool startup "
                        f"(exit codes: {codes}); the pool is broken"
                    ) from None

    def _finalize(
        self, job: _Job, reports: dict[int, SynthesisReport]
    ) -> list[SynthesisReport]:
        """Per lane, merge the in-order chunk prefix truncated at its target."""
        lane_globals = _lane_globals(job)
        merged: list[SynthesisReport] = []
        with obs_phase("merge"):
            for lane_index, lane in enumerate(job.lanes):
                ordered: list[SynthesisReport] = []
                released = 0
                for index in lane_globals[lane_index]:
                    if lane.target_released is not None and released >= lane.target_released:
                        break
                    report = reports.get(index)
                    if report is None:
                        if lane.target_released is None:
                            raise RuntimeError(f"chunk {index} was never completed")
                        break
                    ordered.append(report)
                    released += report.num_released
                merged.append(
                    SynthesisReport.merged(
                        self._schema, ordered, stop_after_released=lane.target_released
                    )
                )
        return merged

    # ------------------------------------------------------------------ #
    # Pool health
    # ------------------------------------------------------------------ #
    def pool_health(self) -> dict:
        """Supervision counters next to the workload identity.

        ``worker_restarts`` counts every supervised respawn over the engine's
        lifetime and ``pool_rebuilds`` every full from-scratch pool rebuild
        after a wedged-queue livelock; ``chunk_retries`` maps chunk index to
        crash re-executions for the most recent pool job; ``workers_alive``
        is the live process count (0 on the serial path, which has no pool
        to supervise).
        """
        return {
            "num_workers": self._num_workers,
            "workers_alive": sum(
                1 for p in self._processes if p is not None and p.is_alive()
            ),
            "worker_restarts": self._worker_restarts,
            "pool_rebuilds": self._pool_rebuilds,
            "chunk_retries": dict(self._chunk_retries),
            "max_chunk_retries": self._max_chunk_retries,
            "broken": self._broken,
        }

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def workload_fingerprint(self) -> str:
        """Content hash of the model and seed dataset driving this engine.

        Part of every run's checkpoint signature: resuming a run id against a
        refitted model or a different seed split would otherwise silently
        merge chunks generated from different distributions into one report.
        The serving layer also uses it to prove two engines serve the same
        published workload.
        """
        if self._workload_digest is None:
            from repro.generative.bayesian_network import BayesianNetworkSynthesizer

            digest = hashlib.sha256()
            digest.update(dataset_fingerprint(self._seeds).encode())
            if isinstance(self._model, BayesianNetworkSynthesizer):
                digest.update(repr(self._model.structure.parents).encode())
                digest.update(repr(self._model.structure.order).encode())
                digest.update(repr(self._model.omegas).encode())
                for table in self._model.tables:
                    digest.update(np.ascontiguousarray(table.table).tobytes())
            else:
                import pickle

                digest.update(pickle.dumps(self._model, protocol=4))
            self._workload_digest = digest.hexdigest()
        return self._workload_digest

    def _job_signature(self, job: _Job) -> dict:
        return {
            "limit": job.limit,
            "chunk_size": job.chunk_size,
            "base_seed": job.base_seed,
            "batch_size": job.batch_size,
            "target_released": job.target_released,
            "k": self._params.k,
            "gamma": self._params.gamma,
            "epsilon0": self._params.epsilon0,
            "max_plausible": self._params.max_plausible,
            "max_check_plausible": self._params.max_check_plausible,
            # The approximate config cannot change released rows (decisions
            # are bit-identical to exact), but it does change the recorded
            # records_checked accounting, so resumed chunks must share it.
            "approximate": (
                dataclasses.asdict(self._approximate)
                if self._approximate is not None
                else None
            ),
            "workload": self.workload_fingerprint(),
        }

    def _load_checkpoint(self, job: _Job, run_id: str | None) -> dict[int, SynthesisReport]:
        if self._run_store is None or run_id is None:
            return {}
        signature = self._job_signature(job)
        stored = self._run_store.load_run_meta(run_id)
        if stored is None:
            self._run_store.save_run_meta(run_id, signature)
            return {}
        if stored != signature:
            raise ValueError(
                f"run {run_id!r} was checkpointed with a different job signature "
                f"({stored}) than requested ({signature}); use a fresh run id or "
                "matching parameters"
            )
        return {
            index: SynthesisReport.from_arrays(self._schema, arrays)
            for index, arrays in self._run_store.load_chunks(run_id).items()
            if index < job.num_chunks
        }

    def _save_checkpoint(self, run_id: str | None, index: int, arrays: dict) -> None:
        if self._run_store is not None and run_id is not None:
            self._run_store.save_chunk(run_id, index, arrays)


class _FoldPrefix:
    """Per-lane contiguous-prefix release tracking for the collection loop.

    A lane is *satisfied* once the releases over its contiguous lane-local
    chunk prefix meet its target (or all its chunks have been received, for
    fixed-budget lanes).  The pool may stop — without losing bit-identity —
    exactly when every lane is satisfied: each lane's merged report is a
    function of its prefix alone.
    """

    def __init__(self, job: _Job, reports: dict[int, SynthesisReport]):
        self._job = job
        self._reports = reports
        self._lane_globals = _lane_globals(job)
        self._released = [0] * len(job.lanes)
        self._local = [0] * len(job.lanes)
        for lane_index in range(len(job.lanes)):
            self.advance(lane_index)

    def advance(self, lane_index: int) -> None:
        """Extend one lane's prefix over newly received chunk reports."""
        lane_order = self._lane_globals[lane_index]
        local = self._local[lane_index]
        while local < len(lane_order) and lane_order[local] in self._reports:
            self._released[lane_index] += self._reports[lane_order[local]].num_released
            local += 1
        self._local[lane_index] = local

    def lane_satisfied(self, lane_index: int) -> bool:
        lane = self._job.lanes[lane_index]
        if (
            lane.target_released is not None
            and self._released[lane_index] >= lane.target_released
        ):
            return True
        return self._local[lane_index] >= len(self._lane_globals[lane_index])

    def all_satisfied(self) -> bool:
        return all(
            self.lane_satisfied(lane_index)
            for lane_index in range(len(self._job.lanes))
        )


class _ProgressTracker:
    """Accumulates totals and forwards :class:`ChunkProgress` events.

    Holding the job lets every emission carry the owning fold lane, so the
    serving layer can attribute chunk telemetry to the right request.
    """

    def __init__(
        self,
        callback: Callable[[ChunkProgress], None] | None,
        job: "_Job | None" = None,
    ):
        self._callback = callback
        self._job = job
        self._total_attempts = 0
        self._total_released = 0

    def emit(self, index: int, report: SynthesisReport, from_checkpoint: bool = False) -> None:
        self._total_attempts += report.num_attempts
        self._total_released += report.num_released
        if self._callback is not None:
            lane_index = self._job.entry(index)[0] if self._job is not None else 0
            self._callback(
                ChunkProgress(
                    chunk_index=index,
                    chunk_attempts=report.num_attempts,
                    chunk_released=report.num_released,
                    total_attempts=self._total_attempts,
                    total_released=self._total_released,
                    from_checkpoint=from_checkpoint,
                    lane_index=lane_index,
                )
            )
