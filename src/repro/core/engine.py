"""Persistent shared-memory parallel synthesis engine.

The paper generates millions of plausibly-deniable synthetics by running many
tool instances in parallel (Section 5, Figure 5).  The first-generation
``generate_in_parallel`` reproduced that with a one-shot ``pool.map``: the
whole model and seed matrix were pickled per task, attempts were split
statically, and a run could not stop when a global release target was
reached.  :class:`SynthesisEngine` replaces it with a long-lived execution
layer:

* **Shared memory instead of per-task pickling.**  The seed matrix — and the
  Bayesian-network conditional tables where feasible — live in
  ``multiprocessing.shared_memory`` segments created once per engine; workers
  attach zero-copy read-only views at startup.  Only a small skeleton spec
  (schema, structure, array offsets) is pickled, once, when the pool starts.

* **Dynamic until-N dispatch.**  Work is claimed as fixed-size chunks from a
  shared counter, so fast workers steal load instead of idling behind a
  static split.  In until-N-released mode a shared released counter stops
  workers within about one chunk of the target instead of burning a static
  attempt budget.

* **Deterministic chunk streams.**  Chunk ``i`` always uses the RNG stream
  ``SeedSequence(base_seed, spawn_key=(i,))`` (exactly the ``i``-th spawned
  child of ``SeedSequence(base_seed)``), so a chunk's content depends only on
  its index — never on which worker ran it or on scheduling order.  The
  merged report is the in-order concatenation of the chunk reports truncated
  at the Nth release, which makes every worker count produce the *identical*
  release and accounting as the serial in-process run on the same chunks.
  Chunks a speculating worker completes beyond that point are discarded
  without being recorded; like the unrecorded remainder of the final batch in
  the mechanism's until-N loop, they are i.i.d. proposals whose omission
  introduces no bias.

* **Streaming reports and checkpoints.**  Chunk reports arrive incrementally
  (``progress`` callback) and can be checkpointed to a
  :class:`~repro.core.run_store.RunStore`, so a crashed or repeated run
  resumes from its completed chunks instead of regenerating them.

* **Worker supervision with deterministic chunk retry.**  Each worker
  records the chunk it is executing in a crash-proof shared in-flight table
  before touching it.  When the parent's collection loop notices a dead
  process (exitcode watch), it respawns a replacement against the *existing*
  shared-memory segments, re-dispatches the current job to it, and queues
  the lost chunk for re-execution — which is bit-identical to the lost run
  because a chunk's content is a pure function of its index.  Retries are
  bounded by ``max_chunk_retries``; past the bound the job fails with
  :class:`ChunkRetryExhaustedError` while the pool (already repaired) stays
  usable.  An unrepairable pool — a worker lost during startup, or a respawn
  that itself fails — marks the engine broken and every subsequent call
  raises :class:`EngineBrokenError` instead of hanging on corrupted queues.
  :meth:`SynthesisEngine.pool_health` exposes the restart and per-chunk
  retry counters next to :meth:`SynthesisEngine.workload_fingerprint`.

The serial reference loop (``num_workers=1``, which runs fully in-process
with no subprocesses or shared memory) is the equivalence oracle for the
parallel path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import traceback
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from queue import Empty
from typing import Callable, Sequence

import numpy as np

from repro.core.mechanism import SynthesisMechanism
from repro.core.results import SynthesisReport
from repro.core.run_store import RunStore, dataset_fingerprint
from repro.datasets.dataset import Dataset
from repro.datasets.schema import Schema
from repro.generative.base import GenerativeModel
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

__all__ = [
    "ChunkProgress",
    "ChunkRetryExhaustedError",
    "EngineBrokenError",
    "SynthesisEngine",
    "chunk_rng",
]


class EngineBrokenError(RuntimeError):
    """The worker pool is unrecoverable; the engine refuses further work.

    Raised when a worker dies during pool startup or a supervised respawn
    itself fails.  The broken flag is sticky: every subsequent run call fails
    fast with this error instead of hanging on inconsistent queues.  Build a
    fresh engine to continue.
    """


class ChunkRetryExhaustedError(RuntimeError):
    """A chunk's crash-retry budget (``max_chunk_retries``) ran out.

    The failing *job* is abandoned cleanly, but the pool has already been
    repaired (dead workers respawned), so the engine itself remains usable
    for subsequent runs.
    """

    def __init__(self, message: str, chunk_indices: tuple[int, ...] = ()):
        super().__init__(message)
        self.chunk_indices = chunk_indices


def chunk_rng(base_seed: int, chunk_index: int) -> np.random.Generator:
    """The deterministic RNG stream of one dispatch chunk.

    ``SeedSequence(base_seed, spawn_key=(i,))`` is precisely the ``i``-th
    child ``SeedSequence(base_seed).spawn(...)`` would produce, constructed
    statelessly so any worker can derive any chunk's stream independently.
    """
    return np.random.default_rng(np.random.SeedSequence(base_seed, spawn_key=(chunk_index,)))


@dataclass(frozen=True)
class ChunkProgress:
    """One incremental progress event: a chunk report arrived at the parent."""

    chunk_index: int
    chunk_attempts: int
    chunk_released: int
    total_attempts: int
    total_released: int
    from_checkpoint: bool = False


# --------------------------------------------------------------------------- #
# Shared-memory packing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ArraySpec:
    """Location of one array inside a shared-memory segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


def _pack_arrays(arrays: Sequence[np.ndarray]) -> tuple[SharedMemory, list[_ArraySpec]]:
    """Copy arrays into one freshly created shared-memory segment."""
    contiguous = [np.ascontiguousarray(array) for array in arrays]
    specs: list[_ArraySpec] = []
    offset = 0
    for array in contiguous:
        offset = (offset + 63) & ~63  # 64-byte alignment for clean vector loads
        specs.append(_ArraySpec(offset, array.shape, array.dtype.str))
        offset += array.nbytes
    segment = SharedMemory(create=True, size=max(offset, 1))
    for array, spec in zip(contiguous, specs):
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf, offset=spec.offset)
        view[...] = array
    return segment, specs


def _attach_segment(name: str) -> SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    On POSIX Pythons before 3.13 *attaching* also registers the segment with
    the resource tracker.  Spawned workers share the parent's tracker
    process, whose cache is a per-name set, so the duplicate registration is
    a no-op and the parent's ``unlink()`` unregisters exactly once; an
    explicit worker-side unregister would instead delete the parent's entry
    and make the final unlink double-unregister.  (If the parent dies
    without cleanup, the shared tracker unlinks the leaked segment — which
    is the behaviour we want.)
    """
    return SharedMemory(name=name)


def _attach_array(segment: SharedMemory, spec: _ArraySpec) -> np.ndarray:
    view = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf, offset=spec.offset
    )
    view.flags.writeable = False
    return view


# --------------------------------------------------------------------------- #
# Worker-side state
# --------------------------------------------------------------------------- #
@dataclass
class _WorkerSpec:
    """Everything a worker needs to rebuild its mechanism, pickled once."""

    schema_attributes: tuple
    params: PlausibleDeniabilityParams
    seed_segment: str
    seed_spec: _ArraySpec
    # Bayesian-network fast path: tables live in shared memory.
    table_segment: str | None = None
    structure: object | None = None
    omegas: tuple[int, ...] | None = None
    tables_meta: list[tuple[int, tuple[int, ...], tuple[int, ...], _ArraySpec, _ArraySpec, _ArraySpec]] | None = None
    # Fallback for arbitrary models: pickled once per worker (not per task).
    fallback_model: GenerativeModel | None = None


@dataclass(frozen=True)
class _Job:
    """One dispatched run: a chunked attempt budget, optionally until-N."""

    job_id: int
    limit: int
    chunk_size: int
    base_seed: int
    batch_size: int | None
    target_released: int | None
    completed: frozenset[int]

    @property
    def num_chunks(self) -> int:
        return -(-self.limit // self.chunk_size) if self.limit > 0 else 0

    def chunk_attempts(self, index: int) -> int:
        return min(self.chunk_size, self.limit - index * self.chunk_size)


def _build_worker_mechanism(spec: _WorkerSpec, segments: list[SharedMemory]) -> SynthesisMechanism:
    schema = Schema(list(spec.schema_attributes))
    seed_segment = _attach_segment(spec.seed_segment)
    segments.append(seed_segment)
    seeds = Dataset(schema, _attach_array(seed_segment, spec.seed_spec))

    if spec.fallback_model is not None:
        model: GenerativeModel = spec.fallback_model
    else:
        from repro.generative.bayesian_network import BayesianNetworkSynthesizer
        from repro.generative.parameters import ConditionalParameters

        assert spec.table_segment is not None and spec.tables_meta is not None
        table_segment = _attach_segment(spec.table_segment)
        segments.append(table_segment)
        tables = []
        for attribute_index, parents, cardinalities, table_spec, counts_spec, prior_spec in spec.tables_meta:
            tables.append(
                ConditionalParameters(
                    attribute_index=attribute_index,
                    parents=tuple(parents),
                    parent_cardinalities=tuple(cardinalities),
                    table=_attach_array(table_segment, table_spec),
                    counts=_attach_array(table_segment, counts_spec),
                    prior=_attach_array(table_segment, prior_spec),
                )
            )
        model = BayesianNetworkSynthesizer(schema, spec.structure, tables, spec.omegas)
    mechanism = SynthesisMechanism(model, seeds, spec.params)
    mechanism.prepare()
    return mechanism


def _worker_main(
    slot,
    spec,
    job_queue,
    results_queue,
    retry_queue,
    next_chunk,
    released_total,
    stop_flag,
    inflight,
    fault,
):
    """Worker entry point: build the mechanism once, then serve jobs forever.

    ``inflight[slot]`` is this worker's crash-proof claim record: it holds the
    chunk index being executed (-1 when idle) and is written *before* the
    chunk runs, so the supervisor can re-dispatch exactly the lost chunk of a
    SIGKILLed worker without relying on queue messages that may never have
    been flushed.  ``retry_queue`` carries those re-dispatched indices; they
    are claimed ahead of the shared counter.  ``fault`` is an optional
    :mod:`repro.testing.faults` injection point fired before each chunk.
    """
    segments: list[SharedMemory] = []
    try:
        mechanism = _build_worker_mechanism(spec, segments)
    except BaseException:
        results_queue.put((None, "error", (slot, traceback.format_exc())))
        return
    results_queue.put((None, "ready", slot))

    while True:
        job = job_queue.get()
        if job is None:
            return
        try:
            while True:
                if stop_flag.value:
                    break
                # Retry claims come first and ignore the released target: a
                # retried chunk is a hole in the contiguous prefix, and the
                # shared counter may already sit past the target on the
                # strength of post-hole chunks that cannot be delivered
                # until the hole is filled.
                index = None
                try:
                    index = retry_queue.get_nowait()
                except Empty:
                    pass
                if index is None:
                    if (
                        job.target_released is not None
                        and released_total.value >= job.target_released
                    ):
                        break
                    with next_chunk.get_lock():
                        index = next_chunk.value
                        if index >= job.num_chunks:
                            break
                        next_chunk.value = index + 1
                    if index in job.completed:
                        continue
                elif index >= job.num_chunks or index in job.completed:
                    continue
                inflight[slot] = index
                if fault is not None:
                    fault.fire(index)
                report = mechanism.run_attempts(
                    job.chunk_attempts(index),
                    chunk_rng(job.base_seed, index),
                    batch_size=job.batch_size,
                )
                with released_total.get_lock():
                    released_total.value += report.num_released
                results_queue.put(
                    (job.job_id, "chunk", (index, report.to_arrays(), report.num_released))
                )
                inflight[slot] = -1
            inflight[slot] = -1
            results_queue.put((job.job_id, "done", slot))
        except BaseException:
            inflight[slot] = -1
            results_queue.put((job.job_id, "error", (slot, traceback.format_exc())))


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
class SynthesisEngine:
    """Chunk-dispatching synthesis executor with a persistent worker pool.

    Parameters
    ----------
    model:
        The fitted generative model.  Bayesian-network synthesizers have
        their conditional tables placed in shared memory; other models are
        pickled once per worker at pool startup.
    seed_dataset:
        The seed split DS; its matrix is placed in shared memory.
    params:
        Plausible-deniability test parameters.
    num_workers:
        ``1`` (default) runs every chunk in-process — the serial reference
        path.  Larger values start that many spawn-context worker processes
        the first time a run method is called; the pool then persists across
        calls until :meth:`close`.
    chunk_size:
        Attempts per dispatched chunk.  Smaller chunks balance load better
        and tighten the until-N stopping window; larger chunks amortize
        dispatch overhead.  The chunk grid is part of a run's RNG layout, so
        reproducing or resuming a run requires the same chunk size.
    batch_size:
        Vectorized proposal batch size used inside each chunk (``None``/1
        selects the single-record reference loop).
    run_store:
        Optional :class:`~repro.core.run_store.RunStore`; run methods given a
        ``run_id`` checkpoint completed chunks there and resume from them.
    max_chunk_retries:
        How many times a chunk lost to a *crashed* worker may be re-executed
        before the job fails with :class:`ChunkRetryExhaustedError`.  ``0``
        disables retry (any crash mid-chunk fails the job) while still
        respawning the dead worker so the engine stays usable.
    fault_injector:
        Optional :mod:`repro.testing.faults` fault point fired by each worker
        before executing a chunk (chaos tests only; must be picklable).

    Use as a context manager (or call :meth:`close`) so worker processes and
    shared-memory segments are released deterministically.
    """

    _POLL_SECONDS = 1.0

    def __init__(
        self,
        model: GenerativeModel,
        seed_dataset: Dataset,
        params: PlausibleDeniabilityParams,
        *,
        num_workers: int = 1,
        chunk_size: int = 512,
        batch_size: int | None = 256,
        run_store: RunStore | None = None,
        max_chunk_retries: int = 2,
        fault_injector=None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive when provided")
        if max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be non-negative")
        self._model = model
        self._seeds = seed_dataset
        self._schema = seed_dataset.schema
        self._params = params
        self._num_workers = num_workers
        self._chunk_size = chunk_size
        self._batch_size = batch_size
        self._run_store = run_store
        self._max_chunk_retries = max_chunk_retries
        self._fault_injector = fault_injector
        self._job_counter = 0
        self._pending_done = 0
        self._workload_digest: str | None = None
        self._local_mechanism: SynthesisMechanism | None = None
        # Pool state (populated by start() when num_workers > 1).
        self._started = False
        self._closed = False
        self._broken = False
        self._worker_spec: _WorkerSpec | None = None
        self._processes: list = []
        self._job_queues: list = []
        self._results_queue = None
        self._retry_queue = None
        self._next_chunk = None
        self._released_total = None
        self._stop_flag = None
        self._inflight = None
        self._segments: list[SharedMemory] = []
        # Supervision bookkeeping.
        self._worker_restarts = 0
        self._chunk_retries: dict[int, int] = {}  # chunk -> crash re-executions (current job)
        self._slot_owes_done: set[int] = set()  # slots dispatched the current job

    @property
    def num_workers(self) -> int:
        """Number of worker processes (1 = serial in-process reference path)."""
        return self._num_workers

    @property
    def chunk_size(self) -> int:
        """Attempts per dispatched chunk."""
        return self._chunk_size

    @property
    def batch_size(self) -> int | None:
        """Vectorized proposal batch size inside each chunk (None/1 = reference loop)."""
        return self._batch_size

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "SynthesisEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def start(self) -> "SynthesisEngine":
        """Start the worker pool eagerly (otherwise started on first run).

        Blocks until every worker has attached the shared-memory segments,
        rebuilt its mechanism and reported ready, so subsequent run calls
        (and their timings) contain no startup cost.  A no-op for
        ``num_workers=1`` and for an already started pool.
        """
        if self._closed:
            raise RuntimeError("the engine has been closed")
        if self._broken:
            raise EngineBrokenError("the engine pool is broken; build a fresh engine")
        if self._num_workers == 1 or self._started:
            return self
        self._worker_spec = self._build_worker_spec()
        context = get_context("spawn")
        self._results_queue = context.Queue()
        self._retry_queue = context.Queue()
        self._next_chunk = context.Value("l", 0)
        self._released_total = context.Value("l", 0)
        self._stop_flag = context.Value("b", 0)
        self._inflight = context.Array("l", [-1] * self._num_workers, lock=False)
        for slot in range(self._num_workers):
            self._job_queues.append(context.Queue())
            self._processes.append(None)
            self._spawn_worker(slot)
        self._started = True
        ready = 0
        while ready < self._num_workers:
            _job_id, kind, payload = self._next_message()
            if kind == "error":
                self.close()
                raise RuntimeError(f"engine worker failed to start:\n{payload[1]}")
            if kind == "ready":
                ready += 1
        return self

    def _spawn_worker(self, slot: int) -> None:
        """(Re)start the worker of ``slot`` against the existing segments."""
        context = get_context("spawn")
        try:
            process = context.Process(
                target=_worker_main,
                args=(
                    slot,
                    self._worker_spec,
                    self._job_queues[slot],
                    self._results_queue,
                    self._retry_queue,
                    self._next_chunk,
                    self._released_total,
                    self._stop_flag,
                    self._inflight,
                    self._fault_injector,
                ),
                daemon=True,
            )
            process.start()
        except BaseException as exc:
            self._broken = True
            raise EngineBrokenError(
                f"failed to (re)spawn engine worker {slot}: {exc}"
            ) from exc
        self._processes[slot] = process

    def close(self) -> None:
        """Stop the workers and release the shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        for job_queue in self._job_queues:
            try:
                job_queue.put(None)
            except Exception:
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        self._segments.clear()
        self._processes.clear()
        self._job_queues.clear()

    def _build_worker_spec(self) -> _WorkerSpec:
        seed_segment, (seed_spec,) = _pack_arrays([self._seeds.data])
        self._segments.append(seed_segment)
        common = dict(
            schema_attributes=tuple(self._schema.attributes),
            params=self._params,
            seed_segment=seed_segment.name,
            seed_spec=seed_spec,
        )
        from repro.generative.bayesian_network import BayesianNetworkSynthesizer

        if not isinstance(self._model, BayesianNetworkSynthesizer):
            return _WorkerSpec(fallback_model=self._model, **common)
        arrays: list[np.ndarray] = []
        for table in self._model.tables:
            arrays.extend([table.table, table.counts, table.prior])
        table_segment, specs = _pack_arrays(arrays)
        self._segments.append(table_segment)
        tables_meta = [
            (
                table.attribute_index,
                table.parents,
                table.parent_cardinalities,
                specs[3 * index],
                specs[3 * index + 1],
                specs[3 * index + 2],
            )
            for index, table in enumerate(self._model.tables)
        ]
        return _WorkerSpec(
            table_segment=table_segment.name,
            structure=self._model.structure,
            omegas=self._model.omegas,
            tables_meta=tables_meta,
            **common,
        )

    # ------------------------------------------------------------------ #
    # Run modes
    # ------------------------------------------------------------------ #
    def run_attempts(
        self,
        num_attempts: int,
        base_seed: int = 0,
        *,
        progress: Callable[[ChunkProgress], None] | None = None,
        run_id: str | None = None,
    ) -> SynthesisReport:
        """Propose exactly ``num_attempts`` candidates across the pool.

        The result is identical for every worker count: it equals the
        concatenation of the deterministic per-chunk reports in chunk order.
        ``base_seed`` selects the family of chunk streams — reuse it to
        reproduce a run, vary it to draw fresh candidates.
        """
        if num_attempts < 0:
            raise ValueError("num_attempts must be non-negative")
        return self._execute(
            limit=num_attempts,
            target_released=None,
            base_seed=base_seed,
            progress=progress,
            run_id=run_id,
        )

    def generate(
        self,
        num_released: int,
        base_seed: int = 0,
        *,
        max_attempts: int | None = None,
        progress: Callable[[ChunkProgress], None] | None = None,
        run_id: str | None = None,
    ) -> SynthesisReport:
        """Propose candidates until ``num_released`` pass the privacy test.

        Workers coordinate through a shared released counter, so generation
        stops within about one chunk per worker of the target instead of
        running out a static attempt budget.  ``max_attempts`` (default: 100
        per requested record, as in the serial mechanism) still bounds the
        run when the parameters are too strict to reach the target.  The
        released records and the merged accounting are identical for every
        worker count.
        """
        if num_released < 0:
            raise ValueError("num_released must be non-negative")
        limit = max_attempts if max_attempts is not None else 100 * max(1, num_released)
        if limit < 0:
            raise ValueError("max_attempts must be non-negative")
        return self._execute(
            limit=limit,
            target_released=num_released,
            base_seed=base_seed,
            progress=progress,
            run_id=run_id,
        )

    # ------------------------------------------------------------------ #
    # Execution internals
    # ------------------------------------------------------------------ #
    def _execute(
        self,
        limit: int,
        target_released: int | None,
        base_seed: int,
        progress: Callable[[ChunkProgress], None] | None,
        run_id: str | None,
    ) -> SynthesisReport:
        if self._closed:
            raise RuntimeError("the engine has been closed")
        if self._broken:
            raise EngineBrokenError("the engine pool is broken; build a fresh engine")
        self._job_counter += 1
        job = _Job(
            job_id=self._job_counter,
            limit=limit,
            chunk_size=self._chunk_size,
            base_seed=base_seed,
            batch_size=self._batch_size,
            target_released=target_released,
            completed=frozenset(),
        )
        # Only the contiguous prefix of checkpointed chunks is adopted: a
        # post-gap chunk's releases would preset the shared released counter
        # and could stop the pool before the gap is ever filled, silently
        # under-delivering.  Gap and post-gap chunks are simply regenerated —
        # chunk content is a pure function of the chunk index, so the rerun
        # is bit-identical to the checkpoint it replaces.
        loaded = self._load_checkpoint(job, run_id)
        reports: dict[int, SynthesisReport] = {}
        index = 0
        while index in loaded:
            reports[index] = loaded[index]
            index += 1
        if reports:
            job = dataclasses.replace(job, completed=frozenset(reports))
        tracker = _ProgressTracker(progress)
        for index in sorted(reports):
            tracker.emit(index, reports[index], from_checkpoint=True)

        if self._num_workers == 1:
            self._run_in_process(job, reports, tracker, run_id)
        else:
            self.start()
            self._run_on_pool(job, reports, tracker, run_id)
        return self._finalize(job, reports)

    def _mechanism(self) -> SynthesisMechanism:
        if self._local_mechanism is None:
            self._local_mechanism = SynthesisMechanism(
                self._model, self._seeds, self._params
            ).prepare()
        return self._local_mechanism

    def _run_in_process(
        self,
        job: _Job,
        reports: dict[int, SynthesisReport],
        tracker: "_ProgressTracker",
        run_id: str | None,
    ) -> None:
        mechanism = self._mechanism()
        released = 0
        for index in range(job.num_chunks):
            if job.target_released is not None and released >= job.target_released:
                break
            report = reports.get(index)
            if report is None:
                report = mechanism.run_attempts(
                    job.chunk_attempts(index),
                    chunk_rng(job.base_seed, index),
                    batch_size=job.batch_size,
                )
                reports[index] = report
                self._save_checkpoint(run_id, index, report.to_arrays())
                tracker.emit(index, report)
            released += report.num_released

    def _run_on_pool(
        self,
        job: _Job,
        reports: dict[int, SynthesisReport],
        tracker: "_ProgressTracker",
        run_id: str | None,
    ) -> None:
        if self._pending_done:
            # A previous job's collection loop was interrupted (exception in
            # a progress callback, Ctrl-C, ...).  Its workers may still be
            # claiming chunks from the shared counters, so wait for them to
            # go quiescent before resetting state for this job.
            self._stop_flag.value = 1
            while self._pending_done:
                try:
                    _job_id, kind, _payload = self._results_queue.get(
                        timeout=self._POLL_SECONDS
                    )
                except Empty:
                    # A worker that died while owing a "done" will never send
                    # it; respawn it (idle: the stale job is abandoned) and
                    # stop waiting on its behalf.
                    self._supervise(None, {}, None)
                    continue
                if kind in ("done", "error"):
                    self._pending_done -= 1
        while True:  # clear retry indices a stopped job never consumed
            try:
                self._retry_queue.get_nowait()
            except Empty:
                break
        self._next_chunk.value = 0
        self._released_total.value = sum(
            reports[index].num_released for index in job.completed
        )
        self._stop_flag.value = 0
        self._chunk_retries = {}
        self._slot_owes_done = set(range(len(self._processes)))
        for job_queue in self._job_queues:
            job_queue.put(job)
        self._pending_done = len(self._processes)

        pending = len(self._processes)
        prefix_released, prefix_index = self._prefix_state(job, reports)
        failure: str | None = None
        exhausted: list[int] = []
        try:
            while pending:
                try:
                    job_id, kind, payload = self._results_queue.get(
                        timeout=self._POLL_SECONDS
                    )
                except Empty:
                    self._supervise(job, reports, exhausted)
                    if exhausted and not self._stop_flag.value:
                        self._stop_flag.value = 1
                    continue
                if job_id != job.job_id:
                    # Stale message from a job whose collection loop was
                    # interrupted (e.g. a progress callback raised): drop it
                    # rather than merging another run's chunks into this one.
                    continue
                if kind == "done":
                    pending -= 1
                    self._pending_done -= 1
                    self._slot_owes_done.discard(payload)
                elif kind == "error":
                    pending -= 1
                    self._pending_done -= 1
                    self._slot_owes_done.discard(payload[0])
                    failure = payload[1]
                    self._stop_flag.value = 1
                elif kind == "chunk":
                    index, arrays, released = payload
                    if index in reports:
                        # A crash-retried chunk raced its original message
                        # (both delivered).  The content is bit-identical, so
                        # drop the duplicate and undo its double count on the
                        # shared released counter.
                        with self._released_total.get_lock():
                            self._released_total.value -= released
                        continue
                    report = SynthesisReport.from_arrays(self._schema, arrays)
                    reports[index] = report
                    self._save_checkpoint(run_id, index, arrays)
                    tracker.emit(index, report)
                    if job.target_released is not None and not self._stop_flag.value:
                        prefix_released, prefix_index = self._prefix_state(
                            job, reports, prefix_released, prefix_index
                        )
                        if prefix_released >= job.target_released:
                            self._stop_flag.value = 1
        except BaseException:
            # Parent-side failure mid-collection: tell the workers to stop
            # claiming chunks instead of burning the rest of the budget.
            self._stop_flag.value = 1
            raise
        if failure is not None:
            raise RuntimeError(f"engine worker failed:\n{failure}")
        if exhausted:
            indices = tuple(sorted(set(exhausted)))
            raise ChunkRetryExhaustedError(
                f"chunk(s) {list(indices)} crashed more than max_chunk_retries="
                f"{self._max_chunk_retries} times; the job was abandoned but the "
                "pool has been repaired and the engine remains usable",
                chunk_indices=indices,
            )

    def _supervise(self, job: _Job | None, reports: dict, exhausted: list | None) -> None:
        """Detect dead workers, respawn them, and re-dispatch lost chunks.

        With a ``job`` in flight the replacement worker is handed the same
        job and the crashed worker's in-flight chunk (from the shared
        ``inflight`` table) is queued for deterministic re-execution, counted
        against ``max_chunk_retries``.  The shared released counter is
        resynced to the reports actually received so a crash between a
        worker's counter increment and its (lost) chunk message can never
        stop an until-N run short of its target.
        """
        dead_slots = [
            slot for slot, process in enumerate(self._processes) if not process.is_alive()
        ]
        for slot in dead_slots:
            lost_chunk = int(self._inflight[slot])
            self._inflight[slot] = -1
            owed = slot in self._slot_owes_done
            self._worker_restarts += 1
            self._spawn_worker(slot)  # raises EngineBrokenError on failure
            if job is None:
                if owed:
                    self._slot_owes_done.discard(slot)
                    self._pending_done -= 1
                continue
            # Queue the lost chunk *before* re-dispatching the job so no
            # worker can observe the job without the retry being claimable.
            if lost_chunk >= 0 and lost_chunk not in reports:
                retries = self._chunk_retries.get(lost_chunk, 0)
                if retries >= self._max_chunk_retries:
                    exhausted.append(lost_chunk)
                else:
                    self._chunk_retries[lost_chunk] = retries + 1
                    self._retry_queue.put(lost_chunk)
            if owed:
                self._job_queues[slot].put(job)  # replacement owes the done instead
            with self._released_total.get_lock():
                self._released_total.value = sum(
                    report.num_released
                    for index, report in reports.items()
                    if index < job.num_chunks
                )

    @staticmethod
    def _prefix_state(
        job: _Job,
        reports: dict[int, SynthesisReport],
        prefix_released: int = 0,
        prefix_index: int = 0,
    ) -> tuple[int, int]:
        """Cumulative releases over the contiguous chunk prefix received so far."""
        index = prefix_index
        released = prefix_released
        while index < job.num_chunks and index in reports:
            released += reports[index].num_released
            index += 1
        return released, index

    def _next_message(self):
        """One (job_id, kind, payload) startup message, watching for deaths.

        Only the :meth:`start` ready-wait uses this: a worker that dies
        before the pool is even up has nothing to retry deterministically, so
        the pool is marked broken and torn down rather than supervised.
        """
        while True:
            try:
                return self._results_queue.get(timeout=self._POLL_SECONDS)
            except Empty:
                dead = [p for p in self._processes if p is not None and not p.is_alive()]
                if dead:
                    codes = [p.exitcode for p in dead]
                    self._broken = True
                    self.close()
                    raise EngineBrokenError(
                        f"{len(dead)} engine worker(s) died during pool startup "
                        f"(exit codes: {codes}); the pool is broken"
                    ) from None

    def _finalize(self, job: _Job, reports: dict[int, SynthesisReport]) -> SynthesisReport:
        """Merge the in-order chunk prefix, truncating at the release target."""
        ordered: list[SynthesisReport] = []
        released = 0
        for index in range(job.num_chunks):
            if job.target_released is not None and released >= job.target_released:
                break
            report = reports.get(index)
            if report is None:
                if job.target_released is None:
                    raise RuntimeError(f"chunk {index} was never completed")
                break
            ordered.append(report)
            released += report.num_released
        return SynthesisReport.merged(
            self._schema, ordered, stop_after_released=job.target_released
        )

    # ------------------------------------------------------------------ #
    # Pool health
    # ------------------------------------------------------------------ #
    def pool_health(self) -> dict:
        """Supervision counters next to the workload identity.

        ``worker_restarts`` counts every supervised respawn over the engine's
        lifetime; ``chunk_retries`` maps chunk index to crash re-executions
        for the most recent pool job; ``workers_alive`` is the live process
        count (0 on the serial path, which has no pool to supervise).
        """
        return {
            "num_workers": self._num_workers,
            "workers_alive": sum(
                1 for p in self._processes if p is not None and p.is_alive()
            ),
            "worker_restarts": self._worker_restarts,
            "chunk_retries": dict(self._chunk_retries),
            "max_chunk_retries": self._max_chunk_retries,
            "broken": self._broken,
        }

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def workload_fingerprint(self) -> str:
        """Content hash of the model and seed dataset driving this engine.

        Part of every run's checkpoint signature: resuming a run id against a
        refitted model or a different seed split would otherwise silently
        merge chunks generated from different distributions into one report.
        The serving layer also uses it to prove two engines serve the same
        published workload.
        """
        if self._workload_digest is None:
            from repro.generative.bayesian_network import BayesianNetworkSynthesizer

            digest = hashlib.sha256()
            digest.update(dataset_fingerprint(self._seeds).encode())
            if isinstance(self._model, BayesianNetworkSynthesizer):
                digest.update(repr(self._model.structure.parents).encode())
                digest.update(repr(self._model.structure.order).encode())
                digest.update(repr(self._model.omegas).encode())
                for table in self._model.tables:
                    digest.update(np.ascontiguousarray(table.table).tobytes())
            else:
                import pickle

                digest.update(pickle.dumps(self._model, protocol=4))
            self._workload_digest = digest.hexdigest()
        return self._workload_digest

    def _job_signature(self, job: _Job) -> dict:
        return {
            "limit": job.limit,
            "chunk_size": job.chunk_size,
            "base_seed": job.base_seed,
            "batch_size": job.batch_size,
            "target_released": job.target_released,
            "k": self._params.k,
            "gamma": self._params.gamma,
            "epsilon0": self._params.epsilon0,
            "max_plausible": self._params.max_plausible,
            "max_check_plausible": self._params.max_check_plausible,
            "workload": self.workload_fingerprint(),
        }

    def _load_checkpoint(self, job: _Job, run_id: str | None) -> dict[int, SynthesisReport]:
        if self._run_store is None or run_id is None:
            return {}
        signature = self._job_signature(job)
        stored = self._run_store.load_run_meta(run_id)
        if stored is None:
            self._run_store.save_run_meta(run_id, signature)
            return {}
        if stored != signature:
            raise ValueError(
                f"run {run_id!r} was checkpointed with a different job signature "
                f"({stored}) than requested ({signature}); use a fresh run id or "
                "matching parameters"
            )
        return {
            index: SynthesisReport.from_arrays(self._schema, arrays)
            for index, arrays in self._run_store.load_chunks(run_id).items()
            if index < job.num_chunks
        }

    def _save_checkpoint(self, run_id: str | None, index: int, arrays: dict) -> None:
        if self._run_store is not None and run_id is not None:
            self._run_store.save_chunk(run_id, index, arrays)


class _ProgressTracker:
    """Accumulates totals and forwards :class:`ChunkProgress` events."""

    def __init__(self, callback: Callable[[ChunkProgress], None] | None):
        self._callback = callback
        self._total_attempts = 0
        self._total_released = 0

    def emit(self, index: int, report: SynthesisReport, from_checkpoint: bool = False) -> None:
        self._total_attempts += report.num_attempts
        self._total_released += report.num_released
        if self._callback is not None:
            self._callback(
                ChunkProgress(
                    chunk_index=index,
                    chunk_attempts=report.num_attempts,
                    chunk_released=report.num_released,
                    total_attempts=self._total_attempts,
                    total_released=self._total_released,
                    from_checkpoint=from_checkpoint,
                )
            )
