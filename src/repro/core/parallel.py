"""Embarrassingly-parallel synthesis across worker processes.

The synthesis of a record depends only on its own seed (Section 2), so the
paper generates millions of records by running many tool instances in
parallel (Section 5, Figure 5).  This module reproduces that property with a
``multiprocessing`` pool: each worker receives the (picklable) model, the seed
dataset and its own deterministic RNG stream, runs Mechanism 1 for its share
of attempts, and the reports are merged afterwards.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

import numpy as np

from repro.core.mechanism import SynthesisMechanism
from repro.core.results import SynthesisReport
from repro.datasets.dataset import Dataset
from repro.generative.base import GenerativeModel
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

__all__ = ["ParallelGenerationTask", "generate_in_parallel"]


@dataclass
class ParallelGenerationTask:
    """The work assigned to one worker process."""

    model: GenerativeModel
    seed_data: np.ndarray
    schema_attributes: tuple
    params: PlausibleDeniabilityParams
    num_attempts: int
    rng_seed: int | np.random.SeedSequence
    batch_size: int | None = None


def _run_worker(task: ParallelGenerationTask) -> SynthesisReport:
    """Worker entry point: rebuild the mechanism and run its attempts."""
    from repro.datasets.schema import Schema

    schema = Schema(list(task.schema_attributes))
    seeds = Dataset(schema, task.seed_data)
    mechanism = SynthesisMechanism(task.model, seeds, task.params)
    rng = np.random.default_rng(task.rng_seed)
    return mechanism.run_attempts(task.num_attempts, rng, batch_size=task.batch_size)


def generate_in_parallel(
    model: GenerativeModel,
    seed_dataset: Dataset,
    params: PlausibleDeniabilityParams,
    num_attempts: int,
    num_workers: int = 2,
    base_seed: int = 0,
    batch_size: int | None = None,
) -> SynthesisReport:
    """Run ``num_attempts`` Mechanism-1 proposals split across worker processes.

    Workers use statistically independent RNG streams spawned from
    ``np.random.SeedSequence(base_seed)`` — unlike naive ``base_seed + i``
    seeding, spawned streams never collide across runs with adjacent base
    seeds — so results are reproducible regardless of scheduling order.  With
    ``num_workers=1`` everything runs in-process (useful for tests and
    environments where spawning processes is expensive).  ``batch_size``
    selects the vectorized batched synthesis path inside each worker.
    """
    if num_attempts < 0:
        raise ValueError("num_attempts must be non-negative")
    if num_workers < 1:
        raise ValueError("num_workers must be positive")

    shares = [num_attempts // num_workers] * num_workers
    for index in range(num_attempts % num_workers):
        shares[index] += 1
    streams = np.random.SeedSequence(base_seed).spawn(num_workers)
    tasks = [
        ParallelGenerationTask(
            model=model,
            seed_data=seed_dataset.data,
            schema_attributes=tuple(seed_dataset.schema.attributes),
            params=params,
            num_attempts=share,
            rng_seed=streams[worker_index],
            batch_size=batch_size,
        )
        for worker_index, share in enumerate(shares)
        if share > 0
    ]

    if num_workers == 1 or len(tasks) <= 1:
        reports = [_run_worker(task) for task in tasks]
    else:
        with multiprocessing.get_context("spawn").Pool(processes=num_workers) as pool:
            reports = pool.map(_run_worker, tasks)

    merged = SynthesisReport(schema=seed_dataset.schema)
    for report in reports:
        merged = merged.merge(report)
    return merged
