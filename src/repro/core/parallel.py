"""Embarrassingly-parallel synthesis (compatibility facade over the engine).

The synthesis of a record depends only on its own seed (Section 2), so the
paper generates millions of records by running many tool instances in
parallel (Section 5, Figure 5).  This module keeps the original one-call
entry point, now backed by :class:`~repro.core.engine.SynthesisEngine`: the
seed matrix and model tables are placed in shared memory once instead of
being pickled per task, and attempts are dispatched as dynamic chunks from a
shared counter so fast workers steal load.

Long-lived callers (benchmark loops, services) should construct a
:class:`~repro.core.engine.SynthesisEngine` directly so the worker pool and
shared-memory segments persist across calls.

.. note::
   The chunk-indexed RNG layout differs from the per-worker streams of the
   pre-engine implementation, so candidate sequences for a fixed
   ``base_seed`` changed when the engine landed (they remain reproducible
   and statistically independent across base seeds).
"""

from __future__ import annotations

from repro.core.engine import SynthesisEngine
from repro.core.results import SynthesisReport
from repro.datasets.dataset import Dataset
from repro.generative.base import GenerativeModel
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

__all__ = ["generate_in_parallel"]


def generate_in_parallel(
    model: GenerativeModel,
    seed_dataset: Dataset,
    params: PlausibleDeniabilityParams,
    num_attempts: int,
    num_workers: int = 2,
    base_seed: int = 0,
    batch_size: int | None = None,
    chunk_size: int = 512,
) -> SynthesisReport:
    """Run ``num_attempts`` Mechanism-1 proposals across worker processes.

    Chunk RNG streams are derived from ``np.random.SeedSequence(base_seed)``
    children keyed by chunk index, so the merged report is identical for
    every ``num_workers`` (including the in-process ``num_workers=1`` serial
    reference) and reproducible regardless of scheduling order.
    ``batch_size`` selects the vectorized batched synthesis path inside each
    chunk.
    """
    if num_attempts < 0:
        raise ValueError("num_attempts must be non-negative")
    if num_workers < 1:
        raise ValueError("num_workers must be positive")
    with SynthesisEngine(
        model,
        seed_dataset,
        params,
        num_workers=num_workers,
        chunk_size=chunk_size,
        batch_size=batch_size,
    ) as engine:
        return engine.run_attempts(num_attempts, base_seed=base_seed)
