"""Privacy substrate: Laplace mechanism, DP composition, plausible deniability.

This package contains the paper's privacy machinery:

* the Laplace mechanism and DP composition theorems (Appendix A) used by the
  differentially-private model-learning pipeline (Section 3.5),
* the plausible-deniability criterion (Definition 1), the deterministic and
  randomized privacy tests (Privacy Tests 1 and 2), and the Theorem 1 algebra
  linking the randomized test to (ε, δ)-differential privacy.
"""

from repro.privacy.accountant import BudgetEntry, PrivacyAccountant
from repro.privacy.composition import (
    advanced_composition,
    amplification_by_sampling,
    sequential_composition,
)
from repro.privacy.laplace import laplace_mechanism, laplace_noise
from repro.privacy.release import (
    DatasetReleaseGuarantee,
    dataset_release_guarantee,
    max_releasable_records,
)
from repro.privacy.plausible_deniability import (
    DeterministicPrivacyTest,
    PlausibleDeniabilityParams,
    PrivacyTestResult,
    RandomizedPrivacyTest,
    batch_plausible_seed_counts,
    make_privacy_test,
    partition_number,
    partition_numbers,
    plausible_seed_count,
    satisfies_plausible_deniability,
    theorem1_delta,
    theorem1_epsilon,
    theorem1_guarantee,
    minimum_k_for_delta,
)

__all__ = [
    "laplace_noise",
    "laplace_mechanism",
    "sequential_composition",
    "advanced_composition",
    "amplification_by_sampling",
    "PrivacyAccountant",
    "BudgetEntry",
    "PlausibleDeniabilityParams",
    "PrivacyTestResult",
    "DeterministicPrivacyTest",
    "RandomizedPrivacyTest",
    "make_privacy_test",
    "partition_number",
    "partition_numbers",
    "plausible_seed_count",
    "batch_plausible_seed_counts",
    "satisfies_plausible_deniability",
    "theorem1_epsilon",
    "theorem1_delta",
    "theorem1_guarantee",
    "minimum_k_for_delta",
    "DatasetReleaseGuarantee",
    "dataset_release_guarantee",
    "max_releasable_records",
]
