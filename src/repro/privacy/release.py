"""Privacy accounting for releasing an entire synthetic *dataset*.

Theorem 1 bounds the privacy loss of releasing a *single* synthetic record.
Section 8 of the paper notes that the composition theorems extend the
guarantee to arbitrarily large synthetic datasets provided the budget is
increased accordingly, and leaves better composition strategies as future
work.  This module implements that extension: given the per-record Theorem 1
guarantee and the number of released records, it reports the total (ε, δ)
under basic and advanced composition and can invert the computation to find
how many records fit a target budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.privacy.composition import advanced_composition, sequential_composition
from repro.privacy.plausible_deniability import theorem1_guarantee

__all__ = ["DatasetReleaseGuarantee", "dataset_release_guarantee", "max_releasable_records"]


@dataclass(frozen=True)
class DatasetReleaseGuarantee:
    """Total privacy guarantee of releasing ``num_records`` synthetic records."""

    num_records: int
    per_record_epsilon: float
    per_record_delta: float
    t: int
    basic_epsilon: float
    basic_delta: float
    advanced_epsilon: float
    advanced_delta: float

    @property
    def epsilon(self) -> float:
        """The tighter of the two composed ε bounds."""
        return min(self.basic_epsilon, self.advanced_epsilon)

    @property
    def delta(self) -> float:
        """The δ corresponding to the tighter ε bound."""
        if self.basic_epsilon <= self.advanced_epsilon:
            return self.basic_delta
        return self.advanced_delta


def dataset_release_guarantee(
    num_records: int,
    k: int,
    gamma: float,
    epsilon0: float,
    t: int | None = None,
    delta_slack: float = 1e-9,
) -> DatasetReleaseGuarantee:
    """Compose the Theorem 1 per-record guarantee over a whole release.

    Parameters
    ----------
    num_records:
        Number of synthetic records released from the same input dataset.
    k, gamma, epsilon0:
        The plausible-deniability parameters of the mechanism.
    t:
        Theorem 1 trade-off parameter (chosen automatically when omitted).
    delta_slack:
        The δ'' slack of advanced composition.
    """
    if num_records < 1:
        raise ValueError("num_records must be a positive integer")
    per_epsilon, per_delta, chosen_t = theorem1_guarantee(k, gamma, epsilon0, t)
    basic_epsilon, basic_delta = sequential_composition(
        [(per_epsilon, per_delta)] * num_records
    )
    if num_records > 1:
        advanced_epsilon, advanced_delta = advanced_composition(
            per_epsilon, per_delta, num_records, delta_slack
        )
    else:
        advanced_epsilon, advanced_delta = per_epsilon, per_delta
    return DatasetReleaseGuarantee(
        num_records=num_records,
        per_record_epsilon=per_epsilon,
        per_record_delta=per_delta,
        t=chosen_t,
        basic_epsilon=basic_epsilon,
        basic_delta=basic_delta,
        advanced_epsilon=advanced_epsilon,
        advanced_delta=advanced_delta,
    )


def max_releasable_records(
    epsilon_budget: float,
    k: int,
    gamma: float,
    epsilon0: float,
    t: int | None = None,
    delta_slack: float = 1e-9,
    upper_bound: int = 1_000_000,
) -> int:
    """Largest number of records whose composed release ε stays within budget.

    Solved by bisection on the monotone composed guarantee.  Returns 0 when
    even a single record exceeds the budget.
    """
    if epsilon_budget <= 0:
        raise ValueError("epsilon_budget must be positive")
    if upper_bound < 1:
        raise ValueError("upper_bound must be positive")

    def fits(count: int) -> bool:
        guarantee = dataset_release_guarantee(count, k, gamma, epsilon0, t, delta_slack)
        return guarantee.epsilon <= epsilon_budget

    if not fits(1):
        return 0
    low, high = 1, upper_bound
    if fits(high):
        return high
    while high - low > 1:
        mid = (low + high) // 2
        if fits(mid):
            low = mid
        else:
            high = mid
    return low
