"""A privacy-budget ledger for the model-learning pipeline (Section 3.5).

The differentially-private generative model spends privacy budget in three
places: the noisy entropy values and the noisy record count of structure
learning (both computed on the DT split), and the noisy configuration counts
of parameter learning (computed on the DP split).  The paper's overall
analysis composes homogeneous query groups with advanced composition, distinct
groups on the *same* data sequentially, and takes the maximum across groups
computed on *disjoint* data (parallel composition), optionally applying
amplification by sub-sampling at the end.

:class:`PrivacyAccountant` records each expenditure — tagged with a label (the
query group) and a scope (which data split it touched) — and can report the
total (ε, δ) guarantee the same way.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.privacy.composition import (
    advanced_composition,
    amplification_by_sampling,
    sequential_composition,
)

__all__ = ["BudgetEntry", "PrivacyAccountant"]


@dataclass(frozen=True)
class BudgetEntry:
    """One recorded privacy expenditure.

    Parameters
    ----------
    label:
        Name of the query group (e.g. ``"structure/entropy"``).
    epsilon, delta:
        Per-query differential-privacy guarantee.
    count:
        Number of homogeneous queries in the group.
    scope:
        Which data split the queries touched (entries with different scopes
        are assumed to have used disjoint data when the accountant is asked
        for a parallel-composition total).
    """

    label: str
    epsilon: float
    delta: float
    count: int = 1
    scope: str = "default"

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not 0.0 <= self.delta <= 1.0:
            raise ValueError("delta must lie in [0, 1]")
        if self.count < 1:
            raise ValueError("count must be at least 1")


@dataclass
class PrivacyAccountant:
    """Accumulates per-group budget entries and composes them.

    Thread safety: :meth:`spend` and every guarantee read take an internal
    lock, so concurrent callers (e.g. the serving layer's tenant sessions)
    can never interleave an append with a composition pass and under-report
    spend.  The lock is recreated on unpickling/deep-copying, so cached
    pipeline-fit artifacts that embed an accountant round-trip unchanged.

    Parameters
    ----------
    delta_slack:
        The δ'' slack used whenever advanced composition is applied to a group
        of homogeneous queries.
    """

    delta_slack: float = 1e-9
    entries: list[BudgetEntry] = field(default_factory=list)  # repro: guarded-by[_lock]

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks are neither picklable nor shareable
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def spend(
        self,
        label: str,
        epsilon: float,
        delta: float = 0.0,
        count: int = 1,
        scope: str = "default",
    ) -> None:
        """Record ``count`` queries each satisfying (ε, δ)-DP under ``label``."""
        entry = BudgetEntry(label, epsilon, delta, count, scope)
        with self._lock:
            self.entries.append(entry)

    def _snapshot(self) -> list[BudgetEntry]:
        """A consistent view of the ledger for one composition pass."""
        with self._lock:
            return list(self.entries)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def labels(self) -> list[str]:
        """All distinct labels in recording order."""
        seen: list[str] = []
        for entry in self._snapshot():
            if entry.label not in seen:
                seen.append(entry.label)
        return seen

    def scopes(self) -> list[str]:
        """All distinct scopes in recording order."""
        seen: list[str] = []
        for entry in self._snapshot():
            if entry.scope not in seen:
                seen.append(entry.scope)
        return seen

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #
    def _entry_guarantee(self, entry: BudgetEntry, use_advanced: bool) -> tuple[float, float]:
        sequential = (entry.epsilon * entry.count, min(1.0, entry.delta * entry.count))
        if not use_advanced or entry.count <= 1:
            return sequential
        advanced = advanced_composition(
            entry.epsilon, entry.delta, entry.count, self.delta_slack
        )
        # Both bounds are valid; report whichever is tighter in ε.
        return advanced if advanced[0] < sequential[0] else sequential

    def phase_guarantee(self, label: str, use_advanced: bool = True) -> tuple[float, float]:
        """Composed guarantee of all entries recorded under one label."""
        matching = [entry for entry in self._snapshot() if entry.label == label]
        if not matching:
            raise KeyError(f"no budget entries recorded under label {label!r}")
        return sequential_composition(
            self._entry_guarantee(entry, use_advanced) for entry in matching
        )

    def scope_guarantee(self, scope: str, use_advanced: bool = True) -> tuple[float, float]:
        """Composed guarantee of all entries that touched one data scope."""
        return self._scope_guarantee(self._snapshot(), scope, use_advanced)

    def _scope_guarantee(
        self, entries: list[BudgetEntry], scope: str, use_advanced: bool
    ) -> tuple[float, float]:
        matching = [entry for entry in entries if entry.scope == scope]
        if not matching:
            raise KeyError(f"no budget entries recorded under scope {scope!r}")
        return sequential_composition(
            self._entry_guarantee(entry, use_advanced) for entry in matching
        )

    def total_guarantee(
        self,
        use_advanced: bool = True,
        disjoint_scopes: bool = False,
        sampling_probability: float | None = None,
    ) -> tuple[float, float]:
        """Overall (ε, δ) guarantee across every recorded expenditure.

        Parameters
        ----------
        use_advanced:
            Apply advanced composition within each homogeneous query group.
        disjoint_scopes:
            When entries in different scopes were computed on *disjoint*
            subsets of the data (as DT and DP are in the paper), parallel
            composition applies and the total is the maximum over scopes
            rather than their sum.
        sampling_probability:
            If the data each scope saw was a random p-subsample of the full
            dataset, apply Theorem 4 amplification to the final guarantee.
        """
        entries = self._snapshot()
        if not entries:
            raise ValueError("no privacy budget has been spent yet")
        scopes: list[str] = []
        for entry in entries:
            if entry.scope not in scopes:
                scopes.append(entry.scope)
        per_scope = [
            self._scope_guarantee(entries, scope, use_advanced) for scope in scopes
        ]
        if disjoint_scopes:
            epsilon = max(eps for eps, _ in per_scope)
            delta = max(delta for _, delta in per_scope)
        else:
            epsilon, delta = sequential_composition(per_scope)
        if sampling_probability is not None:
            epsilon, delta = amplification_by_sampling(epsilon, delta, sampling_probability)
        return epsilon, delta
