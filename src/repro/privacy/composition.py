"""Differential-privacy composition theorems (Appendix A of the paper).

Three results are used by the paper's privacy analysis (Section 3.5):

* **sequential composition** (Theorem 2): epsilons and deltas add up;
* **advanced composition** (Theorem 3): k invocations of an (ε, δ)-DP
  mechanism are (ε', kδ + δ'')-DP for
  ε' = ε sqrt(2 k ln(1/δ'')) + k ε (e^ε - 1);
* **amplification by sub-sampling** (Theorem 4): running an (ε, δ)-DP
  mechanism on a p-subsample is (ln(1 + p(e^ε - 1)), pδ)-DP.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "sequential_composition",
    "advanced_composition",
    "amplification_by_sampling",
]


def _validate_pair(epsilon: float, delta: float) -> None:
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if not 0.0 <= delta <= 1.0:
        raise ValueError("delta must lie in [0, 1]")


def sequential_composition(
    guarantees: Iterable[tuple[float, float]]
) -> tuple[float, float]:
    """Compose a sequence of (ε_i, δ_i) guarantees sequentially (Theorem 2)."""
    total_epsilon = 0.0
    total_delta = 0.0
    count = 0
    for epsilon, delta in guarantees:
        _validate_pair(epsilon, delta)
        total_epsilon += epsilon
        total_delta += delta
        count += 1
    if count == 0:
        raise ValueError("at least one guarantee is required")
    return total_epsilon, min(1.0, total_delta)


def advanced_composition(
    epsilon: float,
    delta: float,
    num_queries: int,
    delta_slack: float,
) -> tuple[float, float]:
    """Advanced composition (Theorem 3) of ``num_queries`` (ε, δ)-DP queries.

    Parameters
    ----------
    epsilon, delta:
        Per-query guarantee.
    num_queries:
        Number of adaptive queries (k in the theorem statement).
    delta_slack:
        The δ'' slack term; must be in (0, 1).

    Returns
    -------
    (ε', δ') with
    ε' = ε sqrt(2 k ln(1/δ'')) + k ε (e^ε - 1) and δ' = k δ + δ''.
    """
    _validate_pair(epsilon, delta)
    if num_queries < 1:
        raise ValueError("num_queries must be at least 1")
    if not 0.0 < delta_slack < 1.0:
        raise ValueError("delta_slack must lie strictly between 0 and 1")
    k = float(num_queries)
    epsilon_prime = epsilon * math.sqrt(2.0 * k * math.log(1.0 / delta_slack))
    epsilon_prime += k * epsilon * (math.exp(epsilon) - 1.0)
    delta_prime = min(1.0, k * delta + delta_slack)
    return epsilon_prime, delta_prime


def amplification_by_sampling(
    epsilon: float,
    delta: float,
    sampling_probability: float,
) -> tuple[float, float]:
    """Privacy amplification by sub-sampling (Theorem 4).

    Running an (ε, δ)-DP mechanism on a dataset where each record was included
    independently with probability ``p`` yields
    (ln(1 + p(e^ε - 1)), pδ)-DP overall.
    """
    _validate_pair(epsilon, delta)
    if not 0.0 < sampling_probability <= 1.0:
        raise ValueError("sampling_probability must lie in (0, 1]")
    p = sampling_probability
    epsilon_prime = math.log(1.0 + p * (math.exp(epsilon) - 1.0))
    return epsilon_prime, p * delta
