"""Bounded-latency approximate plausible-deniability testing (BlinkDB mode).

The exact privacy test scans every seed record; at millions of seeds that
scan is the latency floor of every release.  Following BlinkDB's
bounded-errors/bounded-response-times design, this module decides most
candidates from a stratified *sample* of the seed records while guaranteeing
the final release decision is bit-identical to the exact test:

* :func:`stratified_sample_indices` draws a without-replacement record
  sample, stratified over contiguous index blocks, from a caller-supplied
  rng (never a hidden ``default_rng``).
* After each sampling round the driver holds *deterministic* bounds on the
  true plausible-seed count: every sampled bucket member is a certain match
  (plus the candidate's own seed, a certain match whether sampled or not),
  and every unsampled record is at most one more.  A candidate is decided
  early only when the bound interval clears the (possibly Laplace-noised)
  threshold entirely — lower >= threshold releases, upper < threshold
  rejects.  Such decisions cannot disagree with the exact scan.
* :func:`count_confidence_interval` estimates where the true count plausibly
  lies.  The interval only *steers the schedule* — a near-threshold candidate
  (interval straddling the threshold) escalates to the exact scan instead of
  burning further sampling rounds it cannot win; it never decides a release.

Candidates that remain undecided after the sampling budget escalate to the
caller's exact scan, so the exact path stays the conformance reference and
the approximate mode is purely a latency optimization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.obs.profile import phase as obs_phase
from repro.privacy.plausible_deniability import partition_numbers

__all__ = [
    "ApproximateTestConfig",
    "ApproximateScanReport",
    "stratified_sample_indices",
    "deterministic_count_bounds",
    "count_confidence_interval",
    "approximate_plausible_counts",
]


@dataclass(frozen=True)
class ApproximateTestConfig:
    """Tuning knobs of the approximate privacy test.

    Parameters
    ----------
    initial_sample:
        Records sampled in the first round.
    growth_factor:
        Multiplicative growth of the cumulative sample per round.
    max_rounds:
        Sampling rounds before every undecided candidate escalates.
    sample_fraction_limit:
        Cap on the cumulative sample as a fraction of the seed records; past
        it, sampling cannot beat the exact scan and escalation is cheaper.
    confidence:
        Confidence level of the scheduling interval (escalate-vs-grow); it
        never decides a release.
    strata:
        Contiguous index blocks the sampler draws proportionally from.
    min_records:
        Below this many seed records the exact scan is already cheap and the
        approximate machinery is bypassed entirely.
    """

    initial_sample: int = 512
    growth_factor: int = 4
    max_rounds: int = 3
    sample_fraction_limit: float = 0.25
    confidence: float = 0.999
    strata: int = 16
    min_records: int = 4096

    def __post_init__(self) -> None:
        if self.initial_sample < 1:
            raise ValueError("initial_sample must be positive")
        if self.growth_factor < 2:
            raise ValueError("growth_factor must be at least 2")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        if not 0.0 < self.sample_fraction_limit <= 1.0:
            raise ValueError("sample_fraction_limit must lie in (0, 1]")
        if not 0.5 < self.confidence < 1.0:
            raise ValueError("confidence must lie in (0.5, 1)")
        if self.strata < 1:
            raise ValueError("strata must be positive")
        if self.min_records < 1:
            raise ValueError("min_records must be positive")


@dataclass(frozen=True)
class ApproximateScanReport:
    """Outcome of one approximate batch decision.

    ``counts`` holds the *certain* (lower-bound) plausible-seed count for
    early-decided candidates and the exact count for escalated ones, so
    ``counts >= threshold`` reproduces the exact test's decision for every
    candidate.  ``records_checked`` is the per-candidate records examined
    (cumulative sample size at decision time, or the exact scan size).
    """

    counts: np.ndarray
    records_checked: np.ndarray
    escalated: np.ndarray
    sampled_records: int
    rounds_run: int
    candidate_rounds: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]


def stratified_sample_indices(
    num_records: int,
    sample_size: int,
    rng: np.random.Generator,
    strata: int = 16,
) -> np.ndarray:
    """A sorted without-replacement sample of ``[0, num_records)``.

    The index space is split into ``strata`` contiguous blocks and each block
    contributes proportionally, so a seed dataset with any index-correlated
    structure (sorted inputs, per-shard blocks) is covered evenly instead of
    by luck.  ``rng`` is mandatory: a hidden default generator would hand
    every candidate the same "random" subset.
    """
    if rng is None:
        raise ValueError("stratified sampling requires a caller-supplied rng")
    if num_records < 1:
        raise ValueError("num_records must be positive")
    if sample_size < 1:
        raise ValueError("sample_size must be positive")
    if sample_size >= num_records:
        return np.arange(num_records, dtype=np.int64)
    strata = max(1, min(strata, sample_size, num_records))
    edges = np.linspace(0, num_records, strata + 1).astype(np.int64)
    fraction = sample_size / num_records
    quotas = np.diff(np.round(edges * fraction).astype(np.int64))
    picks: list[np.ndarray] = []
    for index in range(strata):
        begin, end = int(edges[index]), int(edges[index + 1])
        quota = int(min(quotas[index], end - begin))
        if quota <= 0:
            continue
        picks.append(begin + rng.choice(end - begin, size=quota, replace=False))
    if not picks:
        picks.append(rng.choice(num_records, size=min(sample_size, num_records), replace=False))
    return np.sort(np.concatenate(picks)).astype(np.int64)


def deterministic_count_bounds(
    sample_counts: np.ndarray,
    seed_sampled: np.ndarray,
    num_records: int,
    sample_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Hard bounds on the true bucket count from a without-replacement sample.

    ``lower`` counts only certain members: sampled records observed in the
    seed's bucket, plus the candidate's own seed when it was not sampled
    (the seed is in its own bucket by construction).  ``upper`` adds every
    still-unscanned record.  The true count always lies in
    ``[lower, upper]``, which is what makes early decisions exact.
    """
    counts = np.asarray(sample_counts, dtype=np.int64)
    unsampled_seed = (~np.asarray(seed_sampled, dtype=bool)).astype(np.int64)
    lower = counts + unsampled_seed
    unknown = num_records - sample_size - unsampled_seed
    upper = lower + np.maximum(unknown, 0)
    return lower, upper


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Max absolute error ~1.15e-9 — far below what the scheduling interval
    needs; avoids a scipy dependency.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie strictly between 0 and 1")
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def count_confidence_interval(
    sample_counts: np.ndarray,
    sample_size: int,
    num_records: int,
    confidence: float = 0.999,
) -> tuple[np.ndarray, np.ndarray]:
    """Normal-approximation interval on the full-population bucket count.

    Finite-population-corrected (the sample is without replacement) with a
    ``1/sample_size`` variance floor so a zero-match sample still yields a
    non-degenerate interval.  Used only to steer escalate-vs-grow; release
    decisions come from :func:`deterministic_count_bounds`.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be positive")
    counts = np.asarray(sample_counts, dtype=np.float64)
    if sample_size >= num_records:
        return counts.copy(), counts.copy()
    p_hat = counts / sample_size
    z = _normal_quantile(0.5 + confidence / 2.0)
    fpc = (num_records - sample_size) / max(num_records - 1, 1)
    variance = np.maximum(p_hat * (1.0 - p_hat), 1.0 / sample_size) / sample_size * fpc
    half = z * np.sqrt(variance) * num_records
    center = p_hat * num_records
    return np.maximum(center - half, 0.0), np.minimum(center + half, float(num_records))


def approximate_plausible_counts(
    *,
    seed_partitions: np.ndarray,
    seed_record_indices: np.ndarray,
    thresholds: np.ndarray,
    probability_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    exact_fn: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
    num_records: int,
    gamma: float,
    config: ApproximateTestConfig,
    rng: np.random.Generator,
) -> ApproximateScanReport:
    """Decide a candidate batch from samples, escalating near-threshold ones.

    Parameters
    ----------
    seed_partitions:
        Exact γ-bucket of each candidate's own seed, shape (candidates,).
    seed_record_indices:
        Row index of each candidate's seed within the seed dataset.
    thresholds:
        Per-candidate pass thresholds (``k``, or the already-drawn
        Laplace-noised thresholds of Privacy Test 2).
    probability_fn:
        ``(record_indices, candidate_indices) -> matrix`` of
        Pr{y_c = M(d_r)} with shape ``(len(candidate_indices),
        len(record_indices))`` — the only model access the sampler needs.
    exact_fn:
        ``candidate_indices -> (exact_counts, records_checked)`` full exact
        scan for the escalated subset.
    num_records:
        Total seed records.
    rng:
        Sampler stream.  Callers must hand a stream *independent* of the one
        that drew seeds/candidates/thresholds (e.g. a spawned child), so the
        exact and approximate paths consume the main stream identically.

    The returned counts satisfy ``(counts >= thresholds) == exact decision``
    for every candidate — see :class:`ApproximateScanReport`.
    """
    if rng is None:
        raise ValueError("approximate_plausible_counts requires a caller-supplied rng")
    partitions = np.asarray(seed_partitions, dtype=np.int64)
    seed_rows = np.asarray(seed_record_indices, dtype=np.int64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    num_candidates = partitions.size

    counts = np.zeros(num_candidates, dtype=np.int64)
    checked = np.zeros(num_candidates, dtype=np.int64)
    escalate = np.zeros(num_candidates, dtype=bool)
    decided = np.zeros(num_candidates, dtype=bool)
    decided_round = np.zeros(num_candidates, dtype=np.int64)
    sample_counts = np.zeros(num_candidates, dtype=np.int64)
    seed_sampled = np.zeros(num_candidates, dtype=bool)

    max_sample = min(
        num_records, max(1, int(config.sample_fraction_limit * num_records))
    )
    # The unsampled-record pool starts as the identity range; materializing it
    # is O(num_records), so it stays lazy until a second round actually draws
    # from it — batches decided entirely in round one, the common case at
    # scale, never pay the full-population allocation.
    available: np.ndarray | None = None
    first_round_sample: np.ndarray | None = None
    active = np.arange(num_candidates, dtype=np.int64)
    sampled_total = 0
    rounds_run = 0

    for round_index in range(config.max_rounds):
        if active.size == 0:
            break
        target = min(
            config.initial_sample * config.growth_factor**round_index, max_sample
        )
        delta = target - sampled_total
        if delta <= 0:
            break
        rounds_run += 1
        pool_size = num_records - sampled_total
        positions = stratified_sample_indices(
            pool_size, delta, rng, strata=config.strata
        )
        if first_round_sample is None:
            new_records = positions
            first_round_sample = positions
        else:
            if available is None:
                remaining = np.ones(num_records, dtype=bool)
                remaining[first_round_sample] = False
                available = np.flatnonzero(remaining)
            new_records = available[positions]
            available = np.delete(available, positions)
        sampled_total += new_records.size

        matrix = np.asarray(
            probability_fn(new_records, active), dtype=np.float64
        )
        bucket = partition_numbers(matrix, gamma)
        sample_counts[active] += np.sum(
            bucket == partitions[active, None], axis=1
        ).astype(np.int64)
        seed_sampled[active] |= np.isin(seed_rows[active], new_records)

        lower, upper = deterministic_count_bounds(
            sample_counts[active], seed_sampled[active], num_records, sampled_total
        )
        pass_early = lower >= thresholds[active]
        fail_early = upper < thresholds[active]
        newly_decided = pass_early | fail_early
        decided_ids = active[newly_decided]
        counts[decided_ids] = lower[newly_decided]
        checked[decided_ids] = sampled_total
        decided[decided_ids] = True
        decided_round[decided_ids] = rounds_run
        active = active[~newly_decided]

        if active.size and round_index < config.max_rounds - 1:
            # Scheduling only: a candidate whose interval already straddles
            # the threshold is near-threshold — more sampling rarely produces
            # a deterministic verdict, so send it straight to the exact scan.
            ci_low, ci_high = count_confidence_interval(
                sample_counts[active], sampled_total, num_records, config.confidence
            )
            straddles = (ci_low <= thresholds[active]) & (
                thresholds[active] <= ci_high
            )
            escalate_ids = active[straddles]
            escalate[escalate_ids] = True
            active = active[~straddles]

    escalate[active] = True
    escalate_ids = np.flatnonzero(escalate)
    if escalate_ids.size:
        with obs_phase("privacy_test_escalation"):
            exact_counts, exact_checked = exact_fn(escalate_ids)
        counts[escalate_ids] = np.asarray(exact_counts, dtype=np.int64)
        checked[escalate_ids] = np.asarray(exact_checked, dtype=np.int64)
        decided_round[escalate_ids] = rounds_run

    return ApproximateScanReport(
        counts=counts,
        records_checked=checked,
        escalated=escalate,
        sampled_records=sampled_total,
        rounds_run=rounds_run,
        candidate_rounds=decided_round,
    )
