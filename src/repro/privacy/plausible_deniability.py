"""Plausible deniability: Definition 1, Privacy Tests 1-2 and Theorem 1 algebra.

This is the heart of the paper.  A seed-based generative model M transforms an
input record d into a synthetic record y with probability Pr{y = M(d)}.  A
candidate synthetic y generated from seed d is *(k, γ)-plausibly deniable*
(Definition 1) with respect to dataset D if at least k - 1 other records of D
could have generated y with a probability within a factor γ of each other.

Both privacy tests work with *partition numbers*: given y, every record d with
Pr{y = M(d)} > 0 falls into the unique geometric bucket i >= 0 such that

    γ^-(i+1) < Pr{y = M(d)} <= γ^-i .

The deterministic test (Privacy Test 1) counts the records that share the
seed's bucket and passes iff the count is at least k.  The randomized test
(Privacy Test 2) perturbs k with Laplace(1/ε0) noise, which — by Theorem 1 —
makes the whole synthesis mechanism (ε, δ)-differentially private with

    ε = ε0 + ln(1 + γ / t),      δ = e^(-ε0 (k - t)),    for any 1 <= t < k .

The functions here are deliberately decoupled from any particular generative
model: they consume plain probability values / arrays.  The mechanism in
:mod:`repro.core.mechanism` wires them to a model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.privacy.laplace import laplace_noise

__all__ = [
    "PlausibleDeniabilityParams",
    "PrivacyTestResult",
    "DeterministicPrivacyTest",
    "RandomizedPrivacyTest",
    "make_privacy_test",
    "partition_number",
    "partition_numbers",
    "plausible_seed_count",
    "batch_plausible_seed_counts",
    "satisfies_plausible_deniability",
    "theorem1_epsilon",
    "theorem1_delta",
    "theorem1_guarantee",
    "minimum_k_for_delta",
]

#: Partition index used for records that cannot generate the candidate at all.
_NO_PARTITION = -1

#: Relative tolerance used when a probability sits exactly on a bucket boundary.
_BOUNDARY_TOLERANCE = 1e-12


@dataclass(frozen=True)
class PlausibleDeniabilityParams:
    """Privacy parameters of the plausible-deniability mechanism.

    Parameters
    ----------
    k:
        Minimum number of plausible seeds (including the true seed) required
        for a candidate synthetic to be releasable.  Larger k means a larger
        indistinguishability set.
    gamma:
        Width of the probability buckets; must be > 1.  The closer to 1 the
        stronger the indistinguishability between plausible seeds.
    epsilon0:
        Randomization parameter of Privacy Test 2.  ``None`` selects the
        deterministic Privacy Test 1 (plausible deniability only, no DP
        guarantee for the release decision itself).
    max_check_plausible:
        Examine at most this many candidate seed records when counting
        plausible seeds (performance knob of the paper's tool, Section 5).
    max_plausible:
        Stop counting as soon as this many plausible seeds have been found
        (second performance knob; must be >= k to be meaningful).
    """

    k: int
    gamma: float
    epsilon0: float | None = None
    max_check_plausible: int | None = None
    max_plausible: int | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be a positive integer")
        if self.gamma <= 1.0:
            raise ValueError("gamma must be strictly greater than 1")
        if self.epsilon0 is not None and self.epsilon0 <= 0:
            raise ValueError("epsilon0 must be positive when provided")
        if self.max_check_plausible is not None and self.max_check_plausible < 1:
            raise ValueError("max_check_plausible must be positive when provided")
        if self.max_plausible is not None and self.max_plausible < self.k:
            raise ValueError("max_plausible must be at least k to be meaningful")

    @property
    def is_randomized(self) -> bool:
        """Whether the randomized (differentially private) test is selected."""
        return self.epsilon0 is not None


@dataclass(frozen=True)
class PrivacyTestResult:
    """Outcome of running a privacy test on one candidate synthetic record.

    ``count_saturated`` marks counts capped at ``max_plausible`` (the true
    bucket population is at least ``plausible_seeds``).  ``escalated`` marks
    candidates whose approximate-mode sample straddled the threshold and fell
    back to the exact scan (always ``False`` on the exact paths).
    """

    passed: bool
    plausible_seeds: int
    partition_index: int
    threshold: float
    records_checked: int
    count_saturated: bool = False
    escalated: bool = False

    def __bool__(self) -> bool:
        return self.passed


# --------------------------------------------------------------------------- #
# Partition-number algebra
# --------------------------------------------------------------------------- #
def partition_number(probability: float, gamma: float) -> int:
    """Bucket index i >= 0 with γ^-(i+1) < probability <= γ^-i.

    Returns ``-1`` when the probability is zero (the record cannot have
    generated the candidate and therefore belongs to no partition).  The
    scalar path delegates to the vectorized one, so the two are bit-identical
    by construction.
    """
    if gamma <= 1.0:
        raise ValueError("gamma must be strictly greater than 1")
    if probability < 0.0 or probability > 1.0 + 1e-12:
        raise ValueError("probability must lie in [0, 1]")
    return int(
        partition_numbers(np.asarray([probability], dtype=np.float64), gamma)[0]
    )


def partition_numbers(probabilities: np.ndarray, gamma: float) -> np.ndarray:
    """Vectorized :func:`partition_number` over an array of probabilities.

    The boundary tolerance is *relative* to the log-space bucket index: a
    probability within ``index * _BOUNDARY_TOLERANCE`` of the exact edge
    ``gamma**-index`` snaps up into bucket ``index``.  An absolute tolerance
    would stop absorbing float error once the index grows past ~1/tolerance
    ulps (the error of ``-log(p)/log(gamma)`` scales with the index).
    Probabilities in ``[1.0, 1.0 + 1e-12]`` (the validation slack) land in
    bucket 0 explicitly instead of relying on a silent clamp.
    """
    if gamma <= 1.0:
        raise ValueError("gamma must be strictly greater than 1")
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.size and (probs.min() < 0.0 or probs.max() > 1.0 + 1e-12):
        raise ValueError("probabilities must lie in [0, 1]")
    result = np.full(probs.shape, _NO_PARTITION, dtype=np.int64)
    interior = (probs > 0.0) & (probs < 1.0)
    if np.any(interior):
        raw = -np.log(probs[interior]) / math.log(gamma)
        slack = _BOUNDARY_TOLERANCE * np.maximum(1.0, raw)
        result[interior] = np.floor(raw + slack).astype(np.int64)
    result[probs >= 1.0] = 0
    return result


def plausible_seed_count(
    seed_probability: float,
    dataset_probabilities: np.ndarray,
    gamma: float,
    max_check_plausible: int | None = None,
    max_plausible: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[int, int, int, bool]:
    """Count dataset records in the same probability bucket as the seed.

    Parameters
    ----------
    seed_probability:
        Pr{y = M(d)} for the true seed d.  Must be positive (the seed did
        generate the candidate).
    dataset_probabilities:
        Pr{y = M(da)} for every record da in D (including the seed itself).
    gamma:
        Bucket width.
    max_check_plausible, max_plausible:
        Early-termination knobs (Section 5); ``max_check_plausible`` scans a
        random record subset and ``max_plausible`` caps the reported count.
        These affect performance and the pass rate but never the privacy
        guarantee.
    rng:
        Randomness for the scan order.  Required when early termination is
        requested: without a caller-supplied rng every candidate would scan
        the records in the same "random" order, i.e. a fixed biased subset
        under ``max_check_plausible``.

    Returns
    -------
    (plausible_count, partition_index, records_scanned, count_saturated)

    ``records_scanned`` is always the full scanned-subset size and
    ``count_saturated`` tells whether the count hit the ``max_plausible``
    cap — identical semantics to :func:`batch_plausible_seed_counts`, so the
    two paths agree field for field.
    """
    if seed_probability <= 0.0:
        raise ValueError("the seed must have positive probability of generating y")
    seed_partition = partition_number(seed_probability, gamma)
    probs = np.asarray(dataset_probabilities, dtype=np.float64)
    if probs.ndim != 1:
        raise ValueError("dataset_probabilities must be a 1-D array")

    if max_check_plausible is None and max_plausible is None:
        partitions = partition_numbers(probs, gamma)
        count = int(np.sum(partitions == seed_partition))
        return count, seed_partition, probs.size, False

    if rng is None:
        raise ValueError(
            "early termination (max_check_plausible / max_plausible) requires an "
            "rng for the scan order; a fixed order would scan the same biased "
            "record subset for every candidate"
        )
    order = rng.permutation(probs.size)
    limit = probs.size if max_check_plausible is None else min(probs.size, max_check_plausible)
    partitions = partition_numbers(probs[order[:limit]], gamma)
    raw_count = int(np.sum(partitions == seed_partition))
    saturated = max_plausible is not None and raw_count >= max_plausible
    count = min(raw_count, max_plausible) if max_plausible is not None else raw_count
    return count, seed_partition, limit, saturated


def batch_plausible_seed_counts(
    seed_probabilities: np.ndarray,
    probability_matrix: np.ndarray,
    gamma: float,
    max_check_plausible: int | None = None,
    max_plausible: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`plausible_seed_count` over a batch of candidates.

    Parameters
    ----------
    seed_probabilities:
        Pr{y_c = M(d_c)} for each candidate's true seed, shape (candidates,).
        Every entry must be positive.
    probability_matrix:
        Pr{y_c = M(d_s)} for every (candidate, record) pair, shape
        (candidates, records) — one :func:`plausible_seed_count` input row per
        candidate.
    gamma:
        Bucket width.
    max_check_plausible, max_plausible:
        Early-termination knobs.  Each candidate examines its own independent
        uniformly-random record subset (matching the sequential scan's
        distribution); counts are capped at ``max_plausible``.  Requires
        ``rng``.
    rng:
        Randomness for the per-candidate scan subsets.

    Returns
    -------
    (counts, partition_indices, records_scanned, count_saturated), each of
    shape (candidates,).  ``records_scanned`` is the scanned-subset size and
    ``count_saturated`` marks counts capped at ``max_plausible`` — the same
    semantics as the sequential scan, so the audit trail of either path can
    be compared field for field.
    """
    seed_probs = np.asarray(seed_probabilities, dtype=np.float64)
    matrix = np.asarray(probability_matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("probability_matrix must be a 2-D (candidates x records) array")
    if seed_probs.shape != (matrix.shape[0],):
        raise ValueError("seed_probabilities must hold one entry per matrix row")
    if seed_probs.size and seed_probs.min() <= 0.0:
        raise ValueError("every seed must have positive probability of generating y")
    seed_partitions = partition_numbers(seed_probs, gamma)
    num_candidates, num_records = matrix.shape

    if max_check_plausible is None and max_plausible is None:
        partitions = partition_numbers(matrix, gamma)
        counts = np.sum(partitions == seed_partitions[:, None], axis=1)
        checked = np.full(num_candidates, num_records, dtype=np.int64)
        saturated = np.zeros(num_candidates, dtype=bool)
        return counts.astype(np.int64), seed_partitions, checked, saturated

    if rng is None:
        raise ValueError(
            "early termination (max_check_plausible / max_plausible) requires an "
            "rng for the scan order; a fixed order would scan the same biased "
            "record subset for every candidate"
        )
    limit = (
        num_records
        if max_check_plausible is None
        else min(num_records, max_check_plausible)
    )
    if limit < num_records:
        # One independent without-replacement subset per candidate; a partial
        # partition beats a full argsort since only membership matters.
        columns = np.argpartition(
            rng.random((num_candidates, num_records)), limit, axis=1
        )[:, :limit]
        scanned = np.take_along_axis(matrix, columns, axis=1)
    else:
        scanned = matrix
    partitions = partition_numbers(scanned, gamma)
    counts = np.sum(partitions == seed_partitions[:, None], axis=1).astype(np.int64)
    if max_plausible is not None:
        saturated = counts >= max_plausible
        counts = np.minimum(counts, max_plausible)
    else:
        saturated = np.zeros(num_candidates, dtype=bool)
    checked = np.full(num_candidates, limit, dtype=np.int64)
    return counts, seed_partitions, checked, saturated


def satisfies_plausible_deniability(
    seed_probability: float,
    dataset_probabilities: np.ndarray,
    k: int,
    gamma: float,
) -> bool:
    """Direct check of Definition 1 via the bucket-counting criterion.

    The bucket criterion of Privacy Test 1 is sufficient for Definition 1:
    any k records in one geometric bucket pairwise satisfy
    γ^-1 <= p_i / p_j <= γ.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    count, _, _, _ = plausible_seed_count(seed_probability, dataset_probabilities, gamma)
    return count >= k


# --------------------------------------------------------------------------- #
# Privacy tests
# --------------------------------------------------------------------------- #
class DeterministicPrivacyTest:
    """Privacy Test 1: pass iff the seed's bucket holds at least k records."""

    def __init__(self, params: PlausibleDeniabilityParams):
        self._params = params

    @property
    def params(self) -> PlausibleDeniabilityParams:
        """The privacy parameters this test enforces."""
        return self._params

    def __call__(
        self,
        seed_probability: float,
        dataset_probabilities: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> PrivacyTestResult:
        params = self._params
        count, partition, checked, saturated = plausible_seed_count(
            seed_probability,
            dataset_probabilities,
            params.gamma,
            params.max_check_plausible,
            params.max_plausible,
            rng,
        )
        return PrivacyTestResult(
            passed=count >= params.k,
            plausible_seeds=count,
            partition_index=partition,
            threshold=float(params.k),
            records_checked=checked,
            count_saturated=saturated,
        )

    def run_batch(
        self,
        seed_probabilities: np.ndarray,
        probability_matrix: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> list[PrivacyTestResult]:
        """Run the test on a whole batch of candidates in one vectorized pass."""
        params = self._params
        counts, partitions, checked, saturated = batch_plausible_seed_counts(
            seed_probabilities,
            probability_matrix,
            params.gamma,
            params.max_check_plausible,
            params.max_plausible,
            rng,
        )
        return self.results_from_counts(counts, partitions, checked, saturated=saturated)

    def thresholds(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """The per-candidate pass thresholds: the constant k, no randomness."""
        return np.full(count, float(self._params.k))

    def results_from_counts(
        self,
        counts: np.ndarray,
        partitions: np.ndarray,
        checked: np.ndarray,
        rng: np.random.Generator | None = None,
        *,
        saturated: np.ndarray | None = None,
        escalated: np.ndarray | None = None,
        thresholds: np.ndarray | None = None,
    ) -> list[PrivacyTestResult]:
        """Build per-candidate results from already-computed plausible counts."""
        params = self._params
        return [
            PrivacyTestResult(
                passed=bool(counts[index] >= params.k),
                plausible_seeds=int(counts[index]),
                partition_index=int(partitions[index]),
                threshold=float(params.k),
                records_checked=int(checked[index]),
                count_saturated=bool(saturated[index]) if saturated is not None else False,
                escalated=bool(escalated[index]) if escalated is not None else False,
            )
            for index in range(len(counts))
        ]


class RandomizedPrivacyTest:
    """Privacy Test 2: like Test 1 but with a Laplace-noised threshold.

    With threshold noise Lap(1/ε0) the overall mechanism satisfies
    (ε, δ)-differential privacy per Theorem 1.
    """

    def __init__(self, params: PlausibleDeniabilityParams):
        if params.epsilon0 is None:
            raise ValueError("RandomizedPrivacyTest requires params.epsilon0")
        self._params = params

    @property
    def params(self) -> PlausibleDeniabilityParams:
        """The privacy parameters this test enforces."""
        return self._params

    def __call__(
        self,
        seed_probability: float,
        dataset_probabilities: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> PrivacyTestResult:
        params = self._params
        if rng is None:
            raise ValueError("the randomized privacy test requires an rng")
        generator = rng
        # Release-time cost of this draw is accounted per Theorem 1 at the
        # session layer.  # repro: allow[privacy-unrecorded-noise]
        noisy_threshold = params.k + laplace_noise(1.0 / params.epsilon0, generator)
        count, partition, checked, saturated = plausible_seed_count(
            seed_probability,
            dataset_probabilities,
            params.gamma,
            params.max_check_plausible,
            params.max_plausible,
            generator,
        )
        return PrivacyTestResult(
            passed=count >= noisy_threshold,
            plausible_seeds=count,
            partition_index=partition,
            threshold=float(noisy_threshold),
            records_checked=checked,
            count_saturated=saturated,
        )

    def run_batch(
        self,
        seed_probabilities: np.ndarray,
        probability_matrix: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> list[PrivacyTestResult]:
        """Vectorized Privacy Test 2: one Laplace threshold draw per candidate."""
        params = self._params
        if rng is None:
            raise ValueError("the batched randomized test requires an rng")
        counts, partitions, checked, saturated = batch_plausible_seed_counts(
            seed_probabilities,
            probability_matrix,
            params.gamma,
            params.max_check_plausible,
            params.max_plausible,
            rng,
        )
        return self.results_from_counts(counts, partitions, checked, rng, saturated=saturated)

    def thresholds(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw the per-candidate Laplace-noised thresholds.

        Exposed so the approximate path can draw the *same* thresholds from
        the *same* stream position as :meth:`results_from_counts` would, then
        decide early / escalate against them.
        """
        params = self._params
        if rng is None:
            raise ValueError("the batched randomized test requires an rng")
        assert params.epsilon0 is not None
        # Accounted per Theorem 1 at release time.  # repro: allow[privacy-unrecorded-noise]
        return params.k + laplace_noise(1.0 / params.epsilon0, rng, size=count)

    def results_from_counts(
        self,
        counts: np.ndarray,
        partitions: np.ndarray,
        checked: np.ndarray,
        rng: np.random.Generator | None = None,
        *,
        saturated: np.ndarray | None = None,
        escalated: np.ndarray | None = None,
        thresholds: np.ndarray | None = None,
    ) -> list[PrivacyTestResult]:
        """Build per-candidate results, drawing one Laplace threshold each.

        ``thresholds`` short-circuits the draw when the caller already drew
        them via :meth:`thresholds` (the approximate path); passing both the
        pre-drawn thresholds and an rng never double-draws.
        """
        if thresholds is None:
            thresholds = self.thresholds(len(counts), rng)
        return [
            PrivacyTestResult(
                passed=bool(counts[index] >= thresholds[index]),
                plausible_seeds=int(counts[index]),
                partition_index=int(partitions[index]),
                threshold=float(thresholds[index]),
                records_checked=int(checked[index]),
                count_saturated=bool(saturated[index]) if saturated is not None else False,
                escalated=bool(escalated[index]) if escalated is not None else False,
            )
            for index in range(len(counts))
        ]


def make_privacy_test(
    params: PlausibleDeniabilityParams,
) -> DeterministicPrivacyTest | RandomizedPrivacyTest:
    """Build the privacy test selected by the parameters."""
    if params.is_randomized:
        return RandomizedPrivacyTest(params)
    return DeterministicPrivacyTest(params)


# --------------------------------------------------------------------------- #
# Theorem 1 algebra
# --------------------------------------------------------------------------- #
def theorem1_epsilon(epsilon0: float, gamma: float, t: int) -> float:
    """ε of Theorem 1: ε = ε0 + ln(1 + γ / t)."""
    if epsilon0 <= 0:
        raise ValueError("epsilon0 must be positive")
    if gamma <= 1.0:
        raise ValueError("gamma must be strictly greater than 1")
    if t < 1:
        raise ValueError("t must be a positive integer")
    return epsilon0 + math.log(1.0 + gamma / t)


def theorem1_delta(epsilon0: float, k: int, t: int) -> float:
    """δ of Theorem 1: δ = e^(-ε0 (k - t)); requires 1 <= t < k."""
    if epsilon0 <= 0:
        raise ValueError("epsilon0 must be positive")
    if k < 1:
        raise ValueError("k must be a positive integer")
    if not 1 <= t < k:
        raise ValueError("t must satisfy 1 <= t < k")
    return math.exp(-epsilon0 * (k - t))


def theorem1_guarantee(
    k: int,
    gamma: float,
    epsilon0: float,
    t: int | None = None,
) -> tuple[float, float, int]:
    """The (ε, δ) guarantee of Mechanism 1 with the randomized test.

    When ``t`` is omitted the trade-off parameter is chosen to minimise ε + lnδ
    pressure in a simple way: every admissible t is evaluated and the one with
    the smallest ε subject to δ <= 1/k² is preferred, falling back to the
    smallest δ when none qualifies.

    Returns ``(epsilon, delta, t)``.
    """
    if k < 2:
        raise ValueError("k must be at least 2 so that some 1 <= t < k exists")
    candidates = range(1, k) if t is None else [t]
    best: tuple[float, float, int] | None = None
    fallback: tuple[float, float, int] | None = None
    delta_target = 1.0 / (k * k)
    for candidate in candidates:
        epsilon = theorem1_epsilon(epsilon0, gamma, candidate)
        delta = theorem1_delta(epsilon0, k, candidate)
        entry = (epsilon, delta, candidate)
        if delta <= delta_target and (best is None or epsilon < best[0]):
            best = entry
        if fallback is None or delta < fallback[1]:
            fallback = entry
    chosen = best if best is not None else fallback
    assert chosen is not None
    return chosen


def minimum_k_for_delta(
    delta_target: float,
    epsilon0: float,
    t: int,
) -> int:
    """Smallest k such that δ = e^(-ε0 (k - t)) <= delta_target.

    The paper notes that to get δ <= n^-c one may set k >= t + (c/ε0) ln n;
    this helper solves the inequality exactly.
    """
    if not 0.0 < delta_target < 1.0:
        raise ValueError("delta_target must lie strictly between 0 and 1")
    if epsilon0 <= 0:
        raise ValueError("epsilon0 must be positive")
    if t < 1:
        raise ValueError("t must be a positive integer")
    k = t + math.log(1.0 / delta_target) / epsilon0
    return int(math.ceil(k))
