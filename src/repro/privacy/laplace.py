"""The Laplace mechanism, the basic building block of the DP model learner.

Sections 3.3.1 and 3.4.1 of the paper protect entropy values, record counts
and Dirichlet-multinomial counts by adding Laplace noise scaled to the L1
sensitivity of each quantity (Theorem 3.6 of Dwork & Roth).
"""

from __future__ import annotations

import numpy as np

__all__ = ["laplace_noise", "laplace_mechanism", "laplace_tail_probability"]


def laplace_noise(
    scale: float,
    rng: np.random.Generator,
    size: int | tuple[int, ...] | None = None,
) -> float | np.ndarray:
    """Draw noise from Lap(scale): density (1 / 2b) exp(-|z| / b), mean 0.

    Parameters
    ----------
    scale:
        The shape parameter ``b``.  Must be positive.
    rng:
        Source of randomness.
    size:
        Shape of the returned sample; ``None`` returns a scalar.
    """
    if scale <= 0:
        raise ValueError("Laplace scale must be positive")
    sample = rng.laplace(loc=0.0, scale=scale, size=size)
    return float(sample) if size is None else sample


def laplace_mechanism(
    value: float | np.ndarray,
    sensitivity: float,
    epsilon: float,
    rng: np.random.Generator,
) -> float | np.ndarray:
    """Release ``value`` with ε-differential privacy via the Laplace mechanism.

    Adds independent Lap(sensitivity / epsilon) noise to each component of the
    value.  The caller is responsible for ``sensitivity`` being a valid L1
    sensitivity for the function that computed ``value``.
    """
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    arr = np.asarray(value, dtype=np.float64)
    if sensitivity == 0:
        return float(arr) if arr.ndim == 0 else arr.copy()
    noise = rng.laplace(loc=0.0, scale=sensitivity / epsilon, size=arr.shape)
    noisy = arr + noise
    return float(noisy) if noisy.ndim == 0 else noisy


def laplace_tail_probability(threshold: float, scale: float) -> float:
    """Pr[L >= threshold] for L ~ Lap(scale) with mean 0.

    Used in the analysis of the randomized privacy test: the probability of
    passing the test when there are ``c`` plausible seeds is
    Pr[Lap(1/ε0) >= k - c].
    """
    if scale <= 0:
        raise ValueError("Laplace scale must be positive")
    if threshold >= 0:
        return 0.5 * np.exp(-threshold / scale)
    return 1.0 - 0.5 * np.exp(threshold / scale)
