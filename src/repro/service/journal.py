"""Durable budget journal: append-only JSON-lines spend event log.

A service restart must not reset tenant privacy budgets — forgetting spent
(ε, δ) is a privacy violation, not merely an availability bug.  The journal
records every budget-relevant event (``session_created`` / ``reserve`` /
``commit`` / ``cancel`` / ``release``) as one JSON line, using the same
write discipline as the audit log: a single line-buffered handle held under
a lock, one ``flush()`` per line, and optional ``fsync`` for crash-safe
mode.  :class:`~repro.service.api.ServiceApp` replays the journal on
startup, re-driving the events through the real
:class:`~repro.service.session.TenantSession` reserve → commit protocol so
budgets, session/release counters and idempotency records are restored
exactly; reservations that never settled (the process died between reserve
and commit) are refunded at the end of replay.

The reader tolerates a truncated final line — exactly what a crash mid-write
leaves behind — but treats a malformed line *before* the tail as corruption
and refuses to guess.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = ["BudgetJournal", "JournalCorruptionError", "read_journal"]


class JournalCorruptionError(ValueError):
    """A journal line before the final one failed to parse.

    A partial *last* line is the expected signature of a crash mid-append
    and is silently dropped; garbage earlier in the file means the journal
    was edited or damaged, and replaying a guess could misstate spend.
    """


class BudgetJournal:
    """Append-only JSON-lines event log with per-line flush.

    Thread-safe: one lazily opened line-buffered handle is shared under a
    lock (never reopened per event).  With ``fsync=True`` every line is
    forced to stable storage before :meth:`append` returns, making the
    journal crash-safe at the cost of one ``fsync`` per budget event.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False):
        self._path = Path(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._handle = None  # repro: guarded-by[_lock]

    @property
    def path(self) -> Path:
        return self._path

    def append(self, event: dict) -> None:
        """Write one event as a JSON line and flush it to the OS (or disk)."""
        line = json.dumps(event, sort_keys=True)
        with self._lock:
            if self._handle is None:
                if self._path.parent != Path("."):
                    self._path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self._path.open("a", encoding="utf-8", buffering=1)
            self._handle.write(line + "\n")
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "BudgetJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: str | Path) -> list[dict]:
    """Parse a journal back into its event dicts, tolerating a torn tail.

    Returns ``[]`` for a missing or empty journal.  A final line that fails
    to parse (a crash interrupted the write) is dropped; a malformed line
    anywhere else raises :class:`JournalCorruptionError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    events: list[dict] = []
    for number, raw in enumerate(raw_lines):
        if not raw.strip():
            continue
        try:
            event = json.loads(raw)
        except json.JSONDecodeError as exc:
            if number == len(raw_lines) - 1:
                break  # torn tail from a crash mid-append: drop it
            raise JournalCorruptionError(
                f"journal {path} line {number + 1} is not valid JSON "
                f"({exc}); refusing to replay a damaged journal"
            ) from exc
        if not isinstance(event, dict):
            raise JournalCorruptionError(
                f"journal {path} line {number + 1} is not a JSON object"
            )
        events.append(event)
    return events
