"""Multi-tenant synthesis-as-a-service subsystem (``repro serve``).

Layers the paper's seed-based synthesis pipeline into a long-running serving
system: a fit-once :class:`ModelRegistry` of content-hashed published models,
budget-governed :class:`TenantSession` handles with an auditable spend
ledger, a folding :class:`RequestScheduler` that fuses concurrent same-model
requests into one multi-lane engine job over a bounded :class:`EnginePool`
of supervised :class:`~repro.core.engine.SynthesisEngine` instances
(per-request chunk-indexed RNG streams keep any folding or interleaving
bit-identical to serial service), and a stdlib JSON/HTTP front end
(:class:`ServiceApp`, :func:`build_server`).
"""

from repro.service.api import (
    ReleaseRecord,
    ServiceApp,
    ServiceError,
    build_server,
    derive_request_seed,
)
from repro.service.engine_pool import EngineLease, EnginePool, WorkerBudgetError
from repro.service.journal import BudgetJournal, JournalCorruptionError, read_journal
from repro.service.registry import ModelRegistry, PublishedModel
from repro.service.scheduler import (
    DeadlineExceededError,
    GenerateRequest,
    QueueFullError,
    RequestScheduler,
    SchedulerStats,
    SchedulerStoppedError,
)
from repro.service.session import (
    BudgetExceededError,
    Reservation,
    SessionBudget,
    TenantSession,
)

__all__ = [
    "BudgetExceededError",
    "BudgetJournal",
    "DeadlineExceededError",
    "EngineLease",
    "EnginePool",
    "GenerateRequest",
    "JournalCorruptionError",
    "ModelRegistry",
    "PublishedModel",
    "QueueFullError",
    "ReleaseRecord",
    "RequestScheduler",
    "Reservation",
    "SchedulerStats",
    "SchedulerStoppedError",
    "ServiceApp",
    "ServiceError",
    "SessionBudget",
    "TenantSession",
    "WorkerBudgetError",
    "build_server",
    "derive_request_seed",
    "read_journal",
]
