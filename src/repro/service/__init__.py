"""Multi-tenant synthesis-as-a-service subsystem (``repro serve``).

Layers the paper's seed-based synthesis pipeline into a long-running serving
system: a fit-once :class:`ModelRegistry` of content-hashed published models,
budget-governed :class:`TenantSession` handles with an auditable spend
ledger, a coalescing :class:`RequestScheduler` over persistent
:class:`~repro.core.engine.SynthesisEngine` pools (per-request chunk-indexed
RNG streams keep any interleaving bit-identical to serial service), and a
stdlib JSON/HTTP front end (:class:`ServiceApp`, :func:`build_server`).
"""

from repro.service.api import (
    ReleaseRecord,
    ServiceApp,
    ServiceError,
    build_server,
    derive_request_seed,
)
from repro.service.journal import BudgetJournal, JournalCorruptionError, read_journal
from repro.service.registry import ModelRegistry, PublishedModel
from repro.service.scheduler import (
    DeadlineExceededError,
    GenerateRequest,
    QueueFullError,
    RequestScheduler,
    SchedulerStats,
    SchedulerStoppedError,
)
from repro.service.session import (
    BudgetExceededError,
    Reservation,
    SessionBudget,
    TenantSession,
)

__all__ = [
    "BudgetExceededError",
    "BudgetJournal",
    "DeadlineExceededError",
    "GenerateRequest",
    "JournalCorruptionError",
    "ModelRegistry",
    "PublishedModel",
    "QueueFullError",
    "ReleaseRecord",
    "RequestScheduler",
    "Reservation",
    "SchedulerStats",
    "SchedulerStoppedError",
    "ServiceApp",
    "ServiceError",
    "SessionBudget",
    "TenantSession",
    "build_server",
    "derive_request_seed",
    "read_journal",
]
