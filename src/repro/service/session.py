"""Budget-governed tenant sessions for the synthesis service.

A tenant opens a session against one published model and receives a hard
budget: a per-session (ε, δ) release allowance (charged per released row at
the model's Theorem 1 rate), an optional released-row cap, and a
k-deniability floor (a session may only attach to models whose privacy test
requires at least ``min_k`` plausible seeds).  The serving layer reserves the
full worst-case cost of a request *before* dispatching it and commits only
the rows that were actually released afterwards — a request that would
overspend is refused up front with the remaining budget, and a refused or
failed request never produces a partial release.

Spend is recorded on a shared :class:`~repro.privacy.accountant.PrivacyAccountant`
(whose ``spend`` is thread-safe), one entry per committed request, so the
session's ledger composes with the standard accountant machinery and the
conformance suite's :func:`~repro.testing.invariants.check_accountant_conservation`.
Every budget event (reserve, commit, refusal, cancel) is additionally
appended to an audit trail the service can persist as JSON lines.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.privacy.accountant import PrivacyAccountant

__all__ = [
    "BudgetExceededError",
    "SessionBudget",
    "Reservation",
    "TenantSession",
]


class BudgetExceededError(RuntimeError):
    """A request was refused because it would overspend the session budget.

    ``remaining`` holds the budget left *after honouring every outstanding
    reservation* — exactly what the tenant may still ask for.
    """

    def __init__(self, message: str, remaining: dict):
        super().__init__(message)
        self.remaining = remaining


@dataclass(frozen=True)
class SessionBudget:
    """The hard limits of one tenant session.

    Parameters
    ----------
    epsilon, delta:
        Total (ε, δ) the session may spend on released rows, composed
        sequentially at the model's per-row Theorem 1 rate.  ``None`` leaves
        the corresponding dimension uncapped (e.g. for deterministic-test
        models whose releases carry no DP cost).
    max_rows:
        Cap on the total rows the session may release; ``None`` = uncapped.
        This is the binding dimension for deterministic-test models, whose
        guarantee is the k-deniability of each row rather than a DP spend.
    min_k:
        k-deniability floor: the session may only be opened against a model
        whose privacy test requires at least this many plausible seeds.
    accuracy:
        The session's accuracy contract for the privacy test: ``"exact"``
        scans every seed record; ``"approximate"`` allows the bounded-latency
        sampling test (release decisions stay bit-identical to exact — the
        contract governs latency and the ``records_checked`` accounting,
        never which rows are released).
    """

    epsilon: float | None = None
    delta: float | None = None
    max_rows: int | None = None
    min_k: int = 1
    accuracy: str = "exact"

    def __post_init__(self) -> None:
        if self.epsilon is not None and self.epsilon < 0:
            raise ValueError("budget epsilon must be non-negative")
        if self.delta is not None and not 0.0 <= self.delta <= 1.0:
            raise ValueError("budget delta must lie in [0, 1]")
        if self.max_rows is not None and self.max_rows < 0:
            raise ValueError("budget max_rows must be non-negative")
        if self.min_k < 1:
            raise ValueError("min_k must be at least 1")
        if self.accuracy not in ("exact", "approximate"):
            raise ValueError("accuracy must be 'exact' or 'approximate'")

    def to_dict(self) -> dict:
        """Plain-JSON form for API responses and audit records."""
        return {
            "epsilon": self.epsilon,
            "delta": self.delta,
            "max_rows": self.max_rows,
            "min_k": self.min_k,
            "accuracy": self.accuracy,
        }


@dataclass(frozen=True)
class Reservation:
    """A worst-case budget hold for one in-flight request."""

    request_id: str
    rows: int
    epsilon: float
    delta: float


@dataclass
class _Spent:
    rows: int = 0
    epsilon: float = 0.0
    delta: float = 0.0


class TenantSession:
    """One tenant's budget-governed handle on a published model.

    All budget arithmetic happens under one lock, so concurrent requests can
    never jointly overspend: each sees the sum of committed spend plus every
    outstanding reservation.
    """

    def __init__(
        self,
        session_id: str,
        tenant: str,
        model_id: str,
        budget: SessionBudget,
        per_row_cost: tuple[float, float],
        model_k: int,
        accountant: PrivacyAccountant | None = None,
        audit_sink: "Callable[[dict], None] | None" = None,
        spend_hook: "Callable[[str, int, float, float], None] | None" = None,
    ):
        if model_k < budget.min_k:
            raise ValueError(
                f"model enforces k={model_k} plausible seeds but the session "
                f"requires a k-deniability floor of min_k={budget.min_k}"
            )
        eps_row, delta_row = per_row_cost
        if eps_row < 0 or delta_row < 0:
            raise ValueError("per-row cost must be non-negative")
        self.session_id = session_id
        self.tenant = tenant
        self.model_id = model_id
        self.budget = budget
        self.per_row_cost = (float(eps_row), float(delta_row))
        self.model_k = model_k
        self.accountant = accountant if accountant is not None else PrivacyAccountant()
        self._audit_sink = audit_sink
        # Telemetry-only observer called outside budget decisions as
        # ``spend_hook(tenant, rows, epsilon, delta)`` on every commit, so
        # the service can expose per-tenant spend counters on /metrics.
        self._spend_hook = spend_hook
        self._lock = threading.Lock()
        self._spent = _Spent()  # repro: guarded-by[_lock]
        self._reserved = _Spent()  # repro: guarded-by[_lock]
        self._active: dict[str, Reservation] = {}  # repro: guarded-by[_lock]
        self._events: list[dict] = []  # repro: guarded-by[_lock]
        self._sequence = 0  # repro: guarded-by[_lock]

    def next_sequence(self) -> int:
        """The next per-session request sequence number (thread-safe).

        Per-session (not service-global) so a derived request seed never
        depends on how requests from *other* sessions interleave with ours.
        """
        with self._lock:
            self._sequence += 1
            return self._sequence

    def advance_sequence(self, floor: int) -> None:
        """Raise the sequence counter to at least ``floor`` (never lowers it).

        Journal replay uses this so a restarted service hands out request ids
        (and therefore derived request seeds) that continue *after* the
        journaled history instead of colliding with it.
        """
        with self._lock:
            self._sequence = max(self._sequence, int(floor))

    def outstanding_reservations(self) -> list[Reservation]:
        """The reservations currently held but not yet committed/cancelled.

        Journal replay refunds exactly these: a reservation still active at
        the end of replay is one the crashed process never settled.
        """
        with self._lock:
            return list(self._active.values())

    # ------------------------------------------------------------------ #
    # Budget arithmetic (call under self._lock)
    # ------------------------------------------------------------------ #
    def _remaining_locked(self) -> dict:  # repro: requires-lock[_lock]
        budget = self.budget

        def _dim(limit: float | None, used: float) -> float | None:
            return None if limit is None else max(0.0, limit - used)

        remaining_rows = _dim(budget.max_rows, self._spent.rows + self._reserved.rows)
        return {
            "epsilon": _dim(budget.epsilon, self._spent.epsilon + self._reserved.epsilon),
            "delta": _dim(budget.delta, self._spent.delta + self._reserved.delta),
            "rows": int(remaining_rows) if remaining_rows is not None else None,
        }

    def _record(self, event: str, **fields) -> dict:  # repro: requires-lock[_lock]
        entry = {
            "event": event,
            "session_id": self.session_id,
            "tenant": self.tenant,
            "model_id": self.model_id,
            "timestamp": time.time(),
            **fields,
        }
        self._events.append(entry)
        if self._audit_sink is not None:
            self._audit_sink(entry)
        return entry

    # ------------------------------------------------------------------ #
    # Reservation protocol
    # ------------------------------------------------------------------ #
    def reserve(self, request_id: str, rows: int) -> Reservation:
        """Hold the worst-case cost of releasing ``rows`` rows, or refuse.

        Raises :class:`BudgetExceededError` — with the honest post-reservation
        remainder — when the request cannot fit; nothing is held in that case.
        """
        if rows < 1:
            raise ValueError("a request must ask for at least one row")
        eps_row, delta_row = self.per_row_cost
        cost = Reservation(
            request_id=request_id,
            rows=rows,
            epsilon=rows * eps_row,
            delta=rows * delta_row,
        )
        with self._lock:
            remaining = self._remaining_locked()
            over: list[str] = []
            if remaining["rows"] is not None and rows > remaining["rows"]:
                over.append(f"rows: requested {rows}, remaining {remaining['rows']}")
            if remaining["epsilon"] is not None and cost.epsilon > remaining["epsilon"] * (1 + 1e-12):
                over.append(
                    f"epsilon: request costs {cost.epsilon:.6g}, "
                    f"remaining {remaining['epsilon']:.6g}"
                )
            if remaining["delta"] is not None and cost.delta > remaining["delta"] * (1 + 1e-12):
                over.append(
                    f"delta: request costs {cost.delta:.6g}, "
                    f"remaining {remaining['delta']:.6g}"
                )
            if over:
                self._record(
                    "refusal", request_id=request_id, rows=rows,
                    reasons=over, remaining=remaining,
                )
                raise BudgetExceededError(
                    f"request {request_id!r} would overspend the session budget "
                    f"({'; '.join(over)})",
                    remaining=remaining,
                )
            self._reserved.rows += cost.rows
            self._reserved.epsilon += cost.epsilon
            self._reserved.delta += cost.delta
            self._active[request_id] = cost
            self._record(
                "reserve", request_id=request_id, rows=rows,
                epsilon=cost.epsilon, delta=cost.delta,
                remaining=self._remaining_locked(),
            )
        return cost

    def _release_hold(self, reservation: Reservation) -> None:  # repro: requires-lock[_lock]
        self._reserved.rows -= reservation.rows
        self._reserved.epsilon -= reservation.epsilon
        self._reserved.delta -= reservation.delta
        del self._active[reservation.request_id]

    def commit(self, reservation: Reservation, released_rows: int) -> None:
        """Convert a hold into actual spend for the rows really released.

        Rows the privacy test rejected are refunded: only ``released_rows``
        (never more than reserved) are charged, as one accountant entry.
        """
        if released_rows < 0:
            raise ValueError("released_rows must be non-negative")
        if released_rows > reservation.rows:
            raise ValueError(
                f"cannot commit {released_rows} rows against a reservation "
                f"of {reservation.rows}"
            )
        eps_row, delta_row = self.per_row_cost
        with self._lock:
            if self._active.get(reservation.request_id) is not reservation:
                raise KeyError(
                    f"reservation {reservation.request_id!r} is not active"
                )
            self._release_hold(reservation)
            self._spent.rows += released_rows
            self._spent.epsilon += released_rows * eps_row
            self._spent.delta += released_rows * delta_row
            if released_rows > 0:
                self.accountant.spend(
                    f"release/{reservation.request_id}",
                    eps_row,
                    delta_row,
                    count=released_rows,
                    scope=f"session/{self.session_id}",
                )
            self._record(
                "commit", request_id=reservation.request_id,
                reserved_rows=reservation.rows, released_rows=released_rows,
                epsilon=released_rows * eps_row, delta=released_rows * delta_row,
                remaining=self._remaining_locked(),
            )
        if self._spend_hook is not None:
            self._spend_hook(
                self.tenant,
                released_rows,
                released_rows * eps_row,
                released_rows * delta_row,
            )

    def cancel(self, reservation: Reservation, reason: str = "error") -> None:
        """Drop a hold without spending anything (failed/aborted request)."""
        with self._lock:
            if self._active.get(reservation.request_id) is not reservation:
                return  # already settled
            self._release_hold(reservation)
            self._record(
                "cancel", request_id=reservation.request_id,
                rows=reservation.rows, reason=reason,
                remaining=self._remaining_locked(),
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def remaining(self) -> dict:
        """Budget left after committed spend and outstanding reservations."""
        with self._lock:
            return self._remaining_locked()

    def spent(self) -> dict:
        """Committed spend so far (refunded reservations excluded)."""
        with self._lock:
            return {
                "rows": self._spent.rows,
                "epsilon": self._spent.epsilon,
                "delta": self._spent.delta,
            }

    def ledger(self) -> list[dict]:
        """The full audit trail (reserve / commit / refusal / cancel events)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def describe(self) -> dict:
        """Plain-JSON summary for the ``/budget`` endpoint."""
        with self._lock:
            return {
                "session_id": self.session_id,
                "tenant": self.tenant,
                "model_id": self.model_id,
                "budget": self.budget.to_dict(),
                "per_row_cost": {
                    "epsilon": self.per_row_cost[0],
                    "delta": self.per_row_cost[1],
                },
                "model_k": self.model_k,
                "spent": {
                    "rows": self._spent.rows,
                    "epsilon": self._spent.epsilon,
                    "delta": self._spent.delta,
                },
                "reserved": {
                    "rows": self._reserved.rows,
                    "epsilon": self._reserved.epsilon,
                    "delta": self._reserved.delta,
                },
                "remaining": self._remaining_locked(),
            }
