"""Fit-once model registry: published pipelines as content-hashed artifacts.

Publishing a (dataset, config, rng) triple fits the full
:class:`~repro.core.pipeline.SynthesisPipeline` exactly once and exposes the
result as a :class:`PublishedModel` whose ``model_id`` *is* the pipeline's
content-hashed fit-artifact key (dataset fingerprint + fit config + initial
RNG state).  Re-publishing the same triple — in this process or, with a
:class:`~repro.core.run_store.RunStore` attached, in any process that shares
the store — returns the identical fitted state without refitting; the
registry tracks how many real fits it performed so callers can verify the
fit-once contract.

The registry also implements the warm/cold split of a long-running service:
fitted pipelines live in a bounded in-process LRU cache, while the publish
*specs* (dataset + config + seed) are retained so an evicted model is
transparently rebuilt — from the store artifact when one exists, by refitting
otherwise.  :meth:`pinned_keys` names every artifact a published model still
references, which is exactly the ``keep`` set for
:meth:`~repro.core.run_store.RunStore.gc`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.pipeline import SynthesisPipeline
from repro.core.run_store import RunStore, dataset_fingerprint
from repro.datasets.dataset import Dataset
from repro.privacy.plausible_deniability import theorem1_guarantee

__all__ = ["ModelRegistry", "PublishedModel"]


@dataclass(frozen=True)
class _PublishSpec:
    """Everything needed to (re)build a published pipeline deterministically."""

    name: str
    dataset: Dataset
    config: GenerationConfig
    seed: int

    def pipeline(self, run_store: RunStore | None) -> SynthesisPipeline:
        return SynthesisPipeline(
            self.dataset,
            self.config,
            rng=np.random.default_rng(self.seed),
            run_store=run_store,
        )


@dataclass(frozen=True)
class PublishedModel:
    """One published, fitted synthesis pipeline."""

    model_id: str
    name: str
    pipeline: SynthesisPipeline
    dataset_fingerprint: str
    seed: int
    published_at: float

    @property
    def params(self):
        """The plausible-deniability parameters of the published model."""
        return self.pipeline.config.privacy

    def per_row_cost(self) -> tuple[float, float]:
        """Worst-case (ε, δ) of releasing one row under this model.

        The Theorem 1 guarantee for the randomized test; the deterministic
        test's releases carry no DP spend (their guarantee is k-deniability
        itself), so its per-row cost is (0, 0) and sessions bound those
        models by ``max_rows`` / ``min_k`` instead.
        """
        params = self.params
        if params.epsilon0 is None:
            return (0.0, 0.0)
        epsilon, delta, _t = theorem1_guarantee(params.k, params.gamma, params.epsilon0)
        return (epsilon, delta)

    def describe(self) -> dict:
        """Plain-JSON summary for the ``/models`` endpoint."""
        params = self.params
        epsilon, delta = self.per_row_cost()
        return {
            "model_id": self.model_id,
            "name": self.name,
            "dataset_fingerprint": self.dataset_fingerprint,
            "num_seed_records": len(self.pipeline.splits.seeds),
            "schema": self.pipeline.splits.seeds.schema.names,
            "k": params.k,
            "gamma": params.gamma,
            "epsilon0": params.epsilon0,
            "per_row_cost": {"epsilon": epsilon, "delta": delta},
            "seed": self.seed,
            "published_at": self.published_at,
        }


class ModelRegistry:
    """Publishes fitted pipelines once and serves them from a warm LRU cache."""

    def __init__(self, run_store: RunStore | None = None, max_cached: int = 8):
        if max_cached < 1:
            raise ValueError("max_cached must be at least 1")
        self._run_store = run_store
        self._max_cached = max_cached
        self._lock = threading.RLock()
        self._specs: dict[str, _PublishSpec] = {}  # repro: guarded-by[_lock]
        self._names: dict[str, str] = {}  # repro: guarded-by[_lock]
        self._cache: OrderedDict[str, PublishedModel] = OrderedDict()  # repro: guarded-by[_lock]
        self._published_at: dict[str, float] = {}  # repro: guarded-by[_lock]
        self._descriptions: dict[str, dict] = {}  # repro: guarded-by[_lock]
        self._fits_performed = 0  # repro: guarded-by[_lock]
        self._cache_hits = 0  # repro: guarded-by[_lock]
        self._cache_misses = 0  # repro: guarded-by[_lock]

    @property
    def run_store(self) -> RunStore | None:
        """The backing artifact store (None = in-process only)."""
        return self._run_store

    @property
    def fits_performed(self) -> int:
        """How many real (non-cached) pipeline fits this registry has run."""
        with self._lock:
            return self._fits_performed

    @property
    def cache_stats(self) -> tuple[int, int]:
        """``(hits, misses)`` of the warm model cache — the serving layer's
        fit-cache telemetry reads this at scrape time."""
        with self._lock:
            return self._cache_hits, self._cache_misses

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(
        self,
        name: str,
        dataset: Dataset,
        config: GenerationConfig | None = None,
        seed: int = 0,
    ) -> PublishedModel:
        """Fit (at most once) and publish a pipeline under ``name``.

        The model id is the content hash of (dataset, fit config, initial RNG
        state); publishing an identical triple under any name reuses the
        fitted state.  Re-using an existing ``name`` for a *different* triple
        is rejected — published models are immutable.
        """
        if config is None:
            config = GenerationConfig.paper_defaults(num_attributes=len(dataset.schema))
        spec = _PublishSpec(name=name, dataset=dataset, config=config, seed=seed)
        model_id = spec.pipeline(self._run_store).fit_artifact_key()
        with self._lock:
            existing_id = self._names.get(name)
            if existing_id is not None and existing_id != model_id:
                raise ValueError(
                    f"model name {name!r} is already published with a different "
                    f"content identity ({existing_id[:12]}…); published models "
                    "are immutable — pick a new name"
                )
            if model_id not in self._specs:
                self._specs[model_id] = spec
                self._published_at[model_id] = time.time()
            self._names[name] = model_id
            return self._get_locked(model_id)

    def _fit(self, spec: _PublishSpec, model_id: str) -> PublishedModel:  # repro: requires-lock[_lock]
        pipeline = spec.pipeline(self._run_store)
        store = self._run_store
        cached_on_disk = store is not None and store.has_artifact(model_id)
        pipeline.fit()
        if not cached_on_disk:
            self._fits_performed += 1
        return PublishedModel(
            model_id=model_id,
            name=spec.name,
            pipeline=pipeline,
            dataset_fingerprint=dataset_fingerprint(spec.dataset),
            seed=spec.seed,
            published_at=self._published_at[model_id],
        )

    def _get_locked(self, model_id: str) -> PublishedModel:  # repro: requires-lock[_lock]
        cached = self._cache.get(model_id)
        if cached is not None:
            self._cache_hits += 1
            self._cache.move_to_end(model_id)
            return cached
        spec = self._specs.get(model_id)
        if spec is None:
            raise KeyError(f"no published model {model_id!r}")
        self._cache_misses += 1
        model = self._fit(spec, model_id)
        self._cache[model_id] = model
        self._descriptions[model_id] = model.describe()
        while len(self._cache) > self._max_cached:
            self._cache.popitem(last=False)
        return model

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, model_id_or_name: str) -> PublishedModel:
        """A published model by id or name (warming the cache if evicted)."""
        with self._lock:
            model_id = self._names.get(model_id_or_name, model_id_or_name)
            return self._get_locked(model_id)

    def list_models(self) -> list[dict]:
        """Summaries of every published model, in publish order.

        Served from descriptions captured when each model was fitted —
        listing never refits or warms evicted pipelines, so ``GET /models``
        stays cheap no matter how many models the cache has dropped.
        """
        with self._lock:
            ordered = sorted(self._specs, key=lambda mid: self._published_at[mid])
            return [dict(self._descriptions[model_id]) for model_id in ordered]

    def pinned_keys(self) -> set[str]:
        """Artifact keys still referenced by published models (gc ``keep`` set)."""
        with self._lock:
            return set(self._specs)

    def gc_store(self, max_bytes: int) -> list[str]:
        """Size-bound the backing store, never evicting published models."""
        if self._run_store is None:
            return []
        return self._run_store.gc(max_bytes, keep=self.pinned_keys())
