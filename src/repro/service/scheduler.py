"""Coalescing request scheduler over persistent synthesis engines.

Concurrent ``/generate`` requests are funnelled through one dispatcher
thread: the first blocked ``get`` and a non-blocking drain coalesce every
request queued at that moment into one *batch*, which is then dispatched
request-by-request onto the shared persistent
:class:`~repro.core.engine.SynthesisEngine` worker pool of the request's
model.  Because every request carries its own base seed — and an engine run
is a pure function of ``(workload, base_seed, budget, chunk/batch size)``
through chunk-indexed RNG streams — the rows a request releases are
independent of which batch it landed in, of the requests around it, and of
the dispatch order: any interleaving of concurrent requests is bit-identical
to serving them one at a time (the service conformance suite proves this with
the shared :mod:`repro.testing.invariants` checkers).

Dispatch is deliberately one request at a time: a
:class:`~repro.core.engine.SynthesisEngine` pool supports a single in-flight
run (its chunk/release counters are per-job), so parallelism *within* a
request comes from the engine's worker processes while the dispatcher keeps
each engine to one run at a time.  The scheduler is model-agnostic — it
executes whatever callable the service hands it — and reports coalescing
statistics (batches dispatched, largest batch, requests served) so
throughput benchmarks can attribute wins to batching rather than luck.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.core.results import SynthesisReport

__all__ = ["GenerateRequest", "RequestScheduler", "SchedulerStats"]


@dataclass(frozen=True)
class GenerateRequest:
    """One deterministic generation request.

    ``base_seed`` fully determines the request's RNG streams (chunk ``i`` of
    the run uses ``SeedSequence(base_seed, spawn_key=(i,))``), making the
    result interleaving-independent.
    """

    request_id: str
    model_id: str
    num_rows: int
    base_seed: int
    max_attempts: int | None = None


@dataclass
class SchedulerStats:
    """Coalescing counters (snapshot via :meth:`RequestScheduler.stats`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    max_batch: int = 0
    coalesced: int = 0  # requests that shared a batch with at least one other
    batch_sizes: list[int] = field(default_factory=list)


class RequestScheduler:
    """Single-dispatcher queue that batches concurrent generation requests."""

    def __init__(
        self,
        executor: Callable[[GenerateRequest], SynthesisReport],
        *,
        max_batch: int | None = None,
        autostart: bool = True,
    ):
        """``executor`` runs one request on its model's persistent engine.

        ``max_batch`` caps how many queued requests one drain may coalesce
        (``None`` = drain everything pending).  ``autostart=False`` leaves
        the dispatcher stopped until :meth:`start` — tests use this to queue
        a burst deterministically and observe it coalesce into one batch.
        """
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be positive when provided")
        self._executor = executor
        self._max_batch = max_batch
        self._queue: queue.Queue = queue.Queue()
        self._stats = SchedulerStats()  # repro: guarded-by[_lock]
        self._lock = threading.Lock()
        self._closed = False  # repro: guarded-by[_lock]
        self._thread: threading.Thread | None = None  # repro: guarded-by[_lock]
        if autostart:
            self.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RequestScheduler":
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("the scheduler has been closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._dispatch_loop, name="repro-scheduler", daemon=True
                )
                self._thread.start()
        return self

    def close(self) -> None:
        """Stop the dispatcher; pending requests fail with CancelledError."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._queue.put(None)
        if thread is not None:
            thread.join(timeout=30)
        # Fail anything still queued rather than leaving callers hanging.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                _request, future = item
                future.cancel()

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, request: GenerateRequest) -> "Future[SynthesisReport]":
        """Queue a request; the future resolves to its merged report."""
        future: Future = Future()
        # The put happens inside the closed-check critical section: close()
        # also takes the lock before signalling shutdown, so a submitted
        # request is always queued ahead of the sentinel (FIFO) and can never
        # be stranded with a forever-pending future.
        with self._lock:
            if self._closed:
                raise RuntimeError("the scheduler has been closed")
            self._stats.submitted += 1
            self._queue.put((request, future))
        return future

    def stats(self) -> SchedulerStats:
        """A snapshot of the coalescing counters."""
        with self._lock:
            return SchedulerStats(
                submitted=self._stats.submitted,
                completed=self._stats.completed,
                failed=self._stats.failed,
                batches=self._stats.batches,
                max_batch=self._stats.max_batch,
                coalesced=self._stats.coalesced,
                batch_sizes=list(self._stats.batch_sizes),
            )

    # ------------------------------------------------------------------ #
    # Dispatch loop
    # ------------------------------------------------------------------ #
    def _drain_batch(self) -> list | None:
        """Block for one item, then coalesce everything already queued."""
        head = self._queue.get()
        if head is None:
            return None
        batch = [head]
        while self._max_batch is None or len(batch) < self._max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                # Preserve the shutdown signal for the outer loop.
                self._queue.put(None)
                break
            batch.append(item)
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._drain_batch()
            if batch is None:
                return
            with self._lock:
                self._stats.batches += 1
                self._stats.max_batch = max(self._stats.max_batch, len(batch))
                self._stats.batch_sizes.append(len(batch))
                if len(batch) > 1:
                    self._stats.coalesced += len(batch)
            for request, future in batch:
                if not future.set_running_or_notify_cancel():
                    continue
                try:
                    report = self._executor(request)
                except BaseException as exc:  # surface to the waiting caller
                    with self._lock:
                        self._stats.failed += 1
                    future.set_exception(exc)
                else:
                    with self._lock:
                        self._stats.completed += 1
                    future.set_result(report)
