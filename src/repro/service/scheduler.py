"""Folding request scheduler over per-model engine dispatchers.

Concurrent ``/generate`` requests land in per-model fold queues.  Each model
is drained by up to ``engines_per_model`` dispatcher threads: a dispatcher
pulls every request queued for its model at that moment (bounded by
``max_batch``), *folds* them into one fused engine job via the service's
fold executor — which concatenates the requests' per-request chunk plans
into a single dispatch over the shared
:class:`~repro.core.engine.SynthesisEngine` worker pool and splits the
merged report back per request by chunk ownership — and resolves each
request's future individually.  Because every request carries its own base
seed, and an engine lane is a pure function of ``(workload, base_seed,
budget, chunk/batch size)`` through chunk-indexed RNG streams, the rows a
request releases are independent of which fold it landed in, of the requests
around it, and of the dispatch order: any folding of concurrent requests is
bit-identical to serving them one at a time (the folding conformance suite
proves this with the shared :mod:`repro.testing.invariants` checkers).

Fairness across models is structural: each model owns its queue and its
dispatchers, so a flood against one model never blocks another model's
dispatch (their engines are separate resources in the
:class:`~repro.service.engine_pool.EnginePool`).  Within a model, overflow
beyond one batch spawns additional dispatchers up to ``engines_per_model``,
each folding its own slice onto its own pooled engine.

The scheduler is model-agnostic — it executes whatever fold callable the
service hands it — and reports folding statistics (fold factor, queue wait,
cumulative engine-busy time) so throughput benchmarks can attribute wins to
folding rather than luck.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.results import SynthesisReport

__all__ = [
    "DeadlineExceededError",
    "GenerateRequest",
    "QueueFullError",
    "RequestScheduler",
    "SchedulerStats",
    "SchedulerStoppedError",
]

_logger = logging.getLogger("repro.service.scheduler")


class SchedulerStoppedError(RuntimeError):
    """The scheduler was closed before (or while) this request could run."""


class QueueFullError(RuntimeError):
    """Admission refused: the dispatch queue is at ``max_queue_depth``.

    The service layer maps this to HTTP 503 with a ``Retry-After`` header —
    nothing was reserved or dispatched, so the client may simply retry.
    """


class DeadlineExceededError(RuntimeError):
    """A queued request's dispatch deadline passed before it could run.

    Raised on the request's future *instead of* executing it, so the caller
    can refund the budget reservation (HTTP 504) — a late request never
    burns engine time or spend.
    """


@dataclass(frozen=True)
class GenerateRequest:
    """One deterministic generation request.

    ``base_seed`` fully determines the request's RNG streams (chunk ``i`` of
    the run uses ``SeedSequence(base_seed, spawn_key=(i,))``), making the
    result interleaving-independent.  ``deadline`` is an absolute
    ``time.monotonic()`` instant: a request still queued past it is dropped
    with :class:`DeadlineExceededError` rather than dispatched.
    """

    request_id: str
    model_id: str
    num_rows: int
    base_seed: int
    max_attempts: int | None = None
    deadline: float | None = None
    # Span id of the request's root trace span; the scheduler parents its
    # queue-wait span here.  Telemetry-only — never touches execution.
    trace_parent: str | None = None


@dataclass
class SchedulerStats:
    """Folding counters (snapshot via :meth:`RequestScheduler.stats`).

    ``fold_factor`` is the mean number of requests per dispatched fold —
    1.0 means no folding happened, N means N requests shared each fused
    engine job on average.  ``queue_wait_seconds`` accumulates every
    request's admission→dispatch wait (``max_queue_wait`` is the worst
    single wait); ``engine_busy_seconds`` accumulates wall-clock spent
    executing folds; ``utilization`` is engine-busy time divided by
    scheduler uptime — the average number of concurrently busy engines.

    The privacy-test counters aggregate over every attempt of every
    completed report: ``records_checked`` is the total seed records the
    test examined, ``test_attempts`` the candidates tested, and
    ``escalations`` how many of those were escalated from the approximate
    sampling path to the exact scan (``escalation_rate`` = escalations /
    ``test_attempts``; always 0.0 on the exact path, where nothing escalates).
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    max_batch: int = 0
    coalesced: int = 0  # requests that shared a fold with at least one other
    batch_sizes: list[int] = field(default_factory=list)
    rejected: int = 0  # admission refusals (queue at max_queue_depth)
    expired: int = 0  # requests dropped at dispatch for a passed deadline
    folded_lanes: int = 0  # requests actually executed as fold lanes
    dropped_before_fold: int = 0  # drained but never folded (cancel/expiry/hook)
    fold_factor: float = 0.0  # mean requests per dispatched fold
    queue_wait_seconds: float = 0.0  # cumulative admission->dispatch wait
    max_queue_wait: float = 0.0  # worst single admission->dispatch wait
    engine_busy_seconds: float = 0.0  # cumulative fold execution wall-clock
    dispatchers_active: int = 0  # dispatcher threads currently draining
    utilization: float = 0.0  # engine_busy_seconds / scheduler uptime
    records_checked: int = 0  # seed records examined by the privacy test
    test_attempts: int = 0  # candidates privacy-tested across all reports
    escalations: int = 0  # approximate-test candidates escalated to exact
    escalation_rate: float = 0.0  # escalations / test_attempts


def _serial_fold(
    executor: Callable[[GenerateRequest], SynthesisReport],
) -> Callable[[str, list[GenerateRequest]], list]:
    """Adapt a per-request executor to the fold-executor interface.

    Requests keep their submission order and fail independently — exactly
    how the pre-folding dispatcher executed a drained batch.
    """

    def fold(model_id: str, requests: list[GenerateRequest]) -> list:
        outcomes: list = []
        for request in requests:
            try:
                outcomes.append(executor(request))
            except BaseException as exc:  # surfaced on that request's future
                outcomes.append(exc)
        return outcomes

    return fold


class RequestScheduler:
    """Per-model folding queues feeding up to ``engines_per_model`` dispatchers."""

    def __init__(
        self,
        executor: Callable[[GenerateRequest], SynthesisReport] | None = None,
        *,
        fold_executor: Callable[[str, list[GenerateRequest]], Sequence] | None = None,
        max_batch: int | None = None,
        max_queue_depth: int | None = None,
        engines_per_model: int = 1,
        dispatch_hook: Callable[[GenerateRequest], None] | None = None,
        drain_timeout: float = 30.0,
        autostart: bool = True,
        telemetry=None,
    ):
        """Exactly one of ``executor`` / ``fold_executor`` runs the work.

        ``executor`` runs one request at a time (the legacy interface, still
        used by tests and simple embeddings); ``fold_executor(model_id,
        requests)`` runs a whole same-model batch as one fused engine job and
        returns one outcome per request — a report, or an exception instance
        to fail just that request.  ``max_batch`` caps how many queued
        requests one drain may fold (``None`` = fold everything pending).
        ``max_queue_depth`` bounds admission across all models: a submit that
        would queue more than this many undispatched requests is refused with
        :class:`QueueFullError` (``None`` = no bound).  ``engines_per_model``
        is the dispatcher-per-model bound — overflow past one batch runs on
        additional dispatchers, each against its own pooled engine.
        ``dispatch_hook`` is an optional fault-injection point called as each
        request is picked up, *before* its deadline check (chaos tests delay
        dispatch through it).  ``drain_timeout`` bounds how long
        :meth:`close` waits for in-flight folds to finish before abandoning
        them.  ``autostart=False`` leaves dispatching stopped until
        :meth:`start` — tests use this to queue a burst deterministically and
        observe it fold into one batch.  ``telemetry`` is an optional
        :class:`repro.obs.Telemetry`: when present the scheduler records a
        queue-wait span per request at dequeue, observes queue depth/wait
        and fold-shape metrics, and counts requests dropped before folding.
        """
        if (executor is None) == (fold_executor is None):
            raise ValueError("provide exactly one of executor / fold_executor")
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be positive when provided")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive when provided")
        if engines_per_model < 1:
            raise ValueError("engines_per_model must be positive")
        if drain_timeout < 0:
            raise ValueError("drain_timeout must be non-negative")
        self._fold_executor = (
            fold_executor if fold_executor is not None else _serial_fold(executor)
        )
        self._max_batch = max_batch
        self._max_queue_depth = max_queue_depth
        self._engines_per_model = engines_per_model
        self._dispatch_hook = dispatch_hook
        self._drain_timeout = drain_timeout
        self._obs = telemetry
        self._stats = SchedulerStats()  # repro: guarded-by[_lock]
        self._lock = threading.Lock()
        self._queues: dict[str, deque] = {}  # repro: guarded-by[_lock]
        self._dispatchers: dict[str, int] = {}  # repro: guarded-by[_lock]
        self._threads: list[threading.Thread] = []  # repro: guarded-by[_lock]
        self._closed = False  # repro: guarded-by[_lock]
        self._started = False  # repro: guarded-by[_lock]
        self._started_at: float | None = None  # repro: guarded-by[_lock]
        self._depth = 0  # repro: guarded-by[_lock]
        if autostart:
            self.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RequestScheduler":
        """Start dispatching (idempotent): spawn dispatchers for queued work."""
        with self._lock:
            if self._closed:
                raise SchedulerStoppedError("the scheduler has been closed")
            if not self._started:
                self._started = True
                self._started_at = time.monotonic()
            for model_id in self._queues:
                self._spawn_dispatchers_locked(model_id)
        return self

    def close(self, drain_timeout: float | None = None) -> None:
        """Stop dispatching: in-flight folds drain, queued requests fail.

        Dispatchers pick up no new batches once the closed flag is set, but a
        fold already executing gets up to ``drain_timeout`` seconds (default:
        the constructor's value) to finish and resolve its futures — the
        pre-folding close path could fail a future whose engine work had
        already completed.  Requests still queued after the drain fail with
        :class:`SchedulerStoppedError`.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
            threads = [thread for thread in self._threads if thread.is_alive()]
        if not already_closed and threads:
            timeout = self._drain_timeout if drain_timeout is None else drain_timeout
            deadline = time.monotonic() + max(0.0, timeout)
            for thread in threads:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
            stuck = [thread for thread in threads if thread.is_alive()]
            if stuck:
                _logger.warning(
                    "%d dispatcher(s) still executing after the %.1fs drain "
                    "timeout; failing queued requests and abandoning the "
                    "in-flight fold(s)",
                    len(stuck),
                    timeout,
                )
        # Fail anything still queued rather than leaving callers hanging.
        with self._lock:
            pending = []
            for queue in self._queues.values():
                while queue:
                    pending.append(queue.popleft())
            self._depth -= len(pending)
        for request, future, _enqueued_at in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    SchedulerStoppedError(
                        "the scheduler was closed before request "
                        f"{request.request_id!r} could be dispatched"
                    )
                )

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, request: GenerateRequest) -> "Future[SynthesisReport]":
        """Queue a request; the future resolves to its merged report."""
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise SchedulerStoppedError("the scheduler has been closed")
            if (
                self._max_queue_depth is not None
                and self._depth >= self._max_queue_depth
            ):
                self._stats.rejected += 1
                raise QueueFullError(
                    f"admission refused: {self._depth} request(s) already "
                    f"queued (max_queue_depth={self._max_queue_depth})"
                )
            self._stats.submitted += 1
            self._depth += 1
            queue = self._queues.get(request.model_id)
            if queue is None:
                queue = self._queues[request.model_id] = deque()
            queue.append((request, future, time.monotonic()))
            depth = self._depth
            if self._started:
                self._spawn_dispatchers_locked(request.model_id)
        if self._obs is not None:
            self._obs.queue_depth.set(depth)
        return future

    def stats(self) -> SchedulerStats:
        """A snapshot of the folding and queue counters."""
        with self._lock:
            batches = self._stats.batches
            uptime = (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            return SchedulerStats(
                submitted=self._stats.submitted,
                completed=self._stats.completed,
                failed=self._stats.failed,
                batches=batches,
                max_batch=self._stats.max_batch,
                coalesced=self._stats.coalesced,
                batch_sizes=list(self._stats.batch_sizes),
                rejected=self._stats.rejected,
                expired=self._stats.expired,
                folded_lanes=self._stats.folded_lanes,
                dropped_before_fold=self._stats.dropped_before_fold,
                fold_factor=(
                    sum(self._stats.batch_sizes) / batches if batches else 0.0
                ),
                queue_wait_seconds=self._stats.queue_wait_seconds,
                max_queue_wait=self._stats.max_queue_wait,
                engine_busy_seconds=self._stats.engine_busy_seconds,
                dispatchers_active=sum(self._dispatchers.values()),
                utilization=(
                    self._stats.engine_busy_seconds / uptime if uptime > 0 else 0.0
                ),
                records_checked=self._stats.records_checked,
                test_attempts=self._stats.test_attempts,
                escalations=self._stats.escalations,
                escalation_rate=(
                    self._stats.escalations / self._stats.test_attempts
                    if self._stats.test_attempts
                    else 0.0
                ),
            )

    def queue_depth(self) -> int:
        """Requests currently admitted but not yet picked up for dispatch."""
        with self._lock:
            return self._depth

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _spawn_dispatchers_locked(self, model_id):  # repro: requires-lock[_lock]
        """Spawn dispatchers for ``model_id``'s queue, up to the per-model cap.

        One dispatcher drains a quiet model's whole queue (so a burst folds
        into one fused job); a queue deeper than the live dispatcher count
        spawns more, up to ``engines_per_model``, so overflow batches run
        truly in parallel on separate pooled engines.
        """
        queue = self._queues.get(model_id)
        needed = min(self._engines_per_model, len(queue) if queue else 0)
        while self._dispatchers.get(model_id, 0) < needed:
            self._dispatchers[model_id] = self._dispatchers.get(model_id, 0) + 1
            thread = threading.Thread(
                target=self._dispatch_model,
                args=(model_id,),
                name=f"repro-scheduler-{model_id}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _dispatch_model(self, model_id: str) -> None:
        """One dispatcher: repeatedly drain a fold's worth and execute it."""
        while True:
            with self._lock:
                queue = self._queues.get(model_id)
                if self._closed or not queue:
                    self._dispatchers[model_id] -= 1
                    return
                batch = []
                waits = []
                while queue and (
                    self._max_batch is None or len(batch) < self._max_batch
                ):
                    entry = queue.popleft()
                    # Queue wait is measured here, at the actual dequeue —
                    # not after the hook/deadline checks in the fold path —
                    # so a stalled dispatch hook can't inflate it.
                    wait = max(0.0, time.monotonic() - entry[2])
                    waits.append(wait)
                    batch.append(entry)
                    self._stats.queue_wait_seconds += wait
                    self._stats.max_queue_wait = max(
                        self._stats.max_queue_wait, wait
                    )
                self._depth -= len(batch)
                depth = self._depth
                self._stats.batches += 1
                self._stats.max_batch = max(self._stats.max_batch, len(batch))
                self._stats.batch_sizes.append(len(batch))
                if len(batch) > 1:
                    self._stats.coalesced += len(batch)
            if self._obs is not None:
                self._obs.queue_depth.set(depth)
                for (request, _future, enqueued_at), wait in zip(batch, waits):
                    self._obs.queue_wait_seconds.observe(wait)
                    self._obs.tracer.record_span(
                        request.request_id,
                        "queue_wait",
                        start=enqueued_at,
                        end=enqueued_at + wait,
                        parent_id=request.trace_parent,
                        attrs={"model": request.model_id},
                    )
            self._run_fold(model_id, batch)

    def _run_fold(self, model_id: str, batch: list) -> None:
        """Execute one fold: hook + deadline per request, then the fused job."""
        ready: list[tuple[GenerateRequest, Future]] = []
        for request, future, _enqueued_at in batch:
            if not future.set_running_or_notify_cancel():
                with self._lock:
                    self._stats.dropped_before_fold += 1
                if self._obs is not None:
                    self._obs.fold_dropped_total.inc(reason="cancelled")
                continue
            try:
                if self._dispatch_hook is not None:
                    self._dispatch_hook(request)
                if (
                    request.deadline is not None
                    and time.monotonic() > request.deadline
                ):
                    raise DeadlineExceededError(
                        f"request {request.request_id!r} spent its dispatch "
                        "deadline in the queue and was dropped undispatched"
                    )
            except BaseException as exc:  # surface to the waiting caller
                expired = isinstance(exc, DeadlineExceededError)
                with self._lock:
                    self._stats.failed += 1
                    self._stats.dropped_before_fold += 1
                    if expired:
                        self._stats.expired += 1
                if self._obs is not None:
                    self._obs.fold_dropped_total.inc(
                        reason="expired" if expired else "hook"
                    )
                    self._obs.requests_total.inc(status="failed")
                future.set_exception(exc)
                continue
            ready.append((request, future))
        if not ready:
            return
        with self._lock:
            self._stats.folded_lanes += len(ready)
        if self._obs is not None:
            self._obs.folds_total.inc()
            self._obs.folded_lanes_total.inc(len(ready))
            self._obs.fold_lanes.observe(len(ready))
        started = time.monotonic()
        try:
            outcomes = list(
                self._fold_executor(model_id, [request for request, _ in ready])
            )
            if len(outcomes) != len(ready):
                raise RuntimeError(
                    f"fold executor returned {len(outcomes)} outcome(s) for "
                    f"{len(ready)} request(s)"
                )
        except BaseException as exc:  # a whole-fold failure fails every request
            outcomes = [exc] * len(ready)
        busy = time.monotonic() - started
        with self._lock:
            self._stats.engine_busy_seconds += busy
        if self._obs is not None:
            self._obs.engine_busy_seconds_total.inc(busy)
        for (request, future), outcome in zip(ready, outcomes):
            if isinstance(outcome, BaseException):
                with self._lock:
                    self._stats.failed += 1
                    if isinstance(outcome, DeadlineExceededError):
                        self._stats.expired += 1
                if self._obs is not None:
                    self._obs.requests_total.inc(status="failed")
                future.set_exception(outcome)
            else:
                checked = 0
                escalated = 0
                attempts = getattr(outcome, "attempts", None) or ()
                for attempt in attempts:
                    checked += attempt.test.records_checked
                    escalated += bool(attempt.test.escalated)
                with self._lock:
                    self._stats.completed += 1
                    self._stats.records_checked += checked
                    self._stats.test_attempts += len(attempts)
                    self._stats.escalations += escalated
                if self._obs is not None:
                    self._obs.requests_total.inc(status="completed")
                    self._obs.privacy_test_attempts_total.inc(len(attempts))
                    self._obs.privacy_records_checked_total.inc(checked)
                    self._obs.privacy_escalations_total.inc(escalated)
                future.set_result(outcome)
