"""Coalescing request scheduler over persistent synthesis engines.

Concurrent ``/generate`` requests are funnelled through one dispatcher
thread: the first blocked ``get`` and a non-blocking drain coalesce every
request queued at that moment into one *batch*, which is then dispatched
request-by-request onto the shared persistent
:class:`~repro.core.engine.SynthesisEngine` worker pool of the request's
model.  Because every request carries its own base seed — and an engine run
is a pure function of ``(workload, base_seed, budget, chunk/batch size)``
through chunk-indexed RNG streams — the rows a request releases are
independent of which batch it landed in, of the requests around it, and of
the dispatch order: any interleaving of concurrent requests is bit-identical
to serving them one at a time (the service conformance suite proves this with
the shared :mod:`repro.testing.invariants` checkers).

Dispatch is deliberately one request at a time: a
:class:`~repro.core.engine.SynthesisEngine` pool supports a single in-flight
run (its chunk/release counters are per-job), so parallelism *within* a
request comes from the engine's worker processes while the dispatcher keeps
each engine to one run at a time.  The scheduler is model-agnostic — it
executes whatever callable the service hands it — and reports coalescing
statistics (batches dispatched, largest batch, requests served) so
throughput benchmarks can attribute wins to batching rather than luck.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.core.results import SynthesisReport

__all__ = [
    "DeadlineExceededError",
    "GenerateRequest",
    "QueueFullError",
    "RequestScheduler",
    "SchedulerStats",
    "SchedulerStoppedError",
]

_logger = logging.getLogger("repro.service.scheduler")


class SchedulerStoppedError(RuntimeError):
    """The scheduler was closed before (or while) this request could run."""


class QueueFullError(RuntimeError):
    """Admission refused: the dispatch queue is at ``max_queue_depth``.

    The service layer maps this to HTTP 503 with a ``Retry-After`` header —
    nothing was reserved or dispatched, so the client may simply retry.
    """


class DeadlineExceededError(RuntimeError):
    """A queued request's dispatch deadline passed before it could run.

    Raised on the request's future *instead of* executing it, so the caller
    can refund the budget reservation (HTTP 504) — a late request never
    burns engine time or spend.
    """


@dataclass(frozen=True)
class GenerateRequest:
    """One deterministic generation request.

    ``base_seed`` fully determines the request's RNG streams (chunk ``i`` of
    the run uses ``SeedSequence(base_seed, spawn_key=(i,))``), making the
    result interleaving-independent.  ``deadline`` is an absolute
    ``time.monotonic()`` instant: a request still queued past it is dropped
    with :class:`DeadlineExceededError` rather than dispatched.
    """

    request_id: str
    model_id: str
    num_rows: int
    base_seed: int
    max_attempts: int | None = None
    deadline: float | None = None


@dataclass
class SchedulerStats:
    """Coalescing counters (snapshot via :meth:`RequestScheduler.stats`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    max_batch: int = 0
    coalesced: int = 0  # requests that shared a batch with at least one other
    batch_sizes: list[int] = field(default_factory=list)
    rejected: int = 0  # admission refusals (queue at max_queue_depth)
    expired: int = 0  # requests dropped at dispatch for a passed deadline


class RequestScheduler:
    """Single-dispatcher queue that batches concurrent generation requests."""

    def __init__(
        self,
        executor: Callable[[GenerateRequest], SynthesisReport],
        *,
        max_batch: int | None = None,
        max_queue_depth: int | None = None,
        dispatch_hook: Callable[[GenerateRequest], None] | None = None,
        autostart: bool = True,
    ):
        """``executor`` runs one request on its model's persistent engine.

        ``max_batch`` caps how many queued requests one drain may coalesce
        (``None`` = drain everything pending).  ``max_queue_depth`` bounds
        admission: a submit that would queue more than this many undispatched
        requests is refused with :class:`QueueFullError` (``None`` = no
        bound).  ``dispatch_hook`` is an optional fault-injection point
        called as each request is picked up, *before* its deadline check
        (chaos tests delay dispatch through it).  ``autostart=False`` leaves
        the dispatcher stopped until :meth:`start` — tests use this to queue
        a burst deterministically and observe it coalesce into one batch.
        """
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be positive when provided")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive when provided")
        self._executor = executor
        self._max_batch = max_batch
        self._max_queue_depth = max_queue_depth
        self._dispatch_hook = dispatch_hook
        self._queue: queue.Queue = queue.Queue()
        self._stats = SchedulerStats()  # repro: guarded-by[_lock]
        self._lock = threading.Lock()
        self._closed = False  # repro: guarded-by[_lock]
        self._depth = 0  # repro: guarded-by[_lock]
        self._thread: threading.Thread | None = None  # repro: guarded-by[_lock]
        if autostart:
            self.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RequestScheduler":
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise SchedulerStoppedError("the scheduler has been closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._dispatch_loop, name="repro-scheduler", daemon=True
                )
                self._thread.start()
        return self

    def close(self) -> None:
        """Stop the dispatcher; still-queued requests fail with
        :class:`SchedulerStoppedError`."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._queue.put(None)
        if thread is not None:
            thread.join(timeout=30)
            if thread.is_alive():
                with self._lock:
                    depth = self._depth
                _logger.warning(
                    "scheduler dispatcher thread did not stop within 30s "
                    "(still dispatching, %d request(s) queued); failing the "
                    "queued requests and abandoning the thread",
                    depth,
                )
        # Fail anything still queued rather than leaving callers hanging.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                _request, future = item
                with self._lock:
                    self._depth -= 1
                if future.set_running_or_notify_cancel():
                    future.set_exception(
                        SchedulerStoppedError(
                            "the scheduler was closed before request "
                            f"{_request.request_id!r} could be dispatched"
                        )
                    )

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, request: GenerateRequest) -> "Future[SynthesisReport]":
        """Queue a request; the future resolves to its merged report."""
        future: Future = Future()
        # The put happens inside the closed-check critical section: close()
        # also takes the lock before signalling shutdown, so a submitted
        # request is always queued ahead of the sentinel (FIFO) and can never
        # be stranded with a forever-pending future.
        with self._lock:
            if self._closed:
                raise SchedulerStoppedError("the scheduler has been closed")
            if (
                self._max_queue_depth is not None
                and self._depth >= self._max_queue_depth
            ):
                self._stats.rejected += 1
                raise QueueFullError(
                    f"admission refused: {self._depth} request(s) already "
                    f"queued (max_queue_depth={self._max_queue_depth})"
                )
            self._stats.submitted += 1
            self._depth += 1
            self._queue.put((request, future))
        return future

    def stats(self) -> SchedulerStats:
        """A snapshot of the coalescing counters."""
        with self._lock:
            return SchedulerStats(
                submitted=self._stats.submitted,
                completed=self._stats.completed,
                failed=self._stats.failed,
                batches=self._stats.batches,
                max_batch=self._stats.max_batch,
                coalesced=self._stats.coalesced,
                batch_sizes=list(self._stats.batch_sizes),
                rejected=self._stats.rejected,
                expired=self._stats.expired,
            )

    def queue_depth(self) -> int:
        """Requests currently admitted but not yet picked up for dispatch."""
        with self._lock:
            return self._depth

    # ------------------------------------------------------------------ #
    # Dispatch loop
    # ------------------------------------------------------------------ #
    def _drain_batch(self) -> list | None:
        """Block for one item, then coalesce everything already queued."""
        head = self._queue.get()
        if head is None:
            return None
        batch = [head]
        while self._max_batch is None or len(batch) < self._max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                # Preserve the shutdown signal for the outer loop.
                self._queue.put(None)
                break
            batch.append(item)
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._drain_batch()
            if batch is None:
                return
            with self._lock:
                self._stats.batches += 1
                self._stats.max_batch = max(self._stats.max_batch, len(batch))
                self._stats.batch_sizes.append(len(batch))
                self._depth -= len(batch)
                if len(batch) > 1:
                    self._stats.coalesced += len(batch)
            for request, future in batch:
                if not future.set_running_or_notify_cancel():
                    continue
                try:
                    if self._dispatch_hook is not None:
                        self._dispatch_hook(request)
                    if (
                        request.deadline is not None
                        and time.monotonic() > request.deadline
                    ):
                        raise DeadlineExceededError(
                            f"request {request.request_id!r} spent its dispatch "
                            "deadline in the queue and was dropped undispatched"
                        )
                    report = self._executor(request)
                except BaseException as exc:  # surface to the waiting caller
                    with self._lock:
                        self._stats.failed += 1
                        if isinstance(exc, DeadlineExceededError):
                            self._stats.expired += 1
                    future.set_exception(exc)
                else:
                    with self._lock:
                        self._stats.completed += 1
                    future.set_result(report)
