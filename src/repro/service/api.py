"""The synthesis service: application core plus a stdlib JSON/HTTP front end.

:class:`ServiceApp` is the transport-agnostic heart of ``repro serve``.  It
wires the other service pieces together:

* a :class:`~repro.service.registry.ModelRegistry` of fit-once published
  pipelines (optionally size-bounded via :meth:`~repro.core.run_store.RunStore.gc`
  with the registry's pinned artifacts kept),
* per-tenant :class:`~repro.service.session.TenantSession` budgets with a
  reserve → dispatch → commit protocol (refusals carry the remaining budget;
  a refused or failed request never releases a partial result),
* a folding :class:`~repro.service.scheduler.RequestScheduler` that fuses
  concurrent same-model requests into one multi-lane engine job
  (:meth:`~repro.core.engine.SynthesisEngine.generate_folded`) dispatched on a
  bounded :class:`~repro.service.engine_pool.EnginePool`, with per-request
  chunk-indexed RNG streams so any folding or interleaving releases
  bit-identical rows to serving the requests serially,
* an append-only JSON-lines audit log of every budget event.

The HTTP layer is a thin shim over the app: a stdlib
:class:`~http.server.ThreadingHTTPServer` (one thread per connection, no
third-party dependencies) exposing

====================  ======================================================
``GET  /healthz``      liveness + model count + phase-profile summary
``GET  /metrics``      Prometheus text exposition of the telemetry registry
``GET  /trace/<id>``   the span tree of one request (telemetry tracing)
``GET  /models``       published models
``POST /sessions``     open a budgeted tenant session
``GET  /budget``       a session's spend / reservations / remainder (+ledger)
``POST /generate``     budget-checked synthesis (JSON page or NDJSON stream)
``GET  /releases/<id>``paginated access to a past release's rows
====================  ======================================================

Telemetry (PR 10) is on by default and determinism-safe: spans and metrics
consume zero randomness, all timings come from the monotonic clock, and the
conformance suite proves released rows / ledgers are bit-identical with
telemetry on vs off.  Construct with ``telemetry=False`` to disable.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.core.engine import (
    MAX_FOLD_LANES,
    ChunkProgress,
    EngineBrokenError,
    FoldSpec,
    SynthesisEngine,
)
from repro.core.results import SynthesisReport
from repro.obs import Telemetry
from repro.obs.profile import profiled
from repro.privacy.approximate import ApproximateTestConfig
from repro.service.engine_pool import EnginePool
from repro.service.journal import BudgetJournal, read_journal
from repro.service.registry import ModelRegistry, PublishedModel
from repro.service.scheduler import (
    DeadlineExceededError,
    GenerateRequest,
    QueueFullError,
    RequestScheduler,
    SchedulerStoppedError,
)
from repro.service.session import (
    BudgetExceededError,
    Reservation,
    SessionBudget,
    TenantSession,
)

__all__ = [
    "ReleaseRecord",
    "ServiceApp",
    "ServiceError",
    "build_server",
    "derive_request_seed",
]

_MAX_BODY_BYTES = 1 << 20  # 1 MiB of JSON is far beyond any legitimate request
_DEFAULT_PAGE_LIMIT = 100


class ServiceError(Exception):
    """An API-level failure with an HTTP status and machine-readable code.

    ``retry_after`` (seconds) is surfaced as an HTTP ``Retry-After`` header —
    set on 503 admission refusals so well-behaved clients back off instead of
    hammering a full queue.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
        **payload,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after
        self.payload = payload

    def to_json(self) -> dict:
        return {"error": str(self), "code": self.code, **self.payload}

    def headers(self) -> dict:
        if self.retry_after is None:
            return {}
        return {"Retry-After": str(max(1, int(round(self.retry_after))))}


def derive_request_seed(model_id: str, session_id: str, sequence: int) -> int:
    """The deterministic base seed of a session's ``sequence``-th request.

    A pure function of (model, session, per-session sequence) — independent
    of wall clock, thread scheduling and other sessions' traffic — so a
    session replayed request-by-request regenerates identical rows.  Clients
    needing cross-session determinism pass an explicit ``seed`` instead.
    """
    digest = hashlib.sha256(
        f"{model_id}:{session_id}:{sequence}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1  # non-negative int64


def _as_int(value, name: str, default: int | None = None) -> int | None:
    """Parse a client-supplied integer; malformed input is a 400, not a 500."""
    if value is None:
        return default
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ServiceError(400, "bad_parameter", f"{name!r} must be an integer") from None


def _trailing_int(identifier: str) -> int:
    """The trailing decimal run of an id like ``s00012`` or ``s00001-r00002``.

    Journal replay uses this to restore session/release/sequence counters
    past the journaled history; ids without a trailing number count as 0.
    """
    digits = ""
    for char in reversed(identifier or ""):
        if not char.isdigit():
            break
        digits = char + digits
    return int(digits) if digits else 0


def _jsonable(value):
    """Recursively convert numpy scalars so payloads survive ``json.dumps``."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


@dataclass(frozen=True)
class ReleaseRecord:
    """One completed release: its identity, rows and accounting."""

    release_id: str
    request_id: str
    session_id: str
    model_id: str
    base_seed: int
    requested_rows: int
    report: SynthesisReport
    created_at: float

    @property
    def num_released(self) -> int:
        return self.report.num_released

    def decoded_rows(self, offset: int = 0, limit: int | None = None) -> list[list]:
        """A window of released rows decoded to raw attribute values.

        Only the requested window is decoded, so paginating a large release
        costs O(page), not O(total rows per page).
        """
        from repro.datasets.dataset import Dataset

        released = self.report.released_dataset()
        stop = len(released.data) if limit is None else offset + limit
        window = Dataset(released.schema, released.data[offset:stop])
        return _jsonable(window.decoded_records())

    def page(self, offset: int = 0, limit: int = _DEFAULT_PAGE_LIMIT) -> dict:
        """One page of released rows plus the offset of the next page."""
        if offset < 0 or limit < 1:
            raise ServiceError(400, "bad_page", "offset must be >= 0 and limit >= 1")
        total = self.num_released
        window = self.decoded_rows(offset, limit)
        next_offset = offset + len(window)
        return {
            "release_id": self.release_id,
            "offset": offset,
            "rows": window,
            "next_offset": next_offset if next_offset < total else None,
            "total_rows": total,
        }

    def describe(self) -> dict:
        return {
            "release_id": self.release_id,
            "request_id": self.request_id,
            "session_id": self.session_id,
            "model_id": self.model_id,
            "base_seed": self.base_seed,
            "requested_rows": self.requested_rows,
            "released_rows": self.num_released,
            "attempts": self.report.num_attempts,
            "pass_rate": self.report.pass_rate,
            "created_at": self.created_at,
        }


class ServiceApp:
    """The multi-tenant synthesis-serving application core."""

    #: Advisory client back-off, sent as ``Retry-After`` on 503 refusals.
    RETRY_AFTER_SECONDS = 1.0

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        *,
        num_workers: int = 1,
        default_budget: SessionBudget | None = None,
        audit_log: str | Path | None = None,
        audit_fsync: bool = False,
        journal: str | Path | None = None,
        store_max_bytes: int | None = None,
        scheduler_max_batch: int | None = None,
        max_queue_depth: int | None = None,
        deadline_ms: float | None = None,
        dispatch_hook=None,
        max_releases: int = 256,
        engines_per_model: int = 1,
        worker_budget: int | None = None,
        drain_timeout: float = 30.0,
        telemetry: "bool | Telemetry" = True,
        trace_log: str | Path | None = None,
    ):
        """``num_workers`` sizes each persistent engine's worker pool (1 = the
        in-process chunked reference path).  ``store_max_bytes`` caps the
        backing artifact store: after every publish the store is gc'd down to
        the bound with the registry's published models pinned.
        ``max_releases`` bounds the in-memory release history available to
        ``GET /releases/<id>`` — a long-running server retains the newest N
        releases and expires the rest (404 after expiry), so held reports
        can never grow without bound.  Session budget state is tiny and kept
        for the server's lifetime regardless.

        Fault-tolerance knobs: ``journal`` names an append-only JSON-lines
        budget journal replayed on startup (restoring session budgets,
        refunding reservations the previous process never settled, and
        restoring idempotency records); ``audit_fsync`` forces audit *and*
        journal lines to stable storage per event; ``max_queue_depth`` bounds
        scheduler admission (503 + ``Retry-After`` past it); ``deadline_ms``
        drops requests still queued after that many milliseconds (504, with
        the budget reservation refunded); ``dispatch_hook`` is a chaos-test
        fault point forwarded to the scheduler.

        Scaling knobs (PR 8): ``engines_per_model`` bounds the
        :class:`~repro.service.engine_pool.EnginePool` engines (and the
        scheduler's dispatchers) per model, so a hot model's overflow batches
        run on separate engines; ``worker_budget`` globally bounds reserved
        worker processes across all engines (idle engines are reaped
        least-recently-used-first to stay under it); ``drain_timeout`` bounds
        how long :meth:`close` lets in-flight folded batches finish before
        failing still-queued requests.

        Observability knobs (PR 10): ``telemetry`` enables the in-process
        :class:`~repro.obs.Telemetry` hub (tracer + metrics registry +
        per-phase profiles; pass a pre-built instance to share one hub);
        ``trace_log`` names an append-only JSON-lines file that receives
        every finished span (torn-tail tolerant, same discipline as the
        budget journal).
        """
        if max_releases < 1:
            raise ValueError("max_releases must be at least 1")
        self._registry = registry if registry is not None else ModelRegistry()
        self._num_workers = num_workers
        self._default_budget = default_budget or SessionBudget()
        self._audit_path = Path(audit_log) if audit_log is not None else None
        self._audit_fsync = audit_fsync
        self._audit_lock = threading.Lock()
        self._audit_handle = None  # repro: guarded-by[_audit_lock]
        self._journal = (
            BudgetJournal(journal, fsync=audit_fsync) if journal is not None else None
        )
        self._replaying = False
        self._store_max_bytes = store_max_bytes
        self._max_releases = max_releases
        self._deadline_ms = deadline_ms
        self._drain_timeout = drain_timeout
        self._lock = threading.Lock()
        self._sessions: dict[str, TenantSession] = {}  # repro: guarded-by[_lock]
        self._releases: "OrderedDict[str, ReleaseRecord]" = OrderedDict()  # repro: guarded-by[_lock]
        self._session_counter = 0  # repro: guarded-by[_lock]
        self._release_counter = 0  # repro: guarded-by[_lock]
        self._idempotency: dict[tuple[str, str], dict] = {}  # repro: guarded-by[_lock]
        self._closed = False  # repro: guarded-by[_lock]
        if isinstance(telemetry, Telemetry):
            self._obs: Telemetry | None = telemetry
        elif telemetry:
            self._obs = Telemetry(trace_log=trace_log)
        else:
            self._obs = None
        # Per-engine-key seed-record counts, written once at engine build and
        # read at privacy-span time to derive scan fractions.
        self._seed_counts: dict[str, int] = {}  # repro: guarded-by[_lock]
        # Thread-local fold context: the dispatcher thread running a folded
        # batch parks its requests here so engine supervision events
        # (worker restarts, chunk retries, pool rebuilds) can be attributed
        # to the traces of the requests that were in flight.
        self._fold_ctx = threading.local()
        self._pool = EnginePool(
            self._build_engine,
            engines_per_model=engines_per_model,
            workers_per_engine=num_workers,
            worker_budget=worker_budget,
            telemetry=self._obs,
        )
        self._scheduler = RequestScheduler(
            fold_executor=self._execute_fold,
            max_batch=scheduler_max_batch,
            max_queue_depth=max_queue_depth,
            engines_per_model=engines_per_model,
            dispatch_hook=dispatch_hook,
            drain_timeout=drain_timeout,
            telemetry=self._obs,
        )
        # Journal replay: counters and idempotency records are restored
        # immediately; each session's budget history replays through the real
        # reserve/commit protocol once its (content-hashed) model is back in
        # the registry — at construction for a pre-populated registry, or
        # after the matching publish_model() call otherwise.
        self._unreplayed: dict[str, list[dict]] = {}  # repro: guarded-by[_lock]
        if self._journal is not None:
            self._load_journal()
            self._replay_ready_sessions()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ServiceApp":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Drain the scheduler, retire the engine pool, close audit + journal.

        The scheduler is closed first (letting in-flight folded batches
        finish within ``drain_timeout``), so every lease is back on the
        shelf when the pool closes its engines.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._scheduler.close(self._drain_timeout)
        self._pool.close()
        with self._audit_lock:
            if self._audit_handle is not None:
                self._audit_handle.close()
                self._audit_handle = None
        if self._journal is not None:
            self._journal.close()
        if self._obs is not None:
            self._obs.close()

    @property
    def registry(self) -> ModelRegistry:
        return self._registry

    @property
    def telemetry(self) -> Telemetry | None:
        """The telemetry hub, or None when constructed with telemetry=False."""
        return self._obs

    @property
    def scheduler(self) -> RequestScheduler:
        return self._scheduler

    def _audit(self, event: dict) -> None:
        """Append one audit line through a single persistent handle.

        The handle is opened lazily once and held (line-buffered) under
        ``_audit_lock`` — reopening per event costs an open/close syscall
        pair per budget operation and loses append atomicity guarantees on
        some filesystems.  ``audit_fsync=True`` additionally forces each
        line to stable storage for crash-safe operation.
        """
        if self._audit_path is None or self._replaying:
            return
        line = json.dumps(_jsonable(event), sort_keys=True)
        with self._audit_lock:
            if self._audit_handle is None:
                self._audit_handle = self._audit_path.open(
                    "a", encoding="utf-8", buffering=1
                )
            self._audit_handle.write(line + "\n")
            self._audit_handle.flush()
            if self._audit_fsync:
                os.fsync(self._audit_handle.fileno())

    def _sink(self, event: dict) -> None:
        """Fan one budget event out to the audit log and the journal.

        Sessions emit their reserve/commit/cancel/refusal events through
        this sink; replayed events are suppressed (they are already in the
        journal — re-appending them would double spend on the next replay).
        """
        event = _jsonable(event)
        self._audit(event)
        if self._journal is not None and not self._replaying:
            self._journal.append(event)

    # ------------------------------------------------------------------ #
    # Models
    # ------------------------------------------------------------------ #
    def publish_model(self, name, dataset, config=None, seed: int = 0) -> dict:
        """Publish a fitted model (fit-once) and size-bound the store."""
        model = self._registry.publish(name, dataset, config, seed=seed)
        if self._store_max_bytes is not None:
            evicted = self._registry.gc_store(self._store_max_bytes)
            if evicted:
                self._audit(
                    {"event": "store_gc", "evicted": evicted, "timestamp": time.time()}
                )
        # Journaled sessions bound to this (content-hashed) model can now be
        # restored — a restart republishes the same data/config to the same
        # model id, unblocking their budget replay.
        self._replay_ready_sessions()
        return model.describe()

    def list_models(self) -> list[dict]:
        return self._registry.list_models()

    def model(self, model_id_or_name: str) -> PublishedModel:
        """A published model by id or name (404 :class:`ServiceError` if absent)."""
        try:
            return self._registry.get(model_id_or_name)
        except KeyError:
            raise ServiceError(
                404, "unknown_model", f"no published model {model_id_or_name!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    def create_session(
        self,
        model: str,
        tenant: str = "default",
        budget: SessionBudget | dict | None = None,
    ) -> dict:
        """Open a budgeted session against a published model."""
        published = self.model(model)
        if isinstance(budget, dict):
            unknown = set(budget) - {
                "epsilon",
                "delta",
                "max_rows",
                "min_k",
                "accuracy",
            }
            if unknown:
                raise ServiceError(
                    400, "bad_budget", f"unknown budget keys: {sorted(unknown)}"
                )
            try:
                budget = SessionBudget(**budget)
            except (TypeError, ValueError) as exc:
                raise ServiceError(400, "bad_budget", str(exc)) from exc
        elif budget is None:
            budget = self._default_budget
        with self._lock:
            self._session_counter += 1
            session_id = f"s{self._session_counter:05d}"
        try:
            session = TenantSession(
                session_id=session_id,
                tenant=tenant,
                model_id=published.model_id,
                budget=budget,
                per_row_cost=published.per_row_cost(),
                model_k=published.params.k,
                audit_sink=self._sink,
                spend_hook=self._spend_hook if self._obs is not None else None,
            )
        except ValueError as exc:
            raise ServiceError(409, "k_floor_violation", str(exc)) from exc
        with self._lock:
            self._sessions[session_id] = session
        self._sink(
            {
                "event": "session_created",
                "session_id": session_id,
                "tenant": tenant,
                "model_id": published.model_id,
                "budget": budget.to_dict(),
                "timestamp": time.time(),
            }
        )
        return session.describe()

    def _session(self, session_id: str) -> TenantSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(404, "unknown_session", f"no session {session_id!r}")
        return session

    def budget(self, session_id: str, include_ledger: bool = False) -> dict:
        """A session's budget status (optionally with the full audit trail)."""
        session = self._session(session_id)
        info = session.describe()
        if include_ledger:
            info["ledger"] = _jsonable(session.ledger())
        return info

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    @staticmethod
    def engine_key(model_id: str, accuracy: str) -> str:
        """The pool key of a model's engine under one accuracy contract.

        Exact and approximate sessions against the same model run on
        *separate* pooled engines (the approximate engine carries the
        sampling test config), keyed by a ``#approx`` suffix.  The pool and
        scheduler treat the key opaquely; only :meth:`_build_engine` parses
        it.
        """
        return model_id + "#approx" if accuracy == "approximate" else model_id

    def _build_engine(self, engine_key: str) -> SynthesisEngine:
        """:class:`EnginePool` builder: a fresh engine for a published model.

        ``engine_key`` is ``<model_id>`` or ``<model_id>#approx`` (see
        :meth:`engine_key`).  The approximate variant forces an
        :class:`~repro.privacy.approximate.ApproximateTestConfig` — the
        pipeline config's, or the defaults when the model was published
        without one.
        """
        model_id, _, variant = engine_key.partition("#")
        model = self._registry.get(model_id)
        config = model.pipeline.config
        approximate = config.approximate
        if variant == "approx":
            approximate = approximate or ApproximateTestConfig()
        with self._lock:
            self._seed_counts[engine_key] = len(model.pipeline.splits.seeds)
        return SynthesisEngine(
            model.pipeline.model,
            model.pipeline.splits.seeds,
            config.privacy,
            num_workers=self._num_workers,
            chunk_size=config.chunk_size,
            batch_size=config.batch_size,
            max_chunk_retries=config.max_chunk_retries,
            approximate=approximate,
            event_sink=self._engine_event if self._obs is not None else None,
        )

    def _fold_window(
        self, model_id: str, requests: list[GenerateRequest]
    ) -> list[SynthesisReport]:
        """Run one ≤ ``MAX_FOLD_LANES`` window as a single fused engine job.

        A lease whose engine turns out broken mid-fold is discarded (evicted
        from the pool) and the window retried once on a freshly built engine
        — every lane is deterministic in (base_seed, chunk index), so the
        retry releases the same rows the first attempt would have.
        """
        specs = [
            FoldSpec(
                num_released=request.num_rows,
                base_seed=request.base_seed,
                max_attempts=request.max_attempts,
            )
            for request in requests
        ]
        obs = self._obs
        for attempt in (0, 1):
            lease = self._pool.checkout(model_id)
            fold_start = obs.clock.monotonic() if obs is not None else 0.0
            chunk_events: list[tuple[ChunkProgress, float, float]] = []
            progress = None
            profile = None
            if obs is not None:
                last_seen: dict[int, float] = {}

                def progress(p, _last=last_seen, _start=fold_start):
                    # Called from the dispatcher thread (generate_folded is
                    # synchronous) — per-lane last-event times bound each
                    # chunk span without touching the engine's hot path.
                    now = obs.clock.monotonic()
                    chunk_events.append((p, _last.get(p.lane_index, _start), now))
                    _last[p.lane_index] = now

                profile = obs.new_profile()
            try:
                self._fold_ctx.requests = requests
                if obs is not None:
                    with profiled(profile):
                        reports = lease.engine.generate_folded(specs, progress=progress)
                else:
                    reports = lease.engine.generate_folded(specs)
            except EngineBrokenError:
                self._pool.discard(lease)
                if attempt:
                    raise
                continue
            except BaseException:
                self._pool.release(lease)
                raise
            finally:
                self._fold_ctx.requests = None
            self._pool.release(lease)
            if obs is not None:
                obs.observe_profile(profile)
                self._record_fold_telemetry(
                    model_id, requests, reports, fold_start, chunk_events, profile
                )
            return reports
        raise AssertionError("unreachable")  # pragma: no cover

    def _engine_event(self, kind: str, payload: dict) -> None:
        """Engine supervision event sink (telemetry only; never raises).

        Counts the event in the metrics registry and attaches a zero-duration
        span to every request in the fold the dispatcher thread is running —
        a worker restart or pool rebuild affects the whole fused job, so each
        folded lane's trace records it.
        """
        obs = self._obs
        if obs is None:
            return
        obs.engine_event(kind, payload)
        requests = getattr(self._fold_ctx, "requests", None) or ()
        for request in requests:
            obs.tracer.event(
                request.request_id,
                kind,
                parent_id=request.trace_parent,
                attrs=dict(payload),
            )

    def _record_fold_telemetry(
        self,
        engine_key: str,
        requests: list[GenerateRequest],
        reports: list[SynthesisReport],
        fold_start: float,
        chunk_events: list,
        profile,
    ) -> None:
        """Spans for one finished fold window: fold → engine_job → chunks + test."""
        obs = self._obs
        assert obs is not None
        fold_end = obs.clock.monotonic()
        path = "approximate" if engine_key.endswith("#approx") else "exact"
        with self._lock:
            num_seeds = self._seed_counts.get(engine_key, 0)
        phases = profile.snapshot()
        for lane, (request, report) in enumerate(zip(requests, reports)):
            fold_span = obs.tracer.record_span(
                request.request_id,
                "fold",
                start=fold_start,
                end=fold_end,
                parent_id=request.trace_parent,
                attrs={
                    "engine_key": engine_key,
                    "lanes": len(requests),
                    "lane_index": lane,
                    "phases": phases,
                },
            )
            engine_span = obs.tracer.record_span(
                request.request_id,
                "engine_job",
                start=fold_start,
                end=fold_end,
                parent_id=fold_span.span_id,
                attrs={
                    "attempts": report.num_attempts,
                    "released": report.num_released,
                },
            )
            for p, start, end in chunk_events:
                if p.lane_index != lane:
                    continue
                obs.tracer.record_span(
                    request.request_id,
                    "engine_chunk",
                    start=start,
                    end=end,
                    parent_id=engine_span.span_id,
                    attrs={
                        "chunk_index": p.chunk_index,
                        "attempts": p.chunk_attempts,
                        "released": p.chunk_released,
                        "from_checkpoint": p.from_checkpoint,
                    },
                )
            attempts = getattr(report, "attempts", None) or ()
            checked = sum(a.test.records_checked for a in attempts)
            escalations = sum(1 for a in attempts if a.test.escalated)
            test_attrs = {
                "path": path,
                "test_attempts": len(attempts),
                "records_checked": checked,
                "escalations": escalations,
            }
            if num_seeds and attempts:
                available = len(attempts) * num_seeds
                test_attrs["scan_fraction"] = checked / available
                obs.privacy_records_available_total.inc(available)
            obs.tracer.record_span(
                request.request_id,
                "privacy_test",
                start=fold_end,
                end=fold_end,
                parent_id=engine_span.span_id,
                attrs=test_attrs,
            )

    def _execute_fold(
        self, model_id: str, requests: list[GenerateRequest]
    ) -> list[SynthesisReport]:
        """Scheduler fold executor: a batch of same-model requests → reports.

        Batches larger than the engine's lane bound are windowed; each
        window is one fused job on a pooled engine.
        """
        with self._lock:
            if self._closed:
                raise ServiceError(503, "shutting_down", "the service is closing")
        reports: list[SynthesisReport] = []
        for start in range(0, len(requests), MAX_FOLD_LANES):
            window = requests[start : start + MAX_FOLD_LANES]
            reports.extend(self._fold_window(model_id, window))
        return reports

    def generate(
        self,
        session_id: str,
        rows: int,
        seed: int | None = None,
        max_attempts: int | None = None,
        idempotency_key: str | None = None,
    ) -> ReleaseRecord:
        """Budget-checked synthesis: reserve, dispatch, commit, never partial.

        The worst-case cost of ``rows`` rows is reserved before dispatch; a
        request that cannot fit is refused with the budget remainder
        (:class:`~repro.service.session.BudgetExceededError` →  HTTP 409).
        After generation only the rows that actually passed the privacy test
        are charged; a failed dispatch cancels the hold entirely.

        A repeated ``idempotency_key`` (scoped per session) replays the
        recorded release — same release id, same rows, zero additional
        budget spend — so a client that lost the connection mid-response can
        retry safely.  Admission refusal maps to 503 (+ ``Retry-After``) and
        a missed dispatch deadline to 504; both refund the reservation.
        """
        if rows < 1:
            raise ServiceError(400, "bad_rows", "rows must be a positive integer")
        session = self._session(session_id)
        obs = self._obs
        t_model = obs.clock.monotonic() if obs is not None else 0.0
        model = self.model(session.model_id)
        if obs is not None:
            obs.add_phase("fit_cache", obs.clock.monotonic() - t_model)
        if idempotency_key is not None:
            with self._lock:
                meta = self._idempotency.get((session_id, idempotency_key))
            if meta is not None:
                return self._replay_release(meta)
        sequence = session.next_sequence()
        request_id = f"{session_id}-r{sequence:05d}"
        base_seed = (
            int(seed)
            if seed is not None
            else derive_request_seed(model.model_id, session_id, sequence)
        )
        if obs is None:
            return self._dispatch_generate(
                session, model, request_id, rows, base_seed,
                max_attempts, idempotency_key, root=None,
            )
        root = obs.tracer.start_span(
            request_id,
            "request",
            attrs={
                "session": session_id,
                "tenant": session.tenant,
                "model": model.model_id,
                "rows": rows,
            },
        )
        try:
            return self._dispatch_generate(
                session, model, request_id, rows, base_seed,
                max_attempts, idempotency_key, root=root,
            )
        finally:
            root.end()

    def _dispatch_generate(
        self,
        session: TenantSession,
        model: PublishedModel,
        request_id: str,
        rows: int,
        base_seed: int,
        max_attempts: int | None,
        idempotency_key: str | None,
        root,
    ) -> ReleaseRecord:
        """Reserve → scheduler dispatch → commit for one admitted request.

        ``root`` is the request's root trace span (or None with telemetry
        off); reserve and commit get child spans, and the scheduler / fold
        path hang their spans off ``trace_parent``.
        """
        obs = self._obs
        session_id = session.session_id
        t_reserve = obs.clock.monotonic() if obs is not None else 0.0
        try:
            reservation = session.reserve(request_id, rows)
        except BudgetExceededError as exc:
            raise ServiceError(
                409,
                "budget_exceeded",
                str(exc),
                remaining=_jsonable(exc.remaining),
            ) from exc
        if obs is not None:
            now = obs.clock.monotonic()
            obs.tracer.record_span(
                request_id, "reserve",
                start=t_reserve, end=now, parent_id=root.span_id,
                attrs={"rows": rows},
            )
            obs.add_phase("reserve", now - t_reserve)
        deadline = (
            time.monotonic() + self._deadline_ms / 1000.0
            if self._deadline_ms is not None
            else None
        )
        engine_key = self.engine_key(model.model_id, session.budget.accuracy)
        request = GenerateRequest(
            request_id=request_id,
            model_id=engine_key,
            num_rows=rows,
            base_seed=base_seed,
            max_attempts=max_attempts,
            deadline=deadline,
            trace_parent=root.span_id if root is not None else None,
        )
        try:
            report = self._scheduler.submit(request).result()
        except QueueFullError as exc:
            session.cancel(reservation, reason="queue_full")
            raise ServiceError(
                503, "queue_full", str(exc), retry_after=self.RETRY_AFTER_SECONDS
            ) from exc
        except DeadlineExceededError as exc:
            session.cancel(reservation, reason="deadline")
            raise ServiceError(504, "deadline_exceeded", str(exc)) from exc
        except SchedulerStoppedError as exc:
            session.cancel(reservation, reason="shutdown")
            raise ServiceError(503, "shutting_down", str(exc)) from exc
        except BaseException:
            session.cancel(reservation)
            raise
        t_commit = obs.clock.monotonic() if obs is not None else 0.0
        session.commit(reservation, report.num_released)
        if obs is not None:
            now = obs.clock.monotonic()
            obs.tracer.record_span(
                request_id, "commit",
                start=t_commit, end=now, parent_id=root.span_id,
                attrs={"released_rows": report.num_released},
            )
            obs.add_phase("commit", now - t_commit)
            obs.releases_total.inc()
            obs.released_rows_total.inc(report.num_released)
            root.set_attr("released_rows", report.num_released)
        with self._lock:
            self._release_counter += 1
            release_id = f"rel{self._release_counter:06d}"
            record = ReleaseRecord(
                release_id=release_id,
                request_id=request_id,
                session_id=session_id,
                model_id=model.model_id,
                base_seed=base_seed,
                requested_rows=rows,
                report=report,
                created_at=time.time(),
            )
            self._releases[release_id] = record
            while len(self._releases) > self._max_releases:
                self._releases.popitem(last=False)
            meta = {
                "event": "release",
                "release_id": release_id,
                "request_id": request_id,
                "session_id": session_id,
                "model_id": model.model_id,
                "engine_key": engine_key,
                "base_seed": base_seed,
                "requested_rows": rows,
                "released_rows": report.num_released,
                "max_attempts": max_attempts,
                "idempotency_key": idempotency_key,
                "timestamp": record.created_at,
            }
            if idempotency_key is not None:
                self._idempotency[(session_id, idempotency_key)] = meta
        self._sink(meta)
        return record

    def _replay_release(self, meta: dict) -> ReleaseRecord:
        """Serve a repeated idempotent request from its recorded release.

        If the record is still in the bounded release history it is returned
        directly.  After an expiry or a restart the rows are regenerated from
        the recorded ``base_seed`` — bit-identical by the engine's chunk-RNG
        determinism — with **no** budget interaction: the original commit
        already paid for exactly these rows.
        """
        release_id = meta["release_id"]
        with self._lock:
            record = self._releases.get(release_id)
        if record is not None:
            return record
        request = GenerateRequest(
            request_id=meta["request_id"],
            # Pre-approximate journals carry no engine_key; their releases
            # were generated on the plain (exact) engine.
            model_id=meta.get("engine_key") or meta["model_id"],
            num_rows=int(meta["requested_rows"]),
            base_seed=int(meta["base_seed"]),
            max_attempts=meta.get("max_attempts"),
        )
        report = self._scheduler.submit(request).result()
        record = ReleaseRecord(
            release_id=release_id,
            request_id=meta["request_id"],
            session_id=meta["session_id"],
            model_id=meta["model_id"],
            base_seed=int(meta["base_seed"]),
            requested_rows=int(meta["requested_rows"]),
            report=report,
            created_at=float(meta["timestamp"]),
        )
        with self._lock:
            self._releases[release_id] = record
            self._releases.move_to_end(release_id)
            while len(self._releases) > self._max_releases:
                self._releases.popitem(last=False)
        return record

    def release(self, release_id: str) -> ReleaseRecord:
        with self._lock:
            record = self._releases.get(release_id)
        if record is None:
            raise ServiceError(
                404,
                "unknown_release",
                f"no release {release_id!r} (unknown, or expired from the "
                f"{self._max_releases}-release history)",
            )
        return record

    def healthz(self) -> dict:
        """Liveness plus scaling visibility: engine pool and fold metrics.

        ``engines`` mirrors :meth:`pool_health` (per-model engines alive,
        busy counts, worker restarts); ``scheduler`` surfaces the fold factor
        and dispatcher activity so operators see scaling behavior without
        running the benchmark.
        """
        with self._lock:
            models = len(self._registry.pinned_keys())
            sessions = len(self._sessions)
        stats = self._scheduler.stats()
        return {
            "status": "ok",
            "models": models,
            "sessions": sessions,
            "engines": self._pool.health(),
            "scheduler": {
                "fold_factor": stats.fold_factor,
                "queue_depth": self._scheduler.queue_depth(),
                "dispatchers_active": stats.dispatchers_active,
                "utilization": stats.utilization,
                "completed": stats.completed,
                "failed": stats.failed,
                "folded_lanes": stats.folded_lanes,
                "dropped_before_fold": stats.dropped_before_fold,
            },
            "privacy_test": {
                "records_checked": stats.records_checked,
                "test_attempts": stats.test_attempts,
                "escalations": stats.escalations,
                "escalation_rate": stats.escalation_rate,
            },
            "telemetry": (
                {"enabled": True, "phases": self._obs.phase_summary()}
                if self._obs is not None
                else {"enabled": False}
            ),
        }

    def pool_health(self) -> dict:
        """The engine pool's per-model supervision counters (see /healthz)."""
        return self._pool.health()

    # ------------------------------------------------------------------ #
    # Telemetry endpoints
    # ------------------------------------------------------------------ #
    def _spend_hook(self, tenant: str, rows: int, epsilon: float, delta: float) -> None:
        """Session commit observer → per-tenant spend counters."""
        obs = self._obs
        if obs is None:
            return
        obs.tenant_rows_spent_total.inc(rows, tenant=tenant)
        obs.tenant_epsilon_spent_total.inc(epsilon, tenant=tenant)
        obs.tenant_delta_spent_total.inc(delta, tenant=tenant)

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the metrics registry.

        Point-in-time gauges (queue depth, utilization, scan fraction,
        escalation rate, fit-cache hit counters) are refreshed from their
        sources at scrape time; everything else is event-driven.
        """
        obs = self._obs
        if obs is None:
            raise ServiceError(
                404, "telemetry_disabled", "this server runs with telemetry off"
            )
        stats = self._scheduler.stats()
        obs.queue_depth.set(self._scheduler.queue_depth())
        obs.engine_utilization.set(stats.utilization)
        obs.privacy_escalation_rate.set(stats.escalation_rate)
        available = obs.privacy_records_available_total.value()
        obs.privacy_scan_fraction.set(
            stats.records_checked / available if available else 0.0
        )
        hits, misses = self._registry.cache_stats
        obs.fit_cache_hits.set(hits)
        obs.fit_cache_misses.set(misses)
        return obs.metrics.render()

    def trace(self, request_id: str) -> dict:
        """The span tree of one request (``GET /trace/<request_id>``)."""
        if self._obs is None:
            raise ServiceError(
                404, "telemetry_disabled", "this server runs with telemetry off"
            )
        data = self._obs.tracer.trace(request_id)
        if data is None:
            raise ServiceError(
                404,
                "unknown_trace",
                f"no trace for request {request_id!r} (unknown, or evicted "
                "from the bounded trace history)",
            )
        return data

    # ------------------------------------------------------------------ #
    # Journal replay
    # ------------------------------------------------------------------ #
    def _load_journal(self) -> None:
        """Parse the journal: restore counters and idempotency immediately,
        stage per-session budget histories for :meth:`_replay_ready_sessions`.
        """
        events = read_journal(self._journal.path)
        unreplayed: dict[str, list[dict]] = {}
        session_max = 0
        release_max = 0
        for event in events:
            kind = event.get("event")
            session_id = event.get("session_id")
            if kind == "session_created" and session_id:
                unreplayed[session_id] = [event]
                session_max = max(session_max, _trailing_int(session_id))
            elif kind in ("reserve", "commit", "cancel") and session_id in unreplayed:
                unreplayed[session_id].append(event)
            elif kind == "release":
                release_max = max(release_max, _trailing_int(event.get("release_id", "")))
                key = event.get("idempotency_key")
                if key is not None and session_id:
                    self._idempotency[(session_id, key)] = event
        with self._lock:
            self._unreplayed = unreplayed
            self._session_counter = max(self._session_counter, session_max)
            self._release_counter = max(self._release_counter, release_max)

    def _replay_ready_sessions(self) -> None:
        """Restore every staged session whose model is back in the registry.

        The session's reserve/commit/cancel history is re-driven through the
        real :class:`TenantSession` protocol (so spend lands on its
        accountant exactly as before the crash); reservations left active at
        the end — held by requests the dead process never settled — are then
        refunded, which *is* journaled and audited as a fresh ``cancel``
        event with reason ``refund_on_replay``.
        """
        if self._journal is None:
            return
        with self._lock:
            staged = dict(self._unreplayed)
        for session_id, events in staged.items():
            created = events[0]
            try:
                published = self._registry.get(created["model_id"])
            except KeyError:
                continue  # model not republished yet; retried after publish
            session = self._replay_session(published, created, events[1:])
            with self._lock:
                self._sessions[session_id] = session
                self._unreplayed.pop(session_id, None)
            for reservation in session.outstanding_reservations():
                session.cancel(reservation, reason="refund_on_replay")

    def _replay_session(
        self,
        published: PublishedModel,
        created: dict,
        events: list[dict],
    ) -> TenantSession:
        budget_fields = created.get("budget") or {}
        session = TenantSession(
            session_id=created["session_id"],
            tenant=created.get("tenant", "default"),
            model_id=published.model_id,
            budget=SessionBudget(**budget_fields),
            per_row_cost=published.per_row_cost(),
            model_k=published.params.k,
            audit_sink=self._sink,
            spend_hook=self._spend_hook if self._obs is not None else None,
        )
        self._replaying = True
        try:
            reservations: dict[str, Reservation] = {}
            max_sequence = 0
            for event in events:
                request_id = event.get("request_id", "")
                max_sequence = max(max_sequence, _trailing_int(request_id))
                kind = event["event"]
                if kind == "reserve":
                    reservations[request_id] = session.reserve(
                        request_id, int(event["rows"])
                    )
                elif kind == "commit":
                    reservation = reservations.pop(request_id, None)
                    if reservation is not None:
                        session.commit(reservation, int(event["released_rows"]))
                elif kind == "cancel":
                    reservation = reservations.pop(request_id, None)
                    if reservation is not None:
                        session.cancel(
                            reservation, reason=event.get("reason", "replayed")
                        )
            session.advance_sequence(max_sequence)
        finally:
            self._replaying = False
        return session


# --------------------------------------------------------------------------- #
# HTTP front end
# --------------------------------------------------------------------------- #
class _ServiceHandler(BaseHTTPRequestHandler):
    """Thin JSON shim over :class:`ServiceApp` (stored on the server)."""

    server_version = "repro-serve/1"

    @property
    def app(self) -> ServiceApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "quiet", True):
            return
        super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _send_json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(_jsonable(payload)).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise ServiceError(413, "body_too_large", "request body too large")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise ServiceError(400, "bad_json", f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError(400, "bad_json", "the request body must be a JSON object")
        return payload

    def _handle(self, method: str) -> None:
        parsed = urlparse(self.path)
        query = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        try:
            self._route(method, parsed.path.rstrip("/") or "/", query)
        except ServiceError as exc:
            self._send_json(exc.status, exc.to_json(), headers=exc.headers())
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}", "code": "internal"}
            )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST")

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def _route(self, method: str, path: str, query: dict) -> None:
        if method == "GET" and path == "/healthz":
            self._send_json(200, self.app.healthz())
        elif method == "GET" and path == "/metrics":
            self._send_text(
                200,
                self.app.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif method == "GET" and path.startswith("/trace/"):
            self._send_json(200, self.app.trace(path.removeprefix("/trace/")))
        elif method == "GET" and path == "/models":
            self._send_json(200, {"models": self.app.list_models()})
        elif method == "GET" and path.startswith("/models/"):
            model = self.app.model(path.removeprefix("/models/"))
            self._send_json(200, model.describe())
        elif method == "POST" and path == "/sessions":
            body = self._read_json()
            model = body.get("model")
            if not model:
                raise ServiceError(400, "bad_session", "a 'model' id or name is required")
            info = self.app.create_session(
                model=model,
                tenant=str(body.get("tenant", "default")),
                budget=body.get("budget"),
            )
            self._send_json(201, info)
        elif method == "GET" and (path == "/budget" or path.endswith("/budget")):
            if path == "/budget":
                session_id = query.get("session", "")
            else:  # /sessions/<id>/budget
                session_id = path.removeprefix("/sessions/").removesuffix("/budget")
            if not session_id:
                raise ServiceError(400, "bad_budget", "pass ?session=<session_id>")
            include_ledger = query.get("ledger", "") in ("1", "true", "yes")
            self._send_json(200, self.app.budget(session_id, include_ledger))
        elif method == "POST" and path == "/generate":
            self._generate()
        elif method == "GET" and path.startswith("/releases/"):
            record = self.app.release(path.removeprefix("/releases/"))
            offset = _as_int(query.get("offset"), "offset", 0)
            limit = _as_int(query.get("limit"), "limit", _DEFAULT_PAGE_LIMIT)
            page = record.page(offset, limit)
            page.update(record.describe())
            self._send_json(200, page)
        else:
            raise ServiceError(404, "not_found", f"no route {method} {path}")

    def _generate(self) -> None:
        body = self._read_json()
        session_id = body.get("session")
        if not session_id:
            raise ServiceError(400, "bad_generate", "a 'session' id is required")
        idempotency_key = self.headers.get("Idempotency-Key") or body.get(
            "idempotency_key"
        )
        record = self.app.generate(
            session_id,
            _as_int(body.get("rows"), "rows", 0),
            seed=_as_int(body.get("seed"), "seed"),
            max_attempts=_as_int(body.get("max_attempts"), "max_attempts"),
            idempotency_key=str(idempotency_key) if idempotency_key else None,
        )
        obs = self.app.telemetry
        t_serialize = obs.clock.monotonic() if obs is not None else 0.0
        if body.get("stream"):
            # NDJSON stream: one header line, then one line per released row.
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.end_headers()
            header = record.describe()
            header["columns"] = record.report.schema.names
            self.wfile.write((json.dumps(_jsonable(header)) + "\n").encode())
            for row in record.decoded_rows():
                self.wfile.write((json.dumps(_jsonable(row)) + "\n").encode())
            self._serialize_span(obs, record, t_serialize, streamed=True)
            return
        limit = _as_int(body.get("limit"), "limit", _DEFAULT_PAGE_LIMIT)
        page = record.page(0, limit)
        page.update(record.describe())
        page["columns"] = record.report.schema.names
        page["budget"] = self.app.budget(record.session_id)["remaining"]
        self._send_json(200, page)
        self._serialize_span(obs, record, t_serialize, streamed=False)

    def _serialize_span(self, obs, record, start: float, streamed: bool) -> None:
        if obs is None:
            return
        now = obs.clock.monotonic()
        obs.tracer.record_span(
            record.request_id,
            "serialize",
            start=start,
            end=now,
            attrs={"streamed": streamed, "released_rows": record.num_released},
        )
        obs.add_phase("serialize", now - start)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying the :class:`ServiceApp` instance."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, app: ServiceApp, quiet: bool = True):
        super().__init__(address, _ServiceHandler)
        self.app = app
        self.quiet = quiet


def build_server(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
) -> ServiceHTTPServer:
    """Bind the JSON API to ``host:port`` (port 0 = ephemeral) without serving.

    Call ``serve_forever()`` on the result (or run it in a thread); the bound
    port is ``server.server_address[1]``.
    """
    return ServiceHTTPServer((host, port), app, quiet=quiet)
