"""Bounded per-model pool of supervised synthesis engines.

Before PR 8 the service held exactly one lazily built
:class:`~repro.core.engine.SynthesisEngine` per model, forever: a broken
engine stayed broken, idle models pinned their worker processes, and a hot
model could never run two folds at once.  :class:`EnginePool` replaces that
dictionary with an owned pool:

* **Bounded spin-up.**  At most ``engines_per_model`` engines exist per model
  and — when ``worker_budget`` is set — at most that many worker processes
  are reserved across *all* models.  Engines are built lazily on first
  checkout (and the engine itself spawns its workers lazily on first run),
  so publishing N models costs nothing until they serve traffic.

* **Health-aware checkout.**  :meth:`checkout` hands out an idle healthy
  engine, builds a new one when allowed, or blocks until a lease returns.
  An engine whose supervision gave up (PR 7's sticky
  :class:`~repro.core.engine.EngineBrokenError`) is evicted — closed, its
  worker budget freed — and a replacement is built on demand, so one
  unrecoverable pool never bricks a model.

* **LRU idle reaping.**  When the worker budget blocks a build for one model,
  the least-recently-used *idle* engines of other (or the same) model are
  closed to free budget — cold models give their workers back to hot ones.

The pool never runs jobs itself; callers check out an engine, run on it, and
return the lease via :meth:`release` (healthy) or :meth:`discard` (broken).
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import SynthesisEngine

__all__ = ["EngineLease", "EnginePool", "WorkerBudgetError"]

_logger = logging.getLogger("repro.service.engine_pool")


class WorkerBudgetError(RuntimeError):
    """The worker budget cannot fit even one engine — a configuration error.

    Raised at checkout rather than silently deadlocking: with
    ``worker_budget < workers_per_engine`` no engine could ever be built.
    """


@dataclass
class _PooledEngine:
    """One pool slot: the engine plus its checkout bookkeeping."""

    model_id: str
    engine: SynthesisEngine
    busy: bool = False
    last_used: float = field(default_factory=time.monotonic)


class EngineLease:
    """An exclusively checked-out engine.

    ``lease.engine`` is yours alone until the lease goes back through
    :meth:`EnginePool.release` (healthy) or :meth:`EnginePool.discard`
    (broken or otherwise unwanted: the engine is closed and its worker
    budget freed).
    """

    __slots__ = ("model_id", "engine", "_entry")

    def __init__(self, entry: _PooledEngine):
        self.model_id = entry.model_id
        self.engine = entry.engine
        self._entry = entry


class EnginePool:
    """Builds, leases, reaps and retires per-model synthesis engines.

    Parameters
    ----------
    builder:
        ``builder(model_id) -> SynthesisEngine`` constructs a fresh engine
        for a model; called outside the pool lock (building may fit shared
        memory segments).
    engines_per_model:
        Upper bound on concurrently existing engines per model.
    workers_per_engine:
        How many worker processes one engine reserves against the budget
        (the service passes its ``num_workers``).
    worker_budget:
        Global bound on reserved workers across all models (``None`` = no
        bound).  Builds that would exceed it first reap idle engines
        least-recently-used-first, then block until a lease returns.
    """

    def __init__(
        self,
        builder: Callable[[str], SynthesisEngine],
        *,
        engines_per_model: int = 1,
        workers_per_engine: int = 1,
        worker_budget: int | None = None,
        telemetry=None,
    ):
        if engines_per_model < 1:
            raise ValueError("engines_per_model must be positive")
        if workers_per_engine < 1:
            raise ValueError("workers_per_engine must be positive")
        if worker_budget is not None and worker_budget < 1:
            raise ValueError("worker_budget must be positive when provided")
        self._builder = builder
        self._engines_per_model = engines_per_model
        self._workers_per_engine = workers_per_engine
        self._worker_budget = worker_budget
        # Optional repro.obs.Telemetry; checkout waits land in a histogram
        # so engine contention is visible on /metrics.
        self._obs = telemetry
        self._lock = threading.Lock()
        self._leases_changed = threading.Condition(self._lock)
        self._entries: dict[str, list[_PooledEngine]] = {}  # repro: guarded-by[_lock]
        self._building: dict[str, int] = {}  # repro: guarded-by[_lock]
        self._workers_reserved = 0  # repro: guarded-by[_lock]
        self._closed = False  # repro: guarded-by[_lock]
        self._builds = 0  # repro: guarded-by[_lock]
        self._evictions = 0  # repro: guarded-by[_lock]
        self._reaped = 0  # repro: guarded-by[_lock]

    # ------------------------------------------------------------------ #
    # Checkout / return
    # ------------------------------------------------------------------ #
    def checkout(self, model_id: str, timeout: float | None = None) -> EngineLease:
        """Lease an engine for ``model_id``, building or waiting as needed.

        Broken idle engines found on the shelf are evicted on the spot.
        Raises :class:`TimeoutError` if ``timeout`` elapses while every
        allowed engine is leased out, and :class:`WorkerBudgetError` if the
        budget can never fit one engine.
        """
        requested_at = time.monotonic()
        deadline = None if timeout is None else requested_at + timeout
        while True:
            doomed: list[SynthesisEngine] = []
            build = False
            with self._leases_changed:
                if self._closed:
                    raise RuntimeError("the engine pool has been closed")
                entry = self._claim_idle_locked(model_id, doomed)
                if entry is None and self._may_build_locked(model_id, doomed):
                    self._building[model_id] = self._building.get(model_id, 0) + 1
                    self._workers_reserved += self._workers_per_engine
                    build = True
                elif entry is None and not doomed:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"no engine for model {model_id!r} became available "
                            f"within {timeout:.1f}s"
                        )
                    self._leases_changed.wait(timeout=remaining)
                    continue
            for engine in doomed:
                engine.close()
            if not build:
                if doomed:
                    continue  # evicted a broken engine; try the shelf again
                self._observe_checkout_wait(requested_at)
                return EngineLease(entry)
            self._observe_checkout_wait(requested_at)
            return self._build_lease(model_id)

    def _observe_checkout_wait(self, requested_at: float) -> None:
        if self._obs is not None:
            self._obs.engine_checkout_wait_seconds.observe(
                max(0.0, time.monotonic() - requested_at)
            )

    def release(self, lease: EngineLease) -> None:
        """Return a healthy lease; a broken engine is evicted instead.

        Returning a lease to an already closed pool closes the engine rather
        than reshelving it — the shutdown path only closes shelved engines,
        so the last holder cleans up its own.
        """
        if lease.engine.pool_health()["broken"]:
            self.discard(lease)
            return
        close_engine = False
        with self._leases_changed:
            if self._closed:
                entries = self._entries.get(lease.model_id, [])
                if lease._entry in entries:
                    entries.remove(lease._entry)
                self._workers_reserved -= self._workers_per_engine
                close_engine = True
            else:
                lease._entry.busy = False
                lease._entry.last_used = time.monotonic()
            self._leases_changed.notify_all()
        if close_engine:
            lease.engine.close()

    def discard(self, lease: EngineLease) -> None:
        """Evict a leased engine: close it and free its worker budget."""
        with self._leases_changed:
            entries = self._entries.get(lease.model_id, [])
            if lease._entry in entries:
                entries.remove(lease._entry)
            self._workers_reserved -= self._workers_per_engine
            self._evictions += 1
            self._leases_changed.notify_all()
        _logger.warning(
            "evicted a broken engine for model %s (will rebuild on demand)",
            lease.model_id,
        )
        lease.engine.close()

    # ------------------------------------------------------------------ #
    # Internals (all called with the pool lock held)
    # ------------------------------------------------------------------ #
    def _claim_idle_locked(self, model_id, doomed):  # repro: requires-lock[_lock]
        """The most recently used healthy idle engine, marking it busy.

        Broken idle engines encountered on the way are unshelved into
        ``doomed`` (closed by the caller outside the lock).
        """
        entries = self._entries.get(model_id, [])
        for entry in sorted(
            (e for e in entries if not e.busy),
            key=lambda e: e.last_used,
            reverse=True,
        ):
            if entry.engine.pool_health()["broken"]:
                entries.remove(entry)
                self._workers_reserved -= self._workers_per_engine
                self._evictions += 1
                doomed.append(entry.engine)
                continue
            entry.busy = True
            return entry
        return None

    def _may_build_locked(self, model_id, doomed):  # repro: requires-lock[_lock]
        """Whether a new engine for ``model_id`` may be built right now.

        Reaps least-recently-used idle engines into ``doomed`` when the
        worker budget is the only obstacle.
        """
        existing = len(self._entries.get(model_id, [])) + self._building.get(
            model_id, 0
        )
        if existing >= self._engines_per_model:
            return False
        if self._worker_budget is None:
            return True
        if self._worker_budget < self._workers_per_engine:
            raise WorkerBudgetError(
                f"worker_budget={self._worker_budget} cannot fit one engine of "
                f"{self._workers_per_engine} worker(s)"
            )
        while (
            self._workers_reserved + self._workers_per_engine > self._worker_budget
        ):
            victim = self._lru_idle_locked()
            if victim is None:
                return False  # everything is busy; the caller waits for a lease
            self._entries[victim.model_id].remove(victim)
            self._workers_reserved -= self._workers_per_engine
            self._reaped += 1
            doomed.append(victim.engine)
            _logger.info(
                "reaped idle engine of model %s to free worker budget",
                victim.model_id,
            )
        return True

    def _lru_idle_locked(self):  # repro: requires-lock[_lock]
        """The least recently used idle engine across all models, if any."""
        idle = [
            entry
            for entries in self._entries.values()
            for entry in entries
            if not entry.busy
        ]
        return min(idle, key=lambda entry: entry.last_used, default=None)

    def _build_lease(self, model_id: str) -> EngineLease:
        """Build an engine outside the lock against a budget reservation."""
        try:
            engine = self._builder(model_id)
        except BaseException:
            with self._leases_changed:
                self._building[model_id] -= 1
                self._workers_reserved -= self._workers_per_engine
                self._leases_changed.notify_all()
            raise
        entry = _PooledEngine(model_id=model_id, engine=engine, busy=True)
        with self._leases_changed:
            self._building[model_id] -= 1
            self._builds += 1
            closed = self._closed
            if closed:
                self._workers_reserved -= self._workers_per_engine
            else:
                self._entries.setdefault(model_id, []).append(entry)
            self._leases_changed.notify_all()
        if closed:
            engine.close()
            raise RuntimeError("the engine pool has been closed")
        return EngineLease(entry)

    # ------------------------------------------------------------------ #
    # Health / lifecycle
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """Per-model engine supervision counters plus pool-global totals.

        Each model reports its engine count, how many are leased out, the sum
        of live worker processes, supervised restarts and wedged-pool
        rebuilds across its engines, and how many are
        broken-but-not-yet-evicted.  Pool-global counters
        cover builds, evictions, budget reaping and the worker budget.
        """
        with self._lock:
            models = {}
            for model_id, entries in self._entries.items():
                healths = [entry.engine.pool_health() for entry in entries]
                models[model_id] = {
                    "engines": len(entries),
                    "busy": sum(1 for entry in entries if entry.busy),
                    "workers_alive": sum(h["workers_alive"] for h in healths),
                    "worker_restarts": sum(h["worker_restarts"] for h in healths),
                    "pool_rebuilds": sum(h["pool_rebuilds"] for h in healths),
                    "broken": sum(1 for h in healths if h["broken"]),
                }
            return {
                "models": models,
                "builds": self._builds,
                "evictions": self._evictions,
                "reaped": self._reaped,
                "workers_reserved": self._workers_reserved,
                "worker_budget": self._worker_budget,
                "engines_per_model": self._engines_per_model,
                "workers_per_engine": self._workers_per_engine,
            }

    def close(self) -> None:
        """Close every engine; waiting checkouts fail, leases stay valid.

        An engine still leased out is closed by its holder's
        :meth:`release`/:meth:`discard` path finding the pool closed — the
        pool only closes what is on the shelf.
        """
        with self._leases_changed:
            if self._closed:
                return
            self._closed = True
            doomed = [
                entry.engine
                for entries in self._entries.values()
                for entry in entries
                if not entry.busy
            ]
            for entries in self._entries.values():
                entries[:] = [entry for entry in entries if entry.busy]
            self._leases_changed.notify_all()
        for engine in doomed:
            engine.close()

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
