"""Entropy and correlation measures used by structure learning (Section 3.3).

The structure-learning algorithm of the paper scores candidate parent sets with
the Correlation-based Feature Selection merit (Eq. 4) whose correlation measure
is the *symmetrical uncertainty coefficient* (Eq. 5):

    corr(x, y) = 2 - 2 * H(x, y) / (H(x) + H(y))

All entropies here are in bits (base 2), matching the paper.  The module also
exposes the entropy-sensitivity bound of Lemma 1 / Eq. 9, which is what the
differentially-private structure learner uses to calibrate its Laplace noise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.stats.contingency import joint_counts, marginal_counts

__all__ = [
    "entropy",
    "entropy_from_counts",
    "entropy_from_distribution",
    "joint_entropy",
    "conditional_entropy",
    "mutual_information",
    "symmetrical_uncertainty",
    "symmetrical_uncertainty_from_entropies",
    "entropy_sensitivity_bound",
]


def entropy_from_distribution(distribution: np.ndarray) -> float:
    """Shannon entropy (bits) of a probability distribution.

    Zero-probability cells contribute nothing.  The distribution may be any
    shape; it is flattened.
    """
    probs = np.asarray(distribution, dtype=np.float64).ravel()
    if probs.size == 0:
        return 0.0
    if np.any(probs < -1e-12):
        raise ValueError("probabilities must be non-negative")
    total = probs.sum()
    if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    positive = probs[probs > 0]
    return float(-np.sum(positive * np.log2(positive)))


def entropy_from_counts(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of the empirical distribution given by counts."""
    arr = np.asarray(counts, dtype=np.float64).ravel()
    total = arr.sum()
    if total <= 0:
        return 0.0
    return entropy_from_distribution(arr / total)


def entropy(values: np.ndarray, cardinality: int | None = None) -> float:
    """Empirical Shannon entropy (bits) of an encoded attribute column."""
    return entropy_from_counts(marginal_counts(values, cardinality))


def joint_entropy(
    first: np.ndarray,
    second: np.ndarray,
    first_cardinality: int | None = None,
    second_cardinality: int | None = None,
) -> float:
    """Empirical joint Shannon entropy H(x, y) in bits."""
    return entropy_from_counts(
        joint_counts(first, second, first_cardinality, second_cardinality)
    )


def conditional_entropy(
    target: np.ndarray,
    given: np.ndarray,
    target_cardinality: int | None = None,
    given_cardinality: int | None = None,
) -> float:
    """Empirical conditional entropy H(target | given) = H(target, given) - H(given)."""
    joint = joint_entropy(target, given, target_cardinality, given_cardinality)
    return max(0.0, joint - entropy(given, given_cardinality))


def mutual_information(
    first: np.ndarray,
    second: np.ndarray,
    first_cardinality: int | None = None,
    second_cardinality: int | None = None,
) -> float:
    """Empirical mutual information I(x; y) = H(x) + H(y) - H(x, y) in bits."""
    h_first = entropy(first, first_cardinality)
    h_second = entropy(second, second_cardinality)
    h_joint = joint_entropy(first, second, first_cardinality, second_cardinality)
    return max(0.0, h_first + h_second - h_joint)


def symmetrical_uncertainty_from_entropies(
    h_first: float, h_second: float, h_joint: float
) -> float:
    """Symmetrical uncertainty (Eq. 5) from pre-computed entropy values.

    The paper's differentially-private structure learner computes noisy entropy
    values first and then plugs them into this formula, clamping the result to
    the valid [0, 1] range.
    """
    denominator = h_first + h_second
    if denominator <= 0:
        return 0.0
    value = 2.0 - 2.0 * h_joint / denominator
    return float(min(1.0, max(0.0, value)))


def symmetrical_uncertainty(
    first: np.ndarray,
    second: np.ndarray,
    first_cardinality: int | None = None,
    second_cardinality: int | None = None,
) -> float:
    """Symmetrical uncertainty coefficient between two encoded attributes."""
    h_first = entropy(first, first_cardinality)
    h_second = entropy(second, second_cardinality)
    h_joint = joint_entropy(first, second, first_cardinality, second_cardinality)
    return symmetrical_uncertainty_from_entropies(h_first, h_second, h_joint)


def entropy_sensitivity_bound(num_records: int) -> float:
    """Upper bound on the L1 sensitivity of the empirical entropy (Lemma 1).

    For a distribution estimated from ``n`` records,

        ∆H <= (2 + 1/ln 2 + 2 log2 n) / n .

    This is the scale used by the DP structure learner (Eq. 8-9).
    """
    if num_records < 1:
        raise ValueError("num_records must be a positive integer")
    n = float(num_records)
    return (2.0 + 1.0 / math.log(2.0) + 2.0 * math.log2(n)) / n
