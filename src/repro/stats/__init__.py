"""Statistical substrate: entropy, correlation and distribution-distance measures.

This package contains the information-theoretic primitives used by the
structure-learning algorithm (Section 3.3 of the paper) and the
distribution-comparison metrics used throughout the evaluation (Section 6.2).

Everything operates on discrete (integer-encoded) data, which matches the
pre-processed ACS dataset used in the paper where all attributes are either
categorical or bucketized numerical values.
"""

from repro.stats.contingency import (
    joint_counts,
    marginal_counts,
    pairwise_joint_distribution,
)
from repro.stats.distance import (
    jensen_shannon_divergence,
    pairwise_attribute_distances,
    single_attribute_distances,
    total_variation_distance,
)
from repro.stats.entropy import (
    conditional_entropy,
    entropy,
    entropy_from_counts,
    entropy_sensitivity_bound,
    joint_entropy,
    mutual_information,
    symmetrical_uncertainty,
)
from repro.stats.pairwise import (
    CrossPairwiseStats,
    PairwiseStats,
    block_entropy,
    pairwise_entropies,
    scipy_available,
)

__all__ = [
    "conditional_entropy",
    "entropy",
    "entropy_from_counts",
    "entropy_sensitivity_bound",
    "joint_entropy",
    "mutual_information",
    "symmetrical_uncertainty",
    "total_variation_distance",
    "jensen_shannon_divergence",
    "single_attribute_distances",
    "pairwise_attribute_distances",
    "joint_counts",
    "marginal_counts",
    "pairwise_joint_distribution",
    "CrossPairwiseStats",
    "PairwiseStats",
    "block_entropy",
    "pairwise_entropies",
    "scipy_available",
]
