"""One-pass pairwise contingency statistics for discrete data.

The CFS structure learner (Section 3.3) needs the joint distribution of every
attribute pair.  Computing each pair's contingency table independently costs
~m² full passes over the dataset; this module shares a single scan instead:
the dataset is encoded once into a one-hot indicator matrix X (one column per
(attribute, value) combination) and the Gram product X.T @ X then contains
*every* pairwise contingency table at once — block (i, j) of the Gram matrix
is exactly the (cardinality_i x cardinality_j) joint count table of attributes
i and j, and the diagonal of block (i, i) holds attribute i's marginal counts.

Three interchangeable backends compute the product, all returning bit-identical
integer counts:

* ``"dense"`` — chunked float32 one-hot blocks multiplied with BLAS and
  accumulated into a float64 Gram (exact: every partial count stays far below
  2^24, every total below 2^53).  Fastest for the moderate total domain sizes
  typical of the paper's datasets; needs only numpy.
* ``"sparse"`` — a scipy CSR indicator (m non-zeros per row) and one
  sparse-sparse matmul.  Its cost is independent of the domain sizes, so it
  wins when the summed cardinalities grow large.
* ``"bincount"`` — per attribute j, the combined codes
  ``(offset_k + value_k) * card_j + value_j`` of all columns k are counted in
  one raveled chunked ``np.bincount``, filling attribute j's Gram column
  block.  The no-scipy fallback for large domains.

``method=None`` auto-selects: dense for small Gram shapes, then sparse when
scipy is available, bincount otherwise.

:class:`CrossPairwiseStats` generalizes the product to two different column
sets (Gram A.T @ B), which lets the structure learner compute only the
raw x bucketized and bucketized x bucketized quadrants it actually needs.

All marginal and joint entropies can then be derived from the Gram matrix with
vectorized numpy (probability-weighted log2 summed per block via
``np.add.reduceat``) — the raw records are never rescanned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - exercised via the method toggle in tests
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover
    _sparse = None

__all__ = [
    "PairwiseStats",
    "CrossPairwiseStats",
    "block_entropy",
    "pairwise_entropies",
    "scipy_available",
]

_METHODS = ("dense", "sparse", "bincount")

# Auto-select the dense BLAS backend while the Gram matrix stays below this
# many cells; beyond it the n x (total_a x total_b) multiply outgrows the
# domain-size-independent sparse/bincount sweeps.
_DENSE_CELL_LIMIT = 1 << 18

# Row-chunk cap for the float32 dense backend: per-chunk partial counts must
# stay exactly representable in float32 (< 2^24).
_DENSE_CHUNK_CAP = 1 << 20


def scipy_available() -> bool:
    """Whether the sparse (scipy) Gram backend can be used."""
    return _sparse is not None


def _validate_matrix(matrix: np.ndarray, cardinalities: tuple[int, ...]) -> np.ndarray:
    data = np.asarray(matrix)
    if data.ndim != 2:
        raise ValueError(f"matrix must be 2-D (rows x attributes), got shape {data.shape}")
    if data.shape[1] != len(cardinalities):
        raise ValueError(
            f"matrix has {data.shape[1]} columns but {len(cardinalities)} "
            "cardinalities were given"
        )
    if any(card < 1 for card in cardinalities):
        raise ValueError("every cardinality must be at least 1")
    data = data.astype(np.int64, copy=False)
    if data.size:
        mins = data.min(axis=0)
        maxs = data.max(axis=0)
        for col, card in enumerate(cardinalities):
            if mins[col] < 0 or maxs[col] >= card:
                raise ValueError(
                    f"column {col} contains codes outside [0, {card})"
                )
    return data


def _offsets(cardinalities: tuple[int, ...]) -> np.ndarray:
    return np.concatenate([[0], np.cumsum(cardinalities)]).astype(np.int64)


def _resolve_method(method: str | None, total_a: int, total_b: int) -> str:
    if method is not None:
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS} or None, got {method!r}")
        if method == "sparse" and _sparse is None:
            raise RuntimeError("scipy is not available; use the dense or bincount method")
        return method
    if total_a * total_b <= _DENSE_CELL_LIMIT:
        return "dense"
    return "sparse" if _sparse is not None else "bincount"


def _csr_indicator(shifted: np.ndarray, total: int):
    num_records, num_attributes = shifted.shape
    indptr = np.arange(0, num_records * num_attributes + 1, num_attributes)
    data = np.ones(num_records * num_attributes, dtype=np.int64)
    return _sparse.csr_matrix((data, shifted.ravel(), indptr), shape=(num_records, total))


def _cross_gram_sparse(
    data_a: np.ndarray, offsets_a: np.ndarray, data_b: np.ndarray, offsets_b: np.ndarray
) -> np.ndarray:
    """A.T @ B via scipy CSR one-hot indicators."""
    total_a = int(offsets_a[-1])
    total_b = int(offsets_b[-1])
    left = _csr_indicator(data_a + offsets_a[:-1][None, :], total_a)
    right = (
        left
        if data_b is data_a and np.array_equal(offsets_a, offsets_b)
        else _csr_indicator(data_b + offsets_b[:-1][None, :], total_b)
    )
    return np.asarray((left.T @ right).todense(), dtype=np.int64)


def _cross_gram_dense(
    data_a: np.ndarray,
    offsets_a: np.ndarray,
    data_b: np.ndarray,
    offsets_b: np.ndarray,
    chunk_size: int,
) -> np.ndarray:
    """A.T @ B accumulated from chunked float32 one-hot BLAS products.

    Exact despite the float32 one-hot blocks: per-chunk partial counts stay
    below 2^24 (the chunk size is capped) and the float64 accumulator is
    exact below 2^53.
    """
    num_records = data_a.shape[0]
    total_a = int(offsets_a[-1])
    total_b = int(offsets_b[-1])
    chunk = min(chunk_size, _DENSE_CHUNK_CAP)
    gram = np.zeros((total_a, total_b), dtype=np.float64)
    for start in range(0, num_records, chunk):
        stop = min(start + chunk, num_records)
        rows = np.arange(stop - start)[:, None]
        left = np.zeros((stop - start, total_a), dtype=np.float32)
        left[rows, data_a[start:stop] + offsets_a[:-1]] = 1.0
        if data_b is data_a and np.array_equal(offsets_a, offsets_b):
            right = left
        else:
            right = np.zeros((stop - start, total_b), dtype=np.float32)
            right[rows, data_b[start:stop] + offsets_b[:-1]] = 1.0
        gram += left.T @ right
    return np.rint(gram).astype(np.int64)


def _cross_gram_bincount(
    data_a: np.ndarray,
    offsets_a: np.ndarray,
    data_b: np.ndarray,
    cardinalities_b: tuple[int, ...],
    chunk_size: int,
) -> np.ndarray:
    """A.T @ B accumulated from one chunked raveled bincount per B attribute."""
    num_records = data_a.shape[0]
    total_a = int(offsets_a[-1])
    total_b = int(sum(cardinalities_b))
    offsets_b = _offsets(cardinalities_b)
    gram = np.zeros((total_a, total_b), dtype=np.int64)
    for attribute, card in enumerate(cardinalities_b):
        card = int(card)
        block = np.zeros(total_a * card, dtype=np.int64)
        for start in range(0, num_records, chunk_size):
            stop = min(start + chunk_size, num_records)
            codes = (data_a[start:stop] + offsets_a[:-1]) * card + data_b[
                start:stop, attribute : attribute + 1
            ]
            block += np.bincount(codes.ravel(), minlength=total_a * card)
        gram[:, offsets_b[attribute] : offsets_b[attribute + 1]] = block.reshape(
            total_a, card
        )
    return gram


@dataclass
class CrossPairwiseStats:
    """Every (A attribute x B attribute) contingency table from one shared scan.

    ``gram[row_offsets[i]:row_offsets[i+1], col_offsets[j]:col_offsets[j+1]]``
    is the joint count table of A attribute i against B attribute j.
    """

    row_cardinalities: tuple[int, ...]
    col_cardinalities: tuple[int, ...]
    row_offsets: np.ndarray
    col_offsets: np.ndarray
    gram: np.ndarray
    num_records: int

    @classmethod
    def from_matrices(
        cls,
        matrix_a: np.ndarray,
        cardinalities_a: list[int] | tuple[int, ...],
        matrix_b: np.ndarray,
        cardinalities_b: list[int] | tuple[int, ...],
        method: str | None = None,
        chunk_size: int = 8192,
        validate: bool = True,
    ) -> "CrossPairwiseStats":
        """Compute the rectangular Gram product A.T @ B of two encodings.

        Both matrices must describe the same records (equal row counts).
        ``method`` picks the backend (``"dense"``, ``"sparse"``,
        ``"bincount"`` or ``None`` for auto-selection by Gram size).
        ``validate=False`` skips the per-column range scan for callers whose
        data is already invariant-checked (e.g. comes out of a
        :class:`~repro.datasets.dataset.Dataset`).
        """
        cards_a = tuple(int(card) for card in cardinalities_a)
        cards_b = tuple(int(card) for card in cardinalities_b)
        if validate:
            data_a = _validate_matrix(matrix_a, cards_a)
            data_b = (
                data_a
                if matrix_b is matrix_a and cards_b == cards_a
                else _validate_matrix(matrix_b, cards_b)
            )
        else:
            data_a = np.asarray(matrix_a).astype(np.int64, copy=False)
            data_b = (
                data_a
                if matrix_b is matrix_a and cards_b == cards_a
                else np.asarray(matrix_b).astype(np.int64, copy=False)
            )
        if data_a.shape[0] != data_b.shape[0]:
            raise ValueError("both matrices must describe the same records")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        total_a = int(sum(cards_a))
        total_b = int(sum(cards_b))
        offsets_a = _offsets(cards_a)
        offsets_b = _offsets(cards_b)

        resolved = _resolve_method(method, total_a, total_b)
        if resolved == "sparse":
            gram = _cross_gram_sparse(data_a, offsets_a, data_b, offsets_b)
        elif resolved == "dense":
            gram = _cross_gram_dense(data_a, offsets_a, data_b, offsets_b, chunk_size)
        else:
            gram = _cross_gram_bincount(data_a, offsets_a, data_b, cards_b, chunk_size)
        return cls(
            row_cardinalities=cards_a,
            col_cardinalities=cards_b,
            row_offsets=offsets_a,
            col_offsets=offsets_b,
            gram=gram,
            num_records=data_a.shape[0],
        )

    def table(self, i: int, j: int) -> np.ndarray:
        """The contingency table of A attribute i against B attribute j."""
        rows = slice(self.row_offsets[i], self.row_offsets[i + 1])
        cols = slice(self.col_offsets[j], self.col_offsets[j + 1])
        return self.gram[rows, cols]


@dataclass
class PairwiseStats:
    """All pairwise contingency tables of one encoding, from one shared scan.

    Parameters
    ----------
    cardinalities:
        Per-attribute domain sizes.
    offsets:
        Prefix sums of the cardinalities: attribute i owns Gram rows/columns
        ``offsets[i]:offsets[i + 1]``.
    gram:
        The (total x total) integer Gram matrix X.T @ X of the one-hot
        encoding; block (i, j) is the joint count table of attributes i, j.
    num_records:
        Number of encoded records the statistics were computed from.
    """

    cardinalities: tuple[int, ...]
    offsets: np.ndarray
    gram: np.ndarray
    num_records: int

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        cardinalities: list[int] | tuple[int, ...],
        method: str | None = None,
        chunk_size: int = 8192,
    ) -> "PairwiseStats":
        """Compute every pairwise contingency table in one pass.

        Parameters
        ----------
        matrix:
            Integer-encoded data, one row per record and one column per
            attribute, values in ``[0, cardinality)``.
        cardinalities:
            Domain size of each column.
        method:
            Gram backend: ``"dense"``, ``"sparse"``, ``"bincount"`` or
            ``None`` to auto-select.
        chunk_size:
            Row-chunk size of the dense/bincount backends (bounds their peak
            memory).
        """
        cross = CrossPairwiseStats.from_matrices(
            matrix, cardinalities, matrix, cardinalities, method=method, chunk_size=chunk_size
        )
        return cls(
            cardinalities=cross.row_cardinalities,
            offsets=cross.row_offsets,
            gram=cross.gram,
            num_records=cross.num_records,
        )

    @property
    def num_attributes(self) -> int:
        """Number of attributes the statistics cover."""
        return len(self.cardinalities)

    def table(self, i: int, j: int) -> np.ndarray:
        """The (cardinality_i x cardinality_j) contingency table of (i, j).

        For ``i == j`` the block is ``diag(marginal counts)`` — records always
        agree with themselves — so use :meth:`marginal` for marginals.
        """
        rows = slice(self.offsets[i], self.offsets[i + 1])
        cols = slice(self.offsets[j], self.offsets[j + 1])
        return self.gram[rows, cols]

    def marginal(self, i: int) -> np.ndarray:
        """Marginal counts of attribute i (diagonal of the (i, i) block)."""
        return np.diagonal(self.table(i, i)).copy()

    def entropies(self) -> np.ndarray:
        """Every marginal and joint Shannon entropy (bits), vectorized.

        Returns an (m x m) matrix H with ``H[i, j] = H(x_i, x_j)`` for
        ``i != j`` and ``H[i, i] = H(x_i)`` (the diagonal blocks of the Gram
        matrix are diagonal, so their block entropy *is* the marginal
        entropy).

        The batched reduceat reduction sums probabilities in a different
        order than :func:`~repro.stats.entropy.entropy_from_counts`, so
        values may differ from the per-pair loop by ~1 ulp; use
        :func:`block_entropy` on individual :meth:`table` blocks when
        bit-exact parity with the loop matters.
        """
        if self.num_records == 0:
            return np.zeros((self.num_attributes, self.num_attributes))
        probabilities = self.gram / float(self.num_records)
        plogp = np.zeros_like(probabilities)
        positive = probabilities > 0
        np.log2(probabilities, out=plogp, where=positive)
        plogp *= probabilities
        starts = self.offsets[:-1]
        block_sums = np.add.reduceat(np.add.reduceat(plogp, starts, axis=0), starts, axis=1)
        return np.maximum(-block_sums, 0.0)

    def exact_entropies(self) -> np.ndarray:
        """Like :meth:`entropies`, but bit-identical to the per-pair loop.

        Applies :func:`block_entropy` to every Gram block, reproducing the
        reference float pipeline exactly (at some per-block Python overhead).
        This is the variant to use when downstream decisions tie-break on
        exactly equal values — ulp-level differences from the reduceat
        reduction are enough to flip learned structures (see
        :mod:`repro.generative.structure`).
        """
        m = self.num_attributes
        result = np.zeros((m, m))
        for i in range(m):
            for j in range(m):
                # Both orientations are reduced independently: H(x_i, x_j)
                # and H(x_j, x_i) are equal mathematically but their blocks
                # ravel in different orders, and matching the loop bit for
                # bit requires summing in the loop's order for each entry.
                block = self.marginal(i) if i == j else self.table(i, j)
                result[i, j] = block_entropy(block)
        return result


def block_entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of one count block, bit-identical to the loop.

    Performs exactly the float operations of
    :func:`repro.stats.entropy.entropy_from_counts` (normalize, compact the
    positive probabilities, ``-np.sum(p * log2(p))``) without its input
    validation, so entropies derived from Gram blocks match the per-pair
    reference loop to the last bit.
    """
    arr = np.asarray(counts, dtype=np.float64).ravel()
    total = arr.sum()
    if total <= 0:
        return 0.0
    probs = arr / total
    positive = probs[probs > 0]
    return float(-np.sum(positive * np.log2(positive)))


def pairwise_entropies(
    matrix: np.ndarray,
    cardinalities: list[int] | tuple[int, ...],
    method: str | None = None,
) -> np.ndarray:
    """Marginal/joint entropy matrix of an encoded data matrix (one scan)."""
    return PairwiseStats.from_matrix(matrix, cardinalities, method=method).entropies()
