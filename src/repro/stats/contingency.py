"""Count tables (marginals, joints and contingency tables) for discrete data.

All functions accept integer-encoded value arrays.  Values are assumed to lie
in ``[0, cardinality)``; callers that work with :class:`repro.datasets.Dataset`
objects get this for free because datasets encode every attribute that way.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "marginal_counts",
    "marginal_distribution",
    "joint_counts",
    "joint_distribution",
    "pairwise_joint_distribution",
    "contingency_table",
]


def _as_int_array(values: np.ndarray) -> np.ndarray:
    """Validate and coerce an input column to a 1-D integer array."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array of values, got shape {arr.shape}")
    if arr.size and arr.min() < 0:
        raise ValueError("encoded values must be non-negative integers")
    return arr.astype(np.int64, copy=False)


def marginal_counts(values: np.ndarray, cardinality: int | None = None) -> np.ndarray:
    """Return the histogram of a single encoded attribute.

    Parameters
    ----------
    values:
        1-D array of non-negative integer codes.
    cardinality:
        Number of bins.  If omitted, ``max(values) + 1`` is used.
    """
    arr = _as_int_array(values)
    if cardinality is None:
        cardinality = int(arr.max()) + 1 if arr.size else 0
    if arr.size and arr.max() >= cardinality:
        raise ValueError(
            f"value {int(arr.max())} out of range for cardinality {cardinality}"
        )
    return np.bincount(arr, minlength=cardinality).astype(np.int64)


def marginal_distribution(
    values: np.ndarray, cardinality: int | None = None
) -> np.ndarray:
    """Return the empirical marginal distribution of a single attribute."""
    counts = marginal_counts(values, cardinality)
    total = counts.sum()
    if total == 0:
        raise ValueError("cannot build a distribution from an empty column")
    return counts / total


def joint_counts(
    first: np.ndarray,
    second: np.ndarray,
    first_cardinality: int | None = None,
    second_cardinality: int | None = None,
) -> np.ndarray:
    """Return the 2-D contingency table of two encoded attributes."""
    a = _as_int_array(first)
    b = _as_int_array(second)
    if a.shape != b.shape:
        raise ValueError("both columns must have the same number of rows")
    if first_cardinality is None:
        first_cardinality = int(a.max()) + 1 if a.size else 0
    if second_cardinality is None:
        second_cardinality = int(b.max()) + 1 if b.size else 0
    flat = a * second_cardinality + b
    counts = np.bincount(flat, minlength=first_cardinality * second_cardinality)
    return counts.reshape(first_cardinality, second_cardinality).astype(np.int64)


def joint_distribution(
    first: np.ndarray,
    second: np.ndarray,
    first_cardinality: int | None = None,
    second_cardinality: int | None = None,
) -> np.ndarray:
    """Return the empirical joint distribution of two attributes."""
    counts = joint_counts(first, second, first_cardinality, second_cardinality)
    total = counts.sum()
    if total == 0:
        raise ValueError("cannot build a distribution from empty columns")
    return counts / total


def pairwise_joint_distribution(
    matrix: np.ndarray,
    i: int,
    j: int,
    cardinalities: list[int] | tuple[int, ...] | None = None,
) -> np.ndarray:
    """Joint distribution of columns ``i`` and ``j`` of an encoded data matrix."""
    data = np.asarray(matrix)
    if data.ndim != 2:
        raise ValueError("matrix must be 2-D (rows x attributes)")
    card_i = cardinalities[i] if cardinalities is not None else None
    card_j = cardinalities[j] if cardinalities is not None else None
    return joint_distribution(data[:, i], data[:, j], card_i, card_j)


def contingency_table(
    matrix: np.ndarray,
    columns: list[int] | tuple[int, ...],
    cardinalities: list[int] | tuple[int, ...],
) -> np.ndarray:
    """N-way contingency table over a subset of columns.

    The result has one axis per requested column, in the given order, with the
    axis length equal to that column's cardinality.
    """
    data = np.asarray(matrix)
    if data.ndim != 2:
        raise ValueError("matrix must be 2-D (rows x attributes)")
    if not columns:
        raise ValueError("at least one column is required")
    shape = tuple(int(cardinalities[c]) for c in columns)
    flat_index = np.zeros(data.shape[0], dtype=np.int64)
    for col, card in zip(columns, shape):
        flat_index = flat_index * card + data[:, col].astype(np.int64)
    counts = np.bincount(flat_index, minlength=int(np.prod(shape)))
    return counts.reshape(shape).astype(np.int64)
