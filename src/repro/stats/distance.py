"""Distribution-distance metrics used by the statistical-utility evaluation.

Section 6.2 of the paper compares synthetic datasets to real data by computing,
for every attribute and every pair of attributes, the total variation distance
("the" statistical distance) between the empirical distributions of the two
datasets.  Figures 3 and 4 are box plots of exactly these numbers.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.stats.contingency import (
    joint_distribution,
    marginal_distribution,
)

__all__ = [
    "total_variation_distance",
    "jensen_shannon_divergence",
    "single_attribute_distances",
    "pairwise_attribute_distances",
]


def _validate_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    first = np.asarray(p, dtype=np.float64).ravel()
    second = np.asarray(q, dtype=np.float64).ravel()
    if first.shape != second.shape:
        raise ValueError(
            f"distributions must have the same support size, "
            f"got {first.size} and {second.size}"
        )
    for dist in (first, second):
        if np.any(dist < -1e-12):
            raise ValueError("probabilities must be non-negative")
        if not np.isclose(dist.sum(), 1.0, rtol=1e-6, atol=1e-9):
            raise ValueError("distributions must sum to 1")
    return first, second


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance: 0.5 * sum |p - q|, in [0, 1]."""
    first, second = _validate_pair(p, q)
    return float(0.5 * np.abs(first - second).sum())


def jensen_shannon_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence (bits), a smoothed symmetric KL divergence.

    Not used by the paper directly but handy as a secondary utility metric; it
    is bounded by 1 bit and defined even when the supports differ.
    """
    first, second = _validate_pair(p, q)
    mixture = 0.5 * (first + second)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    return 0.5 * _kl(first, mixture) + 0.5 * _kl(second, mixture)


def single_attribute_distances(
    reference: np.ndarray,
    other: np.ndarray,
    cardinalities: list[int] | tuple[int, ...],
) -> list[float]:
    """TVD between per-attribute marginals of two encoded data matrices.

    Returns one distance per attribute (column), in column order.  This is the
    quantity plotted in Figure 3.
    """
    ref = np.asarray(reference)
    oth = np.asarray(other)
    if ref.ndim != 2 or oth.ndim != 2:
        raise ValueError("both inputs must be 2-D encoded data matrices")
    if ref.shape[1] != oth.shape[1]:
        raise ValueError("both datasets must have the same number of attributes")
    if ref.shape[1] != len(cardinalities):
        raise ValueError("cardinalities must list one entry per attribute")
    distances = []
    for col, card in enumerate(cardinalities):
        p = marginal_distribution(ref[:, col], card)
        q = marginal_distribution(oth[:, col], card)
        distances.append(total_variation_distance(p, q))
    return distances


def pairwise_attribute_distances(
    reference: np.ndarray,
    other: np.ndarray,
    cardinalities: list[int] | tuple[int, ...],
) -> dict[tuple[int, int], float]:
    """TVD between the joint distribution of every attribute pair (Figure 4).

    Returns a mapping ``(i, j) -> distance`` for every ``i < j``.
    """
    ref = np.asarray(reference)
    oth = np.asarray(other)
    if ref.ndim != 2 or oth.ndim != 2:
        raise ValueError("both inputs must be 2-D encoded data matrices")
    if ref.shape[1] != oth.shape[1]:
        raise ValueError("both datasets must have the same number of attributes")
    if ref.shape[1] != len(cardinalities):
        raise ValueError("cardinalities must list one entry per attribute")
    distances: dict[tuple[int, int], float] = {}
    for i, j in combinations(range(ref.shape[1]), 2):
        p = joint_distribution(ref[:, i], ref[:, j], cardinalities[i], cardinalities[j])
        q = joint_distribution(oth[:, i], oth[:, j], cardinalities[i], cardinalities[j])
        distances[(i, j)] = total_variation_distance(p.ravel(), q.ravel())
    return distances
