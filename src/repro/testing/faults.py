"""Chaos harness: injectable fault points for the fault-tolerance suite.

Each fault is a small picklable object handed to the component under test
(the engine's ``fault_injector``, the scheduler's ``dispatch_hook``) so the
failure fires at a *deterministic* point in the pipeline — "SIGKILL the
worker that claims chunk 2", "delay every dispatch past the deadline" — and
the recovery path can be asserted bit-identical to the undisturbed run via
the shared :mod:`repro.testing.invariants` checkers.

Faults that kill processes coordinate through a marker directory instead of
in-memory state: a respawned worker is a *fresh* process, so "kill N times"
must survive re-pickling.  Each kill atomically claims one marker file
(``open(..., "x")``); once the markers are exhausted the fault is spent and
every retry executes normally.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DispatchDelayFault",
    "KillWorkerAtChunk",
    "truncate_file_tail",
]


@dataclass(frozen=True)
class KillWorkerAtChunk:
    """SIGKILL the worker process that claims ``chunk_index``.

    Fired by the engine worker *after* recording the chunk in the shared
    in-flight table but *before* executing it — the exact window in which a
    real OOM kill loses an uncommitted chunk.  ``times`` bounds how many
    kills the fault may perform across respawns (coordinated through
    ``marker_dir``), so ``times = max_chunk_retries + 1`` forces retry
    exhaustion while ``times = 1`` exercises clean recovery.
    """

    chunk_index: int
    marker_dir: str
    times: int = 1

    def fire(self, chunk_index: int) -> None:
        if chunk_index != self.chunk_index:
            return
        for attempt in range(self.times):
            marker = Path(self.marker_dir) / f"kill.{attempt}"
            try:
                with open(marker, "x"):
                    pass
            except FileExistsError:
                continue  # this kill was already spent by an earlier process
            os.kill(os.getpid(), signal.SIGKILL)

    def kills_fired(self) -> int:
        """How many kills have been spent so far (parent-side assertion)."""
        return sum(
            1
            for attempt in range(self.times)
            if (Path(self.marker_dir) / f"kill.{attempt}").exists()
        )


@dataclass(frozen=True)
class DispatchDelayFault:
    """Stall the scheduler's dispatch of each request by ``seconds``.

    Installed as the scheduler's ``dispatch_hook`` (which runs *before* the
    deadline check), it deterministically expires any request whose deadline
    is shorter than the delay — the 504-refund path — without relying on
    queue-contention timing.  ``only_request_ids`` restricts the stall to
    specific requests (empty/None = all).
    """

    seconds: float
    only_request_ids: tuple[str, ...] | None = None

    def __call__(self, request) -> None:
        if (
            self.only_request_ids
            and getattr(request, "request_id", None) not in self.only_request_ids
        ):
            return
        time.sleep(self.seconds)


def truncate_file_tail(path: str | Path, drop_bytes: int) -> int:
    """Chop ``drop_bytes`` off the end of ``path``, as a crash mid-write would.

    Returns the new size.  Used to prove journal replay tolerates a torn
    final line (and *only* the final line) without misstating spend.
    """
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - int(drop_bytes))
    with open(path, "rb+") as handle:
        handle.truncate(new_size)
    return new_size
