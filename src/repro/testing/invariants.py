"""Reusable invariant checkers for the paper's guarantees and fast-path parity.

PR 1-3 each re-proved the same properties with bespoke test code: the batched
Mechanism 1 against the single-record loop, the vectorized structure engine
against the reference loop, the parallel engine against the serial chunked
run.  This module turns those proofs into first-class checkers that any test,
benchmark or future fast path can call:

* :func:`check_engine_parity` — a :class:`~repro.core.engine.SynthesisEngine`
  run is bit-identical across worker counts (released rows *and* the full
  per-attempt accounting);
* :func:`check_rng_reproducibility` — a run is a pure function of its seed;
* :func:`check_batched_mechanism_parity` — batched Mechanism 1 decisions match
  re-evaluating each candidate through the single-record reference path;
* :func:`check_accountant_conservation` — the privacy ledger never
  under-reports spend under any composition mode;
* :func:`check_theorem1_bounds` — every recorded attempt obeys the
  plausible-seed test semantics, and the Theorem 1 (ε, δ) algebra is
  internally consistent;
* :func:`check_structure_engine_equivalence` — the ``"vectorized"`` and
  ``"reference"`` structure-learning engines produce bit-exact entropies and
  identical structures (and, under DP, identical spend and stream positions).

Checkers raise :class:`InvariantViolation` (an ``AssertionError`` subclass, so
pytest renders it natively) with a description of the first divergence.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.core.engine import SynthesisEngine
from repro.core.mechanism import SynthesisMechanism
from repro.core.results import SynthesisAttempt, SynthesisReport
from repro.datasets.dataset import Dataset
from repro.generative.base import GenerativeModel
from repro.generative.structure import (
    DependencyStructure,
    StructureLearner,
    StructureLearningConfig,
)
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.plausible_deniability import (
    PlausibleDeniabilityParams,
    theorem1_delta,
    theorem1_epsilon,
    theorem1_guarantee,
)

__all__ = [
    "InvariantViolation",
    "report_accounting",
    "assert_reports_identical",
    "check_engine_parity",
    "check_rng_reproducibility",
    "check_batched_mechanism_parity",
    "check_accountant_conservation",
    "check_theorem1_bounds",
    "check_structure_engine_equivalence",
]


class InvariantViolation(AssertionError):
    """A checked invariant does not hold; the message names the divergence."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def report_accounting(report: SynthesisReport) -> dict[str, list]:
    """The full per-attempt accounting of a report, as comparable plain lists."""
    arrays = report.to_arrays()
    return {name: arrays[name].tolist() for name in arrays}


def assert_reports_identical(
    expected: SynthesisReport, actual: SynthesisReport, context: str = ""
) -> None:
    """Require two reports to agree on every attempt field, bit for bit."""
    prefix = f"{context}: " if context else ""
    expected_arrays = expected.to_arrays()
    actual_arrays = actual.to_arrays()
    for name in expected_arrays:
        if not np.array_equal(expected_arrays[name], actual_arrays[name]):
            raise InvariantViolation(
                f"{prefix}reports diverge in {name!r} "
                f"(expected {expected.num_attempts} attempts / "
                f"{expected.num_released} released, got {actual.num_attempts} "
                f"attempts / {actual.num_released} released)"
            )


# --------------------------------------------------------------------------- #
# Engine parity and reproducibility
# --------------------------------------------------------------------------- #
def _engine_run(
    engine: SynthesisEngine,
    base_seed: int,
    num_attempts: int | None,
    num_released: int | None,
    max_attempts: int | None,
) -> SynthesisReport:
    if num_attempts is not None:
        return engine.run_attempts(num_attempts, base_seed=base_seed)
    assert num_released is not None
    return engine.generate(num_released, base_seed=base_seed, max_attempts=max_attempts)


def check_engine_parity(
    model: GenerativeModel,
    seed_dataset: Dataset,
    params: PlausibleDeniabilityParams,
    *,
    base_seed: int = 0,
    num_attempts: int | None = None,
    num_released: int | None = None,
    max_attempts: int | None = None,
    chunk_size: int = 16,
    batch_size: int | None = 8,
    worker_counts: Sequence[int] = (2,),
    engines: Sequence[SynthesisEngine] = (),
) -> SynthesisReport:
    """Require every worker count to reproduce the serial engine run exactly.

    Exactly one of ``num_attempts`` (fixed budget) or ``num_released``
    (until-N mode, optionally bounded by ``max_attempts``) selects the run
    mode.  Pre-started pools can be passed via ``engines`` (their chunk and
    batch sizes must match — the chunk grid is part of the RNG layout);
    otherwise a fresh pool is started per entry of ``worker_counts``.  At
    least one candidate beyond the serial reference is required — a call
    that would compare nothing is rejected rather than passing vacuously.
    Returns the serial reference report.
    """
    if (num_attempts is None) == (num_released is None):
        raise ValueError("pass exactly one of num_attempts / num_released")
    if not engines and not any(workers > 1 for workers in worker_counts):
        raise ValueError(
            "no candidate engines to compare against the serial reference "
            "(engines is empty and worker_counts has no entry > 1); parity "
            "would pass vacuously — run the serial engine directly instead"
        )
    with SynthesisEngine(
        model, seed_dataset, params, num_workers=1,
        chunk_size=chunk_size, batch_size=batch_size,
    ) as reference_engine:
        reference = _engine_run(
            reference_engine, base_seed, num_attempts, num_released, max_attempts
        )

    def _check(candidate_engine: SynthesisEngine) -> None:
        if candidate_engine.chunk_size != chunk_size:
            raise ValueError(
                f"candidate engine uses chunk_size={candidate_engine.chunk_size}, "
                f"reference uses {chunk_size}; the chunk grid is part of the "
                "run's RNG layout so parity is only defined on the same grid"
            )
        if candidate_engine.batch_size != batch_size:
            raise ValueError(
                f"candidate engine uses batch_size={candidate_engine.batch_size}, "
                f"reference uses {batch_size}; the proposal batch size is part "
                "of the run's RNG layout so parity is only defined on the same "
                "batching"
            )
        candidate = _engine_run(
            candidate_engine, base_seed, num_attempts, num_released, max_attempts
        )
        assert_reports_identical(
            reference,
            candidate,
            context=f"{candidate_engine.num_workers}-worker engine vs serial",
        )

    for engine in engines:
        _check(engine)
    for workers in worker_counts:
        if workers == 1 or any(e.num_workers == workers for e in engines):
            continue
        with SynthesisEngine(
            model, seed_dataset, params, num_workers=workers,
            chunk_size=chunk_size, batch_size=batch_size,
        ) as pool:
            _check(pool)
    return reference


def check_rng_reproducibility(
    run: Callable[[np.random.Generator], SynthesisReport],
    seed: int = 0,
    repeats: int = 2,
) -> SynthesisReport:
    """Require ``run`` to be a pure function of its RNG seed.

    ``run`` receives a fresh ``default_rng(seed)`` each time; every repeat
    must produce bit-identical accounting.  Returns the first report.
    """
    if repeats < 2:
        raise ValueError("repeats must be at least 2 to compare anything")
    first = run(np.random.default_rng(seed))
    for repeat in range(1, repeats):
        again = run(np.random.default_rng(seed))
        assert_reports_identical(
            first, again, context=f"repeat {repeat} with seed {seed}"
        )
    return first


# --------------------------------------------------------------------------- #
# Batched Mechanism 1 vs the single-record reference path
# --------------------------------------------------------------------------- #
def check_batched_mechanism_parity(
    mechanism: SynthesisMechanism,
    rng: np.random.Generator,
    batch_size: int = 40,
) -> list[SynthesisAttempt]:
    """Require batched proposals to match single-record re-evaluation.

    Every attempt from :meth:`~repro.core.mechanism.SynthesisMechanism.propose_batch`
    is re-run through the reference
    :meth:`~repro.core.mechanism.SynthesisMechanism.evaluate_candidate` path.
    Partition indices must always agree (a pure function of the candidate and
    its seed).  Plausible-seed counts, scanned-record counts and the
    ``count_saturated`` flag are compared unless ``max_check_plausible``
    limits the scan (the scanned subset is then an independent rng draw on
    each path, so they are distributionally but not pointwise equal) or the
    mechanism runs its approximate sampling path (early-decided counts are
    lower bounds, not exact tallies).  Pass/fail decisions are additionally
    compared whenever the test is deterministic and scans are unrestricted —
    including under ``max_plausible`` (both paths cap identically) and in
    approximate mode (whose release decisions must be bit-identical to
    exact).  Returns the batched attempts.
    """
    params = mechanism.params
    approximate_active = bool(
        getattr(mechanism, "_approximate_active", lambda: False)()
    )
    counts_are_pure = params.max_check_plausible is None and not approximate_active
    decisions_are_pure = (
        not params.is_randomized and params.max_check_plausible is None
    )
    attempts = mechanism.propose_batch(batch_size, rng)
    for index, attempt in enumerate(attempts):
        reference = mechanism.evaluate_candidate(
            attempt.seed_index, attempt.candidate, rng
        )
        label = f"attempt {index} (seed {attempt.seed_index})"
        if counts_are_pure:
            _require(
                attempt.test.plausible_seeds == reference.test.plausible_seeds,
                f"{label}: batched plausible count {attempt.test.plausible_seeds} "
                f"!= reference {reference.test.plausible_seeds}",
            )
            _require(
                attempt.test.records_checked == reference.test.records_checked,
                f"{label}: batched records_checked {attempt.test.records_checked} "
                f"!= reference {reference.test.records_checked}",
            )
            _require(
                attempt.test.count_saturated == reference.test.count_saturated,
                f"{label}: batched saturation flag {attempt.test.count_saturated} "
                f"!= reference {reference.test.count_saturated}",
            )
        _require(
            attempt.test.partition_index == reference.test.partition_index,
            f"{label}: batched partition {attempt.test.partition_index} "
            f"!= reference {reference.test.partition_index}",
        )
        if decisions_are_pure:
            _require(
                attempt.test.passed == reference.test.passed,
                f"{label}: batched decision {attempt.test.passed} "
                f"!= reference {reference.test.passed}",
            )
    return attempts


# --------------------------------------------------------------------------- #
# Privacy-accountant spend conservation
# --------------------------------------------------------------------------- #
def check_accountant_conservation(
    accountant: PrivacyAccountant,
) -> tuple[float, float] | None:
    """Require the ledger's composed guarantees to conserve recorded spend.

    Checks, for a non-empty ledger (an empty one passes vacuously):

    * each scope's sequential (non-advanced) guarantee equals the exact sum of
      its entries' per-query spends;
    * advanced composition never reports more ε than sequential, and never
      less than the largest single-query ε (no spend vanishes);
    * δ never drops below the largest single-query δ;
    * the parallel-composition (disjoint scopes) total is the max over
      scopes, and never exceeds the sequential-over-scopes total.

    Returns the sequential total ``(ε, δ)``, or ``None`` for an empty ledger.
    """
    if not accountant.entries:
        return None
    scope_sequential: dict[str, tuple[float, float]] = {}
    for scope in accountant.scopes():
        entries = [entry for entry in accountant.entries if entry.scope == scope]
        epsilon = 0.0
        delta = 0.0
        for entry in entries:
            epsilon += entry.epsilon * entry.count
            delta += min(1.0, entry.delta * entry.count)
        delta = min(1.0, delta)
        reported = accountant.scope_guarantee(scope, use_advanced=False)
        _require(
            math.isclose(reported[0], epsilon, rel_tol=1e-12, abs_tol=0.0)
            and math.isclose(reported[1], delta, rel_tol=1e-12, abs_tol=0.0),
            f"scope {scope!r}: sequential guarantee {reported} does not equal "
            f"the recorded spend ({epsilon}, {delta})",
        )
        scope_sequential[scope] = (epsilon, delta)

        advanced = accountant.scope_guarantee(scope, use_advanced=True)
        _require(
            advanced[0] <= epsilon * (1 + 1e-12),
            f"scope {scope!r}: advanced composition ε {advanced[0]} exceeds "
            f"the sequential bound {epsilon}",
        )
        max_entry_epsilon = max(entry.epsilon for entry in entries)
        max_entry_delta = max(entry.delta for entry in entries)
        _require(
            advanced[0] >= max_entry_epsilon * (1 - 1e-12),
            f"scope {scope!r}: advanced composition ε {advanced[0]} "
            f"under-reports the largest single query ({max_entry_epsilon})",
        )
        _require(
            advanced[1] >= max_entry_delta * (1 - 1e-12),
            f"scope {scope!r}: composed δ {advanced[1]} under-reports the "
            f"largest single query ({max_entry_delta})",
        )

    joint = accountant.total_guarantee(use_advanced=False, disjoint_scopes=False)
    disjoint = accountant.total_guarantee(use_advanced=False, disjoint_scopes=True)
    expected_disjoint = (
        max(eps for eps, _ in scope_sequential.values()),
        max(delta for _, delta in scope_sequential.values()),
    )
    _require(
        disjoint == expected_disjoint,
        f"disjoint-scope total {disjoint} is not the max over scopes "
        f"{expected_disjoint}",
    )
    _require(
        disjoint[0] <= joint[0] * (1 + 1e-12) and disjoint[1] <= joint[1] + 1e-15,
        f"parallel-composition total {disjoint} exceeds the sequential total {joint}",
    )
    return joint


# --------------------------------------------------------------------------- #
# Theorem 1 / privacy-test semantics
# --------------------------------------------------------------------------- #
def check_theorem1_bounds(
    report: SynthesisReport,
    params: PlausibleDeniabilityParams,
    num_seed_records: int | None = None,
) -> None:
    """Require every attempt to obey the privacy-test and Theorem 1 semantics.

    Per attempt: the seed generated the candidate so its partition index is a
    real bucket (>= 0); the scan never examines more records than allowed; the
    deterministic test passes iff the plausible count reaches k exactly, and
    the randomized test iff it reaches the recorded noisy threshold.  For the
    randomized test the Theorem 1 algebra is also checked: the reported
    (ε, δ, t) reproduces the closed forms, ε decreases and δ increases in t.
    """
    scan_limit = num_seed_records if num_seed_records is not None else None
    if params.max_check_plausible is not None:
        scan_limit = (
            params.max_check_plausible
            if scan_limit is None
            else min(scan_limit, params.max_check_plausible)
        )
    for index, attempt in enumerate(report.attempts):
        test = attempt.test
        label = f"attempt {index}"
        _require(
            test.partition_index >= 0,
            f"{label}: the true seed fell outside every probability bucket "
            f"(partition {test.partition_index})",
        )
        _require(
            test.plausible_seeds >= 0,
            f"{label}: negative plausible-seed count {test.plausible_seeds}",
        )
        if params.max_check_plausible is None:
            _require(
                test.plausible_seeds >= 1,
                f"{label}: a full scan must count the true seed itself, got "
                f"{test.plausible_seeds}",
            )
        if scan_limit is not None:
            _require(
                test.records_checked <= scan_limit,
                f"{label}: scanned {test.records_checked} records, limit {scan_limit}",
            )
        if params.max_plausible is not None:
            _require(
                test.plausible_seeds <= params.max_plausible,
                f"{label}: plausible count {test.plausible_seeds} exceeds "
                f"max_plausible {params.max_plausible}",
            )
        if params.is_randomized:
            _require(
                test.passed == (test.plausible_seeds >= test.threshold),
                f"{label}: randomized decision {test.passed} contradicts count "
                f"{test.plausible_seeds} vs threshold {test.threshold}",
            )
        else:
            _require(
                test.threshold == float(params.k),
                f"{label}: deterministic threshold {test.threshold} != k={params.k}",
            )
            _require(
                test.passed == (test.plausible_seeds >= params.k),
                f"{label}: deterministic decision {test.passed} contradicts "
                f"count {test.plausible_seeds} vs k={params.k}",
            )

    if params.is_randomized and params.k >= 2:
        assert params.epsilon0 is not None
        epsilon, delta, t = theorem1_guarantee(params.k, params.gamma, params.epsilon0)
        _require(1 <= t < params.k, f"Theorem 1 chose t={t} outside [1, k)")
        _require(
            epsilon == theorem1_epsilon(params.epsilon0, params.gamma, t)
            and delta == theorem1_delta(params.epsilon0, params.k, t),
            f"Theorem 1 guarantee ({epsilon}, {delta}, t={t}) does not "
            "reproduce the closed forms",
        )
        epsilons = [
            theorem1_epsilon(params.epsilon0, params.gamma, candidate)
            for candidate in range(1, params.k)
        ]
        deltas = [
            theorem1_delta(params.epsilon0, params.k, candidate)
            for candidate in range(1, params.k)
        ]
        _require(
            all(a > b for a, b in zip(epsilons, epsilons[1:])),
            "Theorem 1 ε must be strictly decreasing in t",
        )
        _require(
            # Strictly increasing except where e^(-ε0 (k - t)) underflows to
            # exactly 0.0 (large k·ε0): consecutive underflowed values tie at
            # 0.0 without any mathematical violation.
            all(a < b for a, b in zip(deltas, deltas[1:]) if not (a == 0.0 and b == 0.0)),
            "Theorem 1 δ must be increasing in t",
        )


# --------------------------------------------------------------------------- #
# Structure-learning engine equivalence
# --------------------------------------------------------------------------- #
def check_structure_engine_equivalence(
    dataset: Dataset,
    *,
    seed: int | None = None,
    **config_kwargs,
) -> DependencyStructure:
    """Require the vectorized and reference structure engines to agree.

    Without DP (no ``epsilon_entropy`` in ``config_kwargs``) the engines must
    produce bit-exact entropy tables and identical learned structures.  With
    DP (pass ``seed`` for the noise stream) the noise is assigned to entropy
    values in a different order by design, so the checked contract is instead:
    identical ledger spend, identical generator stream position after
    learning, and a valid DAG from both engines.  Returns the vectorized
    engine's structure.
    """
    accountants = {
        engine: PrivacyAccountant() for engine in ("reference", "vectorized")
    }
    learners = {
        engine: StructureLearner(
            StructureLearningConfig(engine=engine, **config_kwargs),
            accountants[engine],
        )
        for engine in ("reference", "vectorized")
    }
    is_dp = config_kwargs.get("epsilon_entropy") is not None
    if not is_dp:
        reference_tables = learners["reference"].entropy_tables(dataset)
        vectorized_tables = learners["vectorized"].entropy_tables(dataset)
        names = ("H(x)", "H(bkt)", "H(x,bkt)", "H(bkt,bkt)")
        for name, expected, actual in zip(names, reference_tables, vectorized_tables):
            if not np.array_equal(expected, actual):
                raise InvariantViolation(
                    f"{name} entropies are not bit-identical across engines"
                )
        reference_structure = learners["reference"].learn(dataset)
        vectorized_structure = learners["vectorized"].learn(dataset)
        _require(
            reference_structure.parents == vectorized_structure.parents
            and reference_structure.order == vectorized_structure.order,
            "non-DP learned structures differ across engines: "
            f"{reference_structure.parents} vs {vectorized_structure.parents}",
        )
        return vectorized_structure

    if seed is None:
        raise ValueError("DP structure equivalence requires a seed for the noise stream")
    import networkx as nx

    results = {}
    for engine, learner in learners.items():
        rng = np.random.default_rng(seed)
        structure = learner.learn(dataset, rng)
        _require(
            nx.is_directed_acyclic_graph(structure.as_digraph()),
            f"{engine} engine produced a cyclic DP structure",
        )
        results[engine] = (structure, rng.bit_generator.state)
    _require(
        accountants["reference"].entries == accountants["vectorized"].entries,
        "DP engines recorded different privacy spend",
    )
    _require(
        results["reference"][1] == results["vectorized"][1],
        "DP engines consumed a different number of random variates "
        "(generator stream positions diverge)",
    )
    return results["vectorized"][0]
