"""Golden-run regression store: canonical per-scenario digests, checked for drift.

In the spirit of regression-store evaluation discipline, each registered
scenario is run end to end (fit + a fixed-budget chunked engine run) and
reduced to a handful of content digests built on the
:class:`~repro.core.run_store.RunStore` canonical-hash machinery:

* ``dataset`` — fingerprint of the scenario's input dataset;
* ``structure`` — hash of the learned dependency structure (parents + order);
* ``ledger`` — hash of the model-learning privacy-ledger entries;
* ``released`` — hash of the released synthetic rows;
* ``accounting`` — hash of the full per-attempt accounting arrays;

plus the plain ``attempts`` / ``released_count`` tallies.  ``record`` writes
the digests of every scenario × seed to a JSON file (the committed copy lives
next to this module); ``check`` recomputes them and reports every drift — a
changed fast path that silently alters releases, spend or learned structures
fails loudly instead of shipping.

Command line::

    PYTHONPATH=src python -m repro.testing record            # refresh goldens
    PYTHONPATH=src python -m repro.testing check             # verify, exit 1 on drift
    PYTHONPATH=src python -m repro.testing check --drift-report drift.json
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.engine import SynthesisEngine
from repro.core.run_store import (
    RunStore,
    RunStoreCorruptionError,
    _atomic_write,
    dataset_fingerprint,
)
from repro.testing.scenarios import Scenario, iter_scenarios

__all__ = [
    "DEFAULT_GOLDEN_PATH",
    "GOLDEN_VERSION",
    "GoldenDrift",
    "scenario_digest",
    "compute_goldens",
    "record_goldens",
    "check_goldens",
    "format_drifts",
    "write_drift_report",
]

#: Bump when the digest recipe itself changes (not when behaviour drifts).
GOLDEN_VERSION = 1

#: The committed golden file ships inside the package so the CLI finds it
#: regardless of the working directory.
DEFAULT_GOLDEN_PATH = Path(__file__).with_name("golden_digests.json")

DEFAULT_SEEDS: tuple[int, ...] = (0, 1)


@dataclass(frozen=True)
class GoldenDrift:
    """One divergence between the stored goldens and a fresh run."""

    entry: str
    field: str
    expected: object
    actual: object

    def describe(self) -> str:
        """Human-readable one-line description."""
        if self.expected is None:
            return f"{self.entry}: unexpected new entry ({self.field})"
        if self.actual is None:
            return f"{self.entry}: missing from this run ({self.field})"
        return (
            f"{self.entry}: {self.field} drifted "
            f"(recorded {self.expected!r}, got {self.actual!r})"
        )


def _entry_key(scenario_name: str, seed: int) -> str:
    return f"{scenario_name}@seed{seed}"


def scenario_digest(scenario: Scenario, seed: int) -> dict:
    """Run one scenario end to end and reduce it to its canonical digests.

    Always runs the default (vectorized) engines: goldens pin the behaviour
    users get, while reference-engine agreement is asserted separately by
    :func:`repro.testing.invariants.check_structure_engine_equivalence`.
    """
    fit = scenario.fit(seed)
    with SynthesisEngine(
        fit.model,
        fit.seeds,
        fit.params,
        num_workers=1,
        chunk_size=scenario.chunk_size,
        batch_size=scenario.batch_size,
    ) as synthesis_engine:
        report = synthesis_engine.run_attempts(scenario.attempts, base_seed=seed)
    structure = fit.model.structure
    return {
        "dataset": dataset_fingerprint(fit.dataset),
        "structure": RunStore.artifact_key(
            "golden-structure",
            {"parents": structure.parents, "order": structure.order},
        ),
        "ledger": RunStore.artifact_key(
            "golden-ledger",
            {
                "entries": [
                    [entry.label, entry.epsilon, entry.delta, entry.count, entry.scope]
                    for entry in fit.accountant.entries
                ]
            },
        ),
        "released": RunStore.artifact_key(
            "golden-released", {"rows": report.released_dataset().data}
        ),
        "accounting": RunStore.artifact_key("golden-accounting", report.to_arrays()),
        "attempts": report.num_attempts,
        "released_count": report.num_released,
    }


def compute_goldens(
    scenarios: Iterable[Scenario] | None = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> dict[str, dict]:
    """Digest every scenario × seed combination."""
    chosen = list(scenarios) if scenarios is not None else list(iter_scenarios())
    return {
        _entry_key(scenario.name, seed): scenario_digest(scenario, seed)
        for scenario in chosen
        for seed in seeds
    }


def record_goldens(
    path: str | Path = DEFAULT_GOLDEN_PATH,
    scenarios: Iterable[Scenario] | None = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> dict:
    """Compute and write the golden file; returns the written document.

    A subset record (explicit ``scenarios``) against an existing same-version
    file *merges*: only the requested entries are replaced, everything else
    is preserved — re-recording one changed scenario never discards the other
    scenarios' committed digests.  A subset record must cover exactly the
    file's recorded seed grid (every scenario covers the same seeds, which is
    what a later full ``check`` recomputes; a partial re-record would leave
    the scenario's other-seed digests stale).  Changing the grid, or
    migrating a file recorded under another ``GOLDEN_VERSION``, requires a
    full record.  A full-registry record rewrites the file.
    """
    target = Path(path)
    existing = None
    if scenarios is not None and target.exists():
        existing = _load_golden_file(target)
        if existing.get("version") != GOLDEN_VERSION:
            raise ValueError(
                f"golden file {target} was recorded under version "
                f"{existing.get('version')!r} (current: {GOLDEN_VERSION}); a "
                "subset record cannot migrate it — run a full record"
            )
        if set(seeds) != set(existing["seeds"]):
            raise ValueError(
                f"subset record uses seeds {sorted(set(seeds))} but the file's "
                f"recorded grid is {sorted(existing['seeds'])}; a partial grid "
                "would leave stale or missing per-seed digests that a later "
                "full check reports as drift — record the full grid, or run a "
                "full record to change it"
            )
    entries = compute_goldens(scenarios, seeds)
    recorded_seeds = sorted(seeds)
    if existing is not None:
        entries = {**existing["entries"], **entries}
        recorded_seeds = existing["seeds"]
    document = {
        "version": GOLDEN_VERSION,
        "seeds": recorded_seeds,
        "entries": entries,
    }
    _atomic_write(
        target, (json.dumps(document, indent=2, sort_keys=True) + "\n").encode()
    )
    return document


def _load_golden_file(path: Path) -> dict:
    """Parse a golden file, diagnosing damage instead of leaking a raw error."""
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise RunStoreCorruptionError(
            f"golden file {path} is corrupted and cannot be parsed: {exc}; "
            "restore it from version control or run a full record"
        ) from exc


def check_goldens(
    path: str | Path = DEFAULT_GOLDEN_PATH,
    scenarios: Iterable[Scenario] | None = None,
    seeds: Sequence[int] | None = None,
) -> list[GoldenDrift]:
    """Recompute digests and diff them against the stored goldens.

    ``seeds`` defaults to the seeds recorded in the file.  Scenarios that are
    registered but missing from the file (or recorded but no longer
    registered / requested) are reported as drifts too — a silently shrinking
    conformance surface is itself a regression.
    """
    document = _load_golden_file(Path(path))
    if document.get("version") != GOLDEN_VERSION:
        return [
            GoldenDrift(
                entry="<file>",
                field="version",
                expected=GOLDEN_VERSION,
                actual=document.get("version"),
            )
        ]
    stored: dict[str, dict] = document["entries"]
    run_seeds = tuple(seeds) if seeds is not None else tuple(document["seeds"])
    chosen = list(scenarios) if scenarios is not None else list(iter_scenarios())
    fresh = compute_goldens(chosen, run_seeds)
    if scenarios is not None or seeds is not None:
        # A subset check (CI smoke) only judges the requested combinations;
        # the full-registry check still flags missing/extra entries.
        expected_keys = {
            _entry_key(scenario.name, seed)
            for scenario in chosen
            for seed in run_seeds
        }
        stored = {key: value for key, value in stored.items() if key in expected_keys}

    drifts: list[GoldenDrift] = []
    for key in sorted(set(stored) | set(fresh)):
        if key not in fresh:
            drifts.append(GoldenDrift(key, "entry", stored[key], None))
            continue
        if key not in stored:
            drifts.append(GoldenDrift(key, "entry", None, fresh[key]))
            continue
        for field_name in sorted(set(stored[key]) | set(fresh[key])):
            expected = stored[key].get(field_name)
            actual = fresh[key].get(field_name)
            if expected != actual:
                drifts.append(GoldenDrift(key, field_name, expected, actual))
    return drifts


def format_drifts(drifts: Sequence[GoldenDrift]) -> str:
    """Render drifts as a readable report."""
    if not drifts:
        return "all golden digests match"
    lines = [f"{len(drifts)} golden digest drift(s) detected:"]
    lines.extend(f"  - {drift.describe()}" for drift in drifts)
    return "\n".join(lines)


def write_drift_report(drifts: Sequence[GoldenDrift], path: str | Path) -> None:
    """Write drifts as JSON (the CI workflow uploads this as an artifact)."""
    Path(path).write_text(
        json.dumps([asdict(drift) for drift in drifts], indent=2, sort_keys=True) + "\n"
    )
