"""Conformance subsystem: invariant checkers, scenario registry, golden store.

The paper's guarantees — Theorem 1 plausible-deniability bounds, DP budget
composition, seed-based release — are exactly the properties every fast path
in this codebase must preserve.  This package makes asserting them reusable:

* :mod:`repro.testing.invariants` — checkers for engine parity, RNG
  reproducibility, accountant spend conservation, Theorem 1 bounds, and
  bit-exact structure-learning engine equivalence;
* :mod:`repro.testing.scenarios` — a registry of diverse synthetic schema
  families (wide/narrow, skewed/uniform, high-cardinality, correlated,
  tiny-n) usable as fixtures by tests and benchmarks alike;
* :mod:`repro.testing.golden` — a golden-run regression store of canonical
  per-scenario digests, with a ``python -m repro.testing record/check`` CLI;
* :mod:`repro.testing.faults` — a chaos harness of injectable fault points
  (worker SIGKILL at a chosen chunk, dispatch delay, journal-tail
  truncation) for proving the recovery paths deterministic.
"""

from repro.testing.faults import (
    DispatchDelayFault,
    KillWorkerAtChunk,
    truncate_file_tail,
)

from repro.testing.golden import (
    DEFAULT_GOLDEN_PATH,
    GoldenDrift,
    check_goldens,
    compute_goldens,
    format_drifts,
    record_goldens,
    scenario_digest,
    write_drift_report,
)
from repro.testing.invariants import (
    InvariantViolation,
    assert_reports_identical,
    check_accountant_conservation,
    check_batched_mechanism_parity,
    check_engine_parity,
    check_rng_reproducibility,
    check_structure_engine_equivalence,
    check_theorem1_bounds,
    report_accounting,
)
from repro.testing.scenarios import (
    Scenario,
    ScenarioFit,
    correlated_toy_matrix,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
    toy_schema,
)

__all__ = [
    "DispatchDelayFault",
    "KillWorkerAtChunk",
    "truncate_file_tail",
    "InvariantViolation",
    "assert_reports_identical",
    "check_accountant_conservation",
    "check_batched_mechanism_parity",
    "check_engine_parity",
    "check_rng_reproducibility",
    "check_structure_engine_equivalence",
    "check_theorem1_bounds",
    "report_accounting",
    "Scenario",
    "ScenarioFit",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "toy_schema",
    "correlated_toy_matrix",
    "DEFAULT_GOLDEN_PATH",
    "GoldenDrift",
    "scenario_digest",
    "compute_goldens",
    "record_goldens",
    "check_goldens",
    "format_drifts",
    "write_drift_report",
]
