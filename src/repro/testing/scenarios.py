"""Scenario registry: parameterizable synthetic schema families for conformance.

Every scale/speed PR so far (batched Mechanism 1, the vectorized model-fitting
engine, the parallel synthesis engine) shipped its own bespoke toy dataset for
its parity tests.  This module turns those one-offs into a single registry of
named :class:`Scenario` objects — diverse schema families (wide/narrow,
skewed/uniform, high-cardinality, correlated-attribute, tiny-n edge cases)
with everything needed to run the whole pipeline end to end:

* a schema and a deterministic data generator (pure functions of a seed),
* the plausible-deniability and generative-model parameters sized to the
  scenario's scale,
* a :meth:`Scenario.fit` helper that runs the real
  :class:`~repro.core.pipeline.SynthesisPipeline` fit phase and hands back the
  fitted model, splits and privacy ledger.

The registry is the one source of small-dataset builders for the unit-test
suite (``tests/conftest.py``), the benchmark harness
(``benchmarks/conftest.py``), the conformance cross-product suite
(``tests/testing/``) and the golden-run regression store
(:mod:`repro.testing.golden`).
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.pipeline import SynthesisPipeline
from repro.datasets.dataset import Dataset
from repro.datasets.schema import Attribute, AttributeType, Schema
from repro.datasets.splits import DataSplits
from repro.generative.builder import GenerativeModelSpec
from repro.generative.structure import StructureLearningConfig
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

__all__ = [
    "Scenario",
    "ScenarioFit",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "toy_schema",
    "correlated_toy_matrix",
]


# --------------------------------------------------------------------------- #
# Hoisted shared builders (formerly duplicated across test/benchmark conftests)
# --------------------------------------------------------------------------- #
def toy_schema() -> Schema:
    """A small 4-attribute schema with one bucketized numerical attribute."""
    return Schema(
        [
            Attribute("age", AttributeType.NUMERICAL, tuple(range(20)), bucket_size=5),
            Attribute("color", AttributeType.CATEGORICAL, ("red", "green", "blue")),
            Attribute("size", AttributeType.CATEGORICAL, ("small", "large")),
            Attribute("label", AttributeType.CATEGORICAL, ("no", "yes")),
        ]
    )


def correlated_toy_matrix(num_records: int, rng: np.random.Generator) -> np.ndarray:
    """Correlated toy data: size depends on age, label depends on size and color."""
    age = rng.integers(0, 20, size=num_records)
    color = rng.integers(0, 3, size=num_records)
    size = (age >= 10).astype(np.int64)
    flip = rng.random(num_records) < 0.15
    size = np.where(flip, 1 - size, size)
    label_probability = 0.15 + 0.55 * size + 0.15 * (color == 2)
    label = (rng.random(num_records) < label_probability).astype(np.int64)
    return np.column_stack([age, color, size, label])


# --------------------------------------------------------------------------- #
# Scenario definition
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioFit:
    """The fitted state of one scenario run: model, splits, ledger, mechanism RNG."""

    scenario: "Scenario"
    seed: int
    engine: str
    dataset: Dataset
    pipeline: SynthesisPipeline

    @property
    def splits(self) -> DataSplits:
        """The DS / DT / DP / test splits."""
        return self.pipeline.splits

    @property
    def model(self):
        """The fitted Bayesian-network synthesizer."""
        return self.pipeline.model

    @property
    def seeds(self) -> Dataset:
        """The seed split DS."""
        return self.pipeline.splits.seeds

    @property
    def params(self) -> PlausibleDeniabilityParams:
        """The plausible-deniability parameters of the scenario."""
        return self.pipeline.config.privacy

    @property
    def accountant(self) -> PrivacyAccountant:
        """The model-learning privacy ledger."""
        return self.pipeline.accountant


@dataclass(frozen=True)
class Scenario:
    """One named conformance scenario: schema family + privacy/model parameters.

    Parameters
    ----------
    name, description, tags:
        Registry identity.  Tags (e.g. ``"dp"``, ``"deterministic-test"``,
        ``"edge-case"``) let suites select subsets.
    num_records:
        Input dataset size.  Deliberately small: scenarios exist to cross
        engines/workers/seeds, not to stress scale.
    schema_builder, matrix_builder:
        ``schema_builder()`` builds the schema; ``matrix_builder(num_records,
        rng)`` builds the encoded data matrix.  Both must be deterministic
        given the rng so a scenario dataset is a pure function of its seed.
    k, gamma, epsilon0:
        Privacy-test parameters; ``epsilon0=None`` selects the deterministic
        Privacy Test 1.
    omega:
        Re-sampled attribute count (or set) of the generative model.
    total_epsilon:
        Overall DP model-learning budget; ``None`` fits without noise.
    attempts, target_released, chunk_size, batch_size:
        The canonical generation workload of the scenario, shared by the
        conformance suite and the golden-run store so their runs are
        comparable.
    """

    name: str
    description: str
    num_records: int
    schema_builder: Callable[[], Schema]
    matrix_builder: Callable[[int, np.random.Generator], np.ndarray]
    k: int = 8
    gamma: float = 4.0
    epsilon0: float | None = 1.0
    max_check_plausible: int | None = None
    max_plausible: int | None = None
    omega: int | tuple[int, ...] = 2
    total_epsilon: float | None = 1.0
    attempts: int = 48
    target_released: int = 8
    chunk_size: int = 16
    batch_size: int = 8
    tags: frozenset[str] = field(default_factory=frozenset)

    # ------------------------------------------------------------------ #
    # Deterministic construction
    # ------------------------------------------------------------------ #
    def _rng(self, seed: int, stream: int) -> np.random.Generator:
        """A scenario-private stream: keyed by scenario name, seed and purpose."""
        name_key = zlib.crc32(self.name.encode())
        return np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(name_key, stream))
        )

    def schema(self) -> Schema:
        """The scenario's schema (freshly built; schemas are cheap)."""
        return self.schema_builder()

    def dataset(self, seed: int = 0) -> Dataset:
        """The scenario's input dataset for one seed (pure function of the seed)."""
        schema = self.schema()
        matrix = self.matrix_builder(self.num_records, self._rng(seed, 0))
        return Dataset(schema, matrix)

    def privacy_params(self) -> PlausibleDeniabilityParams:
        """The plausible-deniability test parameters."""
        return PlausibleDeniabilityParams(
            k=self.k,
            gamma=self.gamma,
            epsilon0=self.epsilon0,
            max_check_plausible=self.max_check_plausible,
            max_plausible=self.max_plausible,
        )

    def model_spec(self, engine: str = "vectorized") -> GenerativeModelSpec:
        """The generative-model spec, with the structure-learning engine knob."""
        structure = StructureLearningConfig(engine=engine)
        if self.total_epsilon is None:
            return GenerativeModelSpec(
                omega=self.omega,
                epsilon_structure=None,
                epsilon_parameters=None,
                structure=structure,
            )
        return GenerativeModelSpec.with_total_epsilon(
            self.total_epsilon,
            num_attributes=len(self.schema()),
            omega=self.omega,
            structure=structure,
        )

    def config(self, engine: str = "vectorized") -> GenerationConfig:
        """A full pipeline configuration for this scenario."""
        return GenerationConfig(
            privacy=self.privacy_params(),
            model=self.model_spec(engine),
            batch_size=self.batch_size,
            chunk_size=self.chunk_size,
        )

    def fit(self, seed: int = 0, engine: str = "vectorized") -> ScenarioFit:
        """Run the real pipeline fit phase and return the fitted bundle."""
        dataset = self.dataset(seed)
        pipeline = SynthesisPipeline(
            dataset, config=self.config(engine), rng=self._rng(seed, 1)
        )
        pipeline.fit()
        return ScenarioFit(
            scenario=self, seed=seed, engine=engine, dataset=dataset, pipeline=pipeline
        )

    def at_scale(self, num_records: int, seed_fraction: float = 0.55) -> "Scenario":
        """This scenario rescaled to ``num_records``, with k retuned to match.

        A candidate's plausible-seed count is bounded by the population of
        its probability bucket, and the buckets do *not* grow linearly with
        the dataset: once structure learning has enough data to resolve the
        generating process, the learned chain turns near-deterministic and a
        bucket holds roughly ``seeds / max-cardinality`` records (every seed
        sharing the candidate's value on the highest-cardinality root
        attribute).  A k tuned at the native scale therefore overshoots at
        larger n — at 2000 toy-correlated records every count lands near
        1100 / 20 = 55, below the native k = 80, and the privacy test
        rejects every candidate.  The retuned k is the linear rescaling
        capped at half that worst-case bucket population (floor 2), keeping
        the test meaningfully strict while guaranteeing releasable
        candidates at every scale.
        """
        if num_records < 1:
            raise ValueError("num_records must be positive")
        if num_records == self.num_records:
            return self
        max_cardinality = max(
            len(attribute.values) for attribute in self.schema().attributes
        )
        seed_records = int(round(seed_fraction * num_records))
        linear_k = round(self.k * num_records / self.num_records)
        bucket_cap = seed_records // (2 * max_cardinality)
        return dataclasses.replace(
            self,
            num_records=num_records,
            k=max(2, min(linear_k, bucket_cap)),
        )

    def experiment_context(self, seed: int = 0, **overrides):
        """An :class:`~repro.experiments.harness.ExperimentContext` on this scenario.

        Lets the benchmark/experiment harness run over a registry scenario
        instead of the ACS-like sample; the scenario dataset's fingerprint
        enters every artifact key.  ``epsilon0`` passes through unchanged
        (``None`` keeps the deterministic test in the bridged context).  The
        harness always fits with a DP budget, so a non-DP scenario
        (``total_epsilon=None``) is bridged with the harness default ε = 1 —
        its harness fits differ from :meth:`fit` in that one respect.
        """
        from repro.experiments.harness import ExperimentContext

        settings = dict(
            dataset=self.dataset(seed),
            total_epsilon=self.total_epsilon if self.total_epsilon is not None else 1.0,
            k=self.k,
            gamma=self.gamma,
            epsilon0=self.epsilon0,
            seed=seed,
        )
        settings.update(overrides)
        return ExperimentContext(**settings)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (names must be unique)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def scenario_names(tags: Iterable[str] | None = None) -> list[str]:
    """Registered scenario names (optionally only those carrying all ``tags``)."""
    return [scenario.name for scenario in iter_scenarios(tags)]


def iter_scenarios(tags: Iterable[str] | None = None) -> Iterator[Scenario]:
    """Iterate registered scenarios in registration order, filtered by tags."""
    wanted = frozenset(tags) if tags is not None else frozenset()
    for scenario in _REGISTRY.values():
        if wanted <= scenario.tags:
            yield scenario


# --------------------------------------------------------------------------- #
# Built-in scenario families
# --------------------------------------------------------------------------- #
def _uniform_schema(cardinalities: tuple[int, ...], prefix: str = "u") -> Callable[[], Schema]:
    def build() -> Schema:
        return Schema(
            [
                Attribute(
                    f"{prefix}{index}",
                    AttributeType.CATEGORICAL,
                    tuple(f"v{value}" for value in range(cardinality)),
                )
                for index, cardinality in enumerate(cardinalities)
            ]
        )

    return build


def _uniform_matrix(cardinalities: tuple[int, ...]):
    def build(num_records: int, rng: np.random.Generator) -> np.ndarray:
        return np.column_stack(
            [rng.integers(0, c, size=num_records) for c in cardinalities]
        )

    return build


def _skewed_matrix(num_records: int, rng: np.random.Generator) -> np.ndarray:
    """Geometric-skew marginals with a correlated binary outcome."""
    heavy = np.minimum(rng.geometric(0.45, size=num_records) - 1, 11)
    mid = np.minimum(rng.geometric(0.6, size=num_records) - 1, 5)
    outcome = ((heavy + mid) >= 3).astype(np.int64)
    flip = rng.random(num_records) < 0.2
    outcome = np.where(flip, 1 - outcome, outcome)
    return np.column_stack([heavy, mid, outcome])


def _skewed_schema() -> Schema:
    return Schema(
        [
            Attribute("heavy", AttributeType.NUMERICAL, tuple(range(12))),
            Attribute("mid", AttributeType.NUMERICAL, tuple(range(6))),
            Attribute("outcome", AttributeType.CATEGORICAL, ("lo", "hi")),
        ]
    )


def _high_cardinality_schema() -> Schema:
    return Schema(
        [
            Attribute(
                "code", AttributeType.NUMERICAL, tuple(range(40)), bucket_size=8
            ),
            Attribute("group", AttributeType.CATEGORICAL, ("a", "b", "c", "d")),
            Attribute("flag", AttributeType.CATEGORICAL, ("off", "on")),
        ]
    )


def _high_cardinality_matrix(num_records: int, rng: np.random.Generator) -> np.ndarray:
    code = rng.integers(0, 40, size=num_records)
    group = np.minimum(code // 10, 3)
    shuffle = rng.random(num_records) < 0.25
    group = np.where(shuffle, rng.integers(0, 4, size=num_records), group)
    flag = (code % 2 == 0).astype(np.int64)
    return np.column_stack([code, group, flag])


def _chain_schema() -> Schema:
    return Schema(
        [
            Attribute(f"c{index}", AttributeType.CATEGORICAL, ("x", "y", "z"))
            for index in range(5)
        ]
    )


def _chain_matrix(num_records: int, rng: np.random.Generator) -> np.ndarray:
    """A Markov chain over 5 ternary attributes: c_{i+1} mostly copies c_i."""
    columns = [rng.integers(0, 3, size=num_records)]
    for _ in range(4):
        stay = rng.random(num_records) < 0.75
        step = rng.integers(0, 3, size=num_records)
        columns.append(np.where(stay, columns[-1], step))
    return np.column_stack(columns)


def _wide_matrix(num_records: int, rng: np.random.Generator) -> np.ndarray:
    base = rng.integers(0, 2, size=num_records)
    columns = [base]
    for index in range(7):
        cardinality = 3 if index % 3 == 0 else 2
        if index % 2 == 0:
            noisy = (base + rng.integers(0, cardinality, size=num_records)) % cardinality
            columns.append(noisy)
        else:
            columns.append(rng.integers(0, cardinality, size=num_records))
    return np.column_stack(columns)


def _wide_schema() -> Schema:
    attributes = [Attribute("w0", AttributeType.CATEGORICAL, ("n", "y"))]
    for index in range(7):
        cardinality = 3 if index % 3 == 0 else 2
        attributes.append(
            Attribute(
                f"w{index + 1}",
                AttributeType.CATEGORICAL,
                tuple(f"v{value}" for value in range(cardinality)),
            )
        )
    return Schema(attributes)


register_scenario(
    Scenario(
        name="toy-correlated",
        description="4 correlated attributes with one bucketized numerical column",
        num_records=600,
        schema_builder=toy_schema,
        matrix_builder=correlated_toy_matrix,
        k=80,
        epsilon0=1.0,
        omega=(2, 3),
        total_epsilon=1.0,
        tags=frozenset({"dp", "randomized-test", "correlated", "smoke"}),
    )
)

register_scenario(
    Scenario(
        name="narrow-uniform",
        description="2 independent uniform attributes (smallest possible schema)",
        num_records=400,
        schema_builder=_uniform_schema((4, 3)),
        matrix_builder=_uniform_matrix((4, 3)),
        k=8,
        epsilon0=None,
        omega=1,
        total_epsilon=None,
        tags=frozenset({"deterministic-test", "narrow", "uniform"}),
    )
)

register_scenario(
    Scenario(
        name="wide-mixed",
        description="8 low-cardinality attributes, half correlated with a hidden base",
        num_records=500,
        schema_builder=_wide_schema,
        matrix_builder=_wide_matrix,
        k=40,
        epsilon0=1.0,
        omega=6,
        total_epsilon=1.0,
        tags=frozenset({"dp", "randomized-test", "wide"}),
    )
)

register_scenario(
    Scenario(
        name="skewed-geometric",
        description="geometric-skew marginals with a correlated binary outcome",
        num_records=600,
        schema_builder=_skewed_schema,
        matrix_builder=_skewed_matrix,
        k=80,
        epsilon0=1.0,
        omega=2,
        total_epsilon=1.0,
        tags=frozenset({"dp", "randomized-test", "skewed"}),
    )
)

register_scenario(
    Scenario(
        name="high-cardinality",
        description="a 40-value bucketized column driving two coarse attributes",
        num_records=800,
        schema_builder=_high_cardinality_schema,
        matrix_builder=_high_cardinality_matrix,
        k=8,
        epsilon0=None,
        # Early-termination knobs (Section 5): subset scans disable the
        # prefix-key fast count, so this scenario covers the scanned path.
        max_check_plausible=200,
        max_plausible=16,
        omega=2,
        total_epsilon=None,
        tags=frozenset({"deterministic-test", "high-cardinality", "early-termination"}),
    )
)

register_scenario(
    Scenario(
        name="correlated-chain",
        description="a 5-attribute Markov chain (dense sequential correlation)",
        num_records=600,
        schema_builder=_chain_schema,
        matrix_builder=_chain_matrix,
        k=8,
        epsilon0=1.0,
        omega=4,
        total_epsilon=1.0,
        tags=frozenset({"dp", "randomized-test", "correlated"}),
    )
)

register_scenario(
    Scenario(
        name="tiny-n",
        description="60-record edge case: seed split barely above k",
        num_records=60,
        schema_builder=_uniform_schema((3, 2, 2), prefix="t"),
        matrix_builder=_uniform_matrix((3, 2, 2)),
        k=4,
        epsilon0=None,
        omega=2,
        total_epsilon=None,
        attempts=32,
        target_released=4,
        chunk_size=8,
        batch_size=4,
        tags=frozenset({"deterministic-test", "edge-case", "smoke"}),
    )
)
