"""CLI for the golden-run regression store: ``python -m repro.testing``.

Subcommands
-----------
``record``
    Run every (or the selected) scenario × seed combination and write the
    canonical digests to the golden file.  Run this after an *intentional*
    behaviour change and commit the updated file with the change.
``check``
    Recompute the digests and compare them to the golden file.  Exits with
    status 1 and prints every drift when behaviour has changed;
    ``--drift-report`` additionally writes the drifts as JSON (uploaded as a
    CI artifact on failure).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.testing.golden import (
    DEFAULT_GOLDEN_PATH,
    DEFAULT_SEEDS,
    check_goldens,
    format_drifts,
    record_goldens,
    write_drift_report,
)
from repro.testing.scenarios import get_scenario, scenario_names


def _selected_scenarios(names: Sequence[str] | None):
    if not names:
        return None
    return [get_scenario(name) for name in names]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Record or check the golden-run conformance digests.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--path",
        default=str(DEFAULT_GOLDEN_PATH),
        help="golden digest file (default: the committed copy in repro.testing)",
    )
    common.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help=f"restrict to a scenario (repeatable); known: {', '.join(scenario_names())}",
    )
    common.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="seeds to run (record default: 0 1; check default: the recorded seeds)",
    )

    subparsers.add_parser(
        "record", parents=[common], help="run scenarios and write the golden file"
    )
    check_parser = subparsers.add_parser(
        "check", parents=[common], help="recompute digests and fail on drift"
    )
    check_parser.add_argument(
        "--drift-report",
        default=None,
        metavar="OUT.json",
        help="also write detected drifts as JSON (for CI artifact upload)",
    )

    args = parser.parse_args(argv)
    scenarios = _selected_scenarios(args.scenarios)

    if args.command == "record":
        seeds = tuple(args.seeds) if args.seeds else DEFAULT_SEEDS
        document = record_goldens(args.path, scenarios, seeds)
        print(
            f"recorded {len(document['entries'])} golden entrie(s) to {args.path}"
        )
        return 0

    drifts = check_goldens(args.path, scenarios, args.seeds)
    print(format_drifts(drifts))
    if drifts and args.drift_report:
        write_drift_report(drifts, args.drift_report)
        print(f"drift report written to {args.drift_report}")
    return 1 if drifts else 0


if __name__ == "__main__":
    sys.exit(main())
