"""Data substrate: schemas, encoded datasets, and the ACS-like census data.

The paper evaluates on the 2013 American Community Survey (ACS) public-use
microdata.  That file cannot be shipped here, so :mod:`repro.datasets.acs`
provides a synthetic population sampler with the same schema (Table 1 of the
paper), realistic inter-attribute dependencies, missing-value injection, and
the same cleaning / bucketization pipeline the paper applies.
"""

from repro.datasets.acs import (
    ACS_SCHEMA,
    AcsPopulationModel,
    clean_acs,
    load_acs,
    sample_raw_acs,
)
from repro.datasets.dataset import Dataset
from repro.datasets.schema import Attribute, AttributeType, Schema
from repro.datasets.splits import DataSplits, split_dataset, train_test_split

__all__ = [
    "Attribute",
    "AttributeType",
    "Schema",
    "Dataset",
    "DataSplits",
    "split_dataset",
    "train_test_split",
    "ACS_SCHEMA",
    "AcsPopulationModel",
    "sample_raw_acs",
    "clean_acs",
    "load_acs",
]
