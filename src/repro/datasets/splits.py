"""Dataset partitioning into the synthesis / training / parameter / test splits.

Section 3 of the paper uses three non-overlapping subsets of the input data:

* ``DS`` — seed records used during synthesis,
* ``DT`` — records used for (DP) structure learning,
* ``DP`` — records used for (DP) parameter learning,

plus a held-out test set for the evaluation (Section 6.1).  This module
implements that split and a generic train/test split helper used by the ML
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import Dataset

__all__ = ["DataSplits", "split_dataset", "train_test_split"]


@dataclass(frozen=True)
class DataSplits:
    """The non-overlapping splits used by the synthesis pipeline."""

    seeds: Dataset
    structure: Dataset
    parameters: Dataset
    test: Dataset

    def __post_init__(self) -> None:
        schemas = {
            id(self.seeds.schema),
            id(self.structure.schema),
            id(self.parameters.schema),
            id(self.test.schema),
        }
        # Schemas may be distinct objects; require value equality instead.
        if not (
            self.seeds.schema == self.structure.schema
            == self.parameters.schema == self.test.schema
        ):
            raise ValueError("all splits must share the same schema")
        del schemas

    @property
    def total_records(self) -> int:
        """Total number of records across all four splits."""
        return (
            len(self.seeds) + len(self.structure) + len(self.parameters) + len(self.test)
        )


def split_dataset(
    dataset: Dataset,
    seed_fraction: float = 0.55,
    structure_fraction: float = 0.175,
    parameter_fraction: float = 0.175,
    rng: np.random.Generator | None = None,
) -> DataSplits:
    """Randomly partition a dataset into DS / DT / DP / test splits.

    The default fractions mirror the paper's setup (Section 6.1): DS is the
    largest split (roughly 735k of 1.5M records), DT and DP each hold roughly
    280k records, and the remainder (about 100k records) is the test set.

    The three named fractions must sum to at most 1; the remainder becomes the
    test split.
    """
    total_fraction = seed_fraction + structure_fraction + parameter_fraction
    if min(seed_fraction, structure_fraction, parameter_fraction) < 0:
        raise ValueError("split fractions must be non-negative")
    if total_fraction > 1.0 + 1e-9:
        raise ValueError("split fractions must sum to at most 1")
    if rng is None:
        raise ValueError("split_dataset requires an explicit rng")
    generator = rng
    permutation = generator.permutation(len(dataset))
    n = len(dataset)
    n_seeds = int(round(seed_fraction * n))
    n_structure = int(round(structure_fraction * n))
    n_parameters = int(round(parameter_fraction * n))
    if n_seeds + n_structure + n_parameters > n:
        n_parameters = n - n_seeds - n_structure
    boundaries = np.cumsum([n_seeds, n_structure, n_parameters])
    seed_idx, structure_idx, parameter_idx, test_idx = np.split(permutation, boundaries)
    return DataSplits(
        seeds=dataset.take(seed_idx),
        structure=dataset.take(structure_idx),
        parameters=dataset.take(parameter_idx),
        test=dataset.take(test_idx),
    )


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.3,
    rng: np.random.Generator | None = None,
) -> tuple[Dataset, Dataset]:
    """Split a dataset into train and test subsets (test_fraction in (0, 1))."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be strictly between 0 and 1")
    if rng is None:
        raise ValueError("train_test_split requires an explicit rng")
    generator = rng
    permutation = generator.permutation(len(dataset))
    n_test = int(round(test_fraction * len(dataset)))
    test_idx = permutation[:n_test]
    train_idx = permutation[n_test:]
    return dataset.take(train_idx), dataset.take(test_idx)
