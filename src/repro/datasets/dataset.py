"""Columnar, integer-encoded dataset container with CSV round-trip support.

A :class:`Dataset` pairs a :class:`~repro.datasets.schema.Schema` with a 2-D
numpy matrix of encoded values (one row per record, one column per attribute,
cell value = index into the attribute's domain).  Everything downstream —
structure learning, parameter learning, synthesis, the privacy test and the ML
evaluation — operates on this representation.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.datasets.schema import Schema

__all__ = ["Dataset"]


class Dataset:
    """An encoded dataset: a schema plus a matrix of integer codes."""

    def __init__(self, schema: Schema, data: np.ndarray):
        matrix = np.asarray(data, dtype=np.int64)
        if matrix.ndim != 2:
            raise ValueError(f"data must be a 2-D matrix, got shape {matrix.shape}")
        if matrix.shape[1] != len(schema):
            raise ValueError(
                f"data has {matrix.shape[1]} columns but schema has "
                f"{len(schema)} attributes"
            )
        for col, attribute in enumerate(schema):
            column = matrix[:, col]
            if column.size and (column.min() < 0 or column.max() >= attribute.cardinality):
                raise ValueError(
                    f"column {attribute.name!r} contains codes outside "
                    f"[0, {attribute.cardinality})"
                )
        self._schema = schema
        self._data = matrix

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(cls, schema: Schema, records: Iterable[Sequence]) -> "Dataset":
        """Build a dataset from raw (un-encoded) records."""
        rows = list(records)
        if not rows:
            return cls(schema, np.empty((0, len(schema)), dtype=np.int64))
        columns = []
        for col, attribute in enumerate(schema):
            raw_column = [row[col] for row in rows]
            columns.append(attribute.encode(raw_column))
        return cls(schema, np.column_stack(columns))

    @classmethod
    def from_csv(cls, schema: Schema, path: str | Path, delimiter: str = ",") -> "Dataset":
        """Load a dataset from a CSV file with a header row of attribute names."""
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            header = next(reader, None)
            if header is None:
                raise ValueError(f"CSV file {path} is empty")
            if [name.strip() for name in header] != schema.names:
                raise ValueError(
                    f"CSV header {header} does not match schema columns {schema.names}"
                )
            records = []
            for row in reader:
                if not row:
                    continue
                typed_row = []
                for cell, attribute in zip(row, schema):
                    sample = attribute.values[0]
                    if isinstance(sample, (int, np.integer)):
                        typed_row.append(int(cell))
                    else:
                        typed_row.append(cell.strip())
                records.append(typed_row)
        return cls.from_records(schema, records)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._data.shape[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return self._schema == other._schema and np.array_equal(self._data, other._data)

    def __repr__(self) -> str:
        return f"Dataset(records={len(self)}, attributes={len(self._schema)})"

    @property
    def schema(self) -> Schema:
        """The dataset's schema."""
        return self._schema

    @property
    def data(self) -> np.ndarray:
        """The encoded data matrix (a defensive copy is *not* made)."""
        return self._data

    @property
    def num_records(self) -> int:
        """Number of records (rows)."""
        return self._data.shape[0]

    @property
    def num_attributes(self) -> int:
        """Number of attributes (columns)."""
        return self._data.shape[1]

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def column(self, name_or_index: str | int) -> np.ndarray:
        """Encoded values of one attribute column."""
        index = (
            self._schema.index_of(name_or_index)
            if isinstance(name_or_index, str)
            else int(name_or_index)
        )
        return self._data[:, index]

    def record(self, row: int) -> np.ndarray:
        """Encoded values of one record."""
        return self._data[row]

    def decoded_records(self) -> list[list]:
        """All records decoded back to raw attribute values."""
        decoded_columns = [
            attribute.decode(self._data[:, col])
            for col, attribute in enumerate(self._schema)
        ]
        return [list(row) for row in zip(*decoded_columns)] if len(self) else []

    def bucketized(self) -> np.ndarray:
        """The data matrix with every column mapped to its structure-learning buckets.

        Equivalent to applying :meth:`Attribute.bucketize` column by column,
        but in one whole-matrix pass: the constructor already validated every
        code, so the per-column range checks are skipped and all
        ``bucket_size`` divisions happen in a single ``floor_divide``.
        """
        if self._data.size == 0:
            return self._data.copy()
        divisors = np.array(
            [attribute.bucket_size or 1 for attribute in self._schema], dtype=np.int64
        )
        result = self._data // divisors[None, :]
        for col, attribute in enumerate(self._schema):
            if attribute.bucket_map is not None:
                mapping = np.asarray(attribute.bucket_map, dtype=np.int64)
                result[:, col] = mapping[self._data[:, col]]
        return result

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #
    def take(self, indices: np.ndarray) -> "Dataset":
        """A new dataset containing the rows at ``indices`` (in that order)."""
        return Dataset(self._schema, self._data[np.asarray(indices, dtype=np.int64)])

    def head(self, count: int) -> "Dataset":
        """The first ``count`` records."""
        return Dataset(self._schema, self._data[:count])

    def sample(self, count: int, rng: np.random.Generator, replace: bool = False) -> "Dataset":
        """A uniformly random sample of ``count`` records."""
        if not replace and count > len(self):
            raise ValueError(
                f"cannot sample {count} records without replacement from {len(self)}"
            )
        indices = rng.choice(len(self), size=count, replace=replace)
        return self.take(indices)

    def concat(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets with identical schemas."""
        if self._schema != other._schema:
            raise ValueError("cannot concatenate datasets with different schemas")
        return Dataset(self._schema, np.vstack([self._data, other._data]))

    def unique_fraction(self) -> float:
        """Fraction of records that are unique (Table 2 reports this for ACS)."""
        if len(self) == 0:
            return 0.0
        _, counts = np.unique(self._data, axis=0, return_counts=True)
        return float(np.sum(counts == 1)) / len(self)

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #
    def to_csv(self, path: str | Path, delimiter: str = ",") -> None:
        """Write the dataset (decoded) to a CSV file with a header row."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(self._schema.names)
            for row in self.decoded_records():
                writer.writerow(row)
