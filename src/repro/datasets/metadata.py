"""JSON metadata describing a dataset schema (the paper's metadata files).

The paper's tool (Section 5) consumes the input CSV together with "a few
metadata text files describing the dataset".  This module defines the
equivalent JSON format used by :mod:`repro.cli`: a list of attribute
descriptions with the name, type, domain and optional bucketization of each
column, so arbitrary discrete datasets (not just the built-in ACS-like one)
can be synthesized from the command line.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.datasets.schema import Attribute, AttributeType, Schema

__all__ = ["schema_to_metadata", "schema_from_metadata", "write_metadata", "read_metadata"]


def schema_to_metadata(schema: Schema) -> dict:
    """Serialize a schema to a JSON-compatible dictionary."""
    attributes = []
    for attribute in schema:
        entry: dict = {
            "name": attribute.name,
            "type": attribute.attribute_type.value,
            "values": list(attribute.values),
        }
        if attribute.bucket_size is not None:
            entry["bucket_size"] = attribute.bucket_size
        if attribute.bucket_map is not None:
            entry["bucket_map"] = list(attribute.bucket_map)
        attributes.append(entry)
    return {"attributes": attributes}


def schema_from_metadata(metadata: dict) -> Schema:
    """Build a schema from a metadata dictionary (inverse of :func:`schema_to_metadata`)."""
    if "attributes" not in metadata or not metadata["attributes"]:
        raise ValueError("metadata must contain a non-empty 'attributes' list")
    attributes = []
    for entry in metadata["attributes"]:
        try:
            name = entry["name"]
            type_name = entry["type"]
            values = entry["values"]
        except KeyError as exc:
            raise ValueError(f"attribute entry is missing the {exc.args[0]!r} field") from None
        try:
            attribute_type = AttributeType(type_name)
        except ValueError:
            raise ValueError(
                f"attribute {name!r} has unknown type {type_name!r}; "
                f"expected one of {[t.value for t in AttributeType]}"
            ) from None
        bucket_map = entry.get("bucket_map")
        attributes.append(
            Attribute(
                name=name,
                attribute_type=attribute_type,
                values=tuple(values),
                bucket_size=entry.get("bucket_size"),
                bucket_map=tuple(bucket_map) if bucket_map is not None else None,
            )
        )
    return Schema(attributes)


def write_metadata(schema: Schema, path: str | Path) -> None:
    """Write a schema's metadata to a JSON file."""
    Path(path).write_text(json.dumps(schema_to_metadata(schema), indent=2) + "\n")


def read_metadata(path: str | Path) -> Schema:
    """Read a schema from a JSON metadata file."""
    return schema_from_metadata(json.loads(Path(path).read_text()))
