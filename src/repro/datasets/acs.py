"""A synthetic stand-in for the 2013 American Community Survey (ACS) extract.

The paper evaluates on the 2013 ACS public-use microdata (3.1M raw records,
1.5M after cleaning), pre-processed to the 11 attributes of Table 1 (the same
attributes as the classic UCI Adult extraction).  That data cannot be shipped
with this repository, so this module implements a *population model*: a
hand-specified generative process over the same 11 attributes, with the same
cardinalities and value semantics, with strong and realistic inter-attribute
dependencies (age -> education -> occupation -> income, sex/hours effects,
etc.), missing-value injection, and the paper's cleaning rules.

The substitution preserves what the evaluation actually measures: the paper's
experiments only require that (a) the schema matches Table 1 and (b) there is
non-trivial structure between attributes that a Bayesian-network synthesizer
can capture and a marginal synthesizer cannot.

The raw sampler intentionally produces records with missing values and
under-age individuals so that :func:`clean_acs` exercises the same cleaning
pipeline as Section 4 of the paper (drop records with missing/invalid values,
keep individuals older than 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.schema import Attribute, AttributeType, Schema

__all__ = [
    "ACS_SCHEMA",
    "MISSING",
    "AcsPopulationModel",
    "sample_raw_acs",
    "clean_acs",
    "load_acs",
]

#: Sentinel used for missing values in *raw* (uncleaned) records.
MISSING = -1

# --------------------------------------------------------------------------- #
# Schema (Table 1 of the paper)
# --------------------------------------------------------------------------- #

_WORKCLASS_VALUES = (
    "private",
    "self-emp-not-inc",
    "self-emp-inc",
    "federal-gov",
    "state-gov",
    "local-gov",
    "without-pay",
    "unemployed",
)

# 24 education levels (SCHL): indices 0-14 are "below high-school diploma",
# 15-16 are high-school level, the rest are post-secondary.
_EDUCATION_VALUES = tuple(f"schl-{level:02d}" for level in range(1, 25))
_EDUCATION_BUCKETS = tuple(
    0 if level <= 15 else (1 if level <= 17 else level - 16)
    for level in range(1, 25)
)

_MARITAL_VALUES = ("married", "widowed", "divorced", "separated", "never-married")

_OCCUPATION_VALUES = tuple(f"occ-{index:02d}" for index in range(25))

_RELATIONSHIP_VALUES = tuple(f"relp-{index:02d}" for index in range(18))

_RACE_VALUES = ("white", "black", "asian", "native", "other")

_SEX_VALUES = ("male", "female")

_WAOB_VALUES = (
    "us",
    "pr-and-territories",
    "latin-america",
    "asia",
    "europe",
    "africa",
    "northern-america",
    "oceania",
)

_INCOME_VALUES = ("<=50K", ">50K")

ACS_SCHEMA = Schema(
    [
        Attribute("AGEP", AttributeType.NUMERICAL, tuple(range(17, 97)), bucket_size=10),
        Attribute("COW", AttributeType.CATEGORICAL, _WORKCLASS_VALUES),
        Attribute(
            "SCHL",
            AttributeType.CATEGORICAL,
            _EDUCATION_VALUES,
            bucket_map=_EDUCATION_BUCKETS,
        ),
        Attribute("MAR", AttributeType.CATEGORICAL, _MARITAL_VALUES),
        Attribute("OCCP", AttributeType.CATEGORICAL, _OCCUPATION_VALUES),
        Attribute("RELP", AttributeType.CATEGORICAL, _RELATIONSHIP_VALUES),
        Attribute("RAC1P", AttributeType.CATEGORICAL, _RACE_VALUES),
        Attribute("SEX", AttributeType.CATEGORICAL, _SEX_VALUES),
        Attribute("WKHP", AttributeType.NUMERICAL, tuple(range(0, 100)), bucket_size=15),
        Attribute("WAOB", AttributeType.CATEGORICAL, _WAOB_VALUES),
        Attribute("WAGP", AttributeType.CATEGORICAL, _INCOME_VALUES),
    ]
)


def _normalize(weights: np.ndarray) -> np.ndarray:
    """Normalize non-negative weights into a probability vector."""
    weights = np.clip(weights, 1e-9, None)
    return weights / weights.sum()


def _sample_rows(rng: np.random.Generator, probabilities: np.ndarray) -> np.ndarray:
    """Sample one category per row from a row-stochastic probability matrix."""
    cumulative = np.cumsum(probabilities, axis=1)
    draws = rng.random((probabilities.shape[0], 1))
    return (draws > cumulative).sum(axis=1).astype(np.int64)


@dataclass
class AcsPopulationModel:
    """Population model producing ACS-like records with realistic structure.

    Parameters
    ----------
    missing_rate:
        Probability that a record has at least one missing field (models the
        records that Section 4's cleaning step discards).
    underage_rate:
        Probability that a sampled individual is younger than 17 (also
        discarded by cleaning, matching the Adult extraction rules).
    """

    missing_rate: float = 0.12
    underage_rate: float = 0.05

    # ------------------------------------------------------------------ #
    # Attribute samplers (encoded domain).  Each returns integer codes.
    # ------------------------------------------------------------------ #
    def _sample_age(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # Working-age-heavy distribution over 17..96 (codes 0..79).
        ages = np.arange(17, 97)
        weights = np.exp(-((ages - 42.0) ** 2) / (2 * 19.0**2)) + 0.02
        return rng.choice(80, size=count, p=_normalize(weights))

    def _sample_sex(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.choice(2, size=count, p=[0.52, 0.48])

    def _sample_race(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.choice(5, size=count, p=_normalize(np.array([0.72, 0.12, 0.06, 0.02, 0.08])))

    def _sample_waob(self, rng: np.random.Generator, count: int, race: np.ndarray) -> np.ndarray:
        # World area of birth depends on race (e.g. asian race more likely born in asia).
        base = np.array([0.82, 0.02, 0.07, 0.04, 0.03, 0.01, 0.005, 0.005])
        probs = np.tile(base, (count, 1))
        probs[race == 2, 3] += 0.55  # asian
        probs[race == 2, 0] -= 0.45
        probs[race == 1, 5] += 0.10  # black -> africa more likely
        probs[race == 1, 0] -= 0.08
        probs[race == 4, 2] += 0.35  # other -> latin america
        probs[race == 4, 0] -= 0.30
        probs = np.clip(probs, 1e-6, None)
        probs /= probs.sum(axis=1, keepdims=True)
        return _sample_rows(rng, probs)

    def _sample_education(
        self, rng: np.random.Generator, count: int, age: np.ndarray
    ) -> np.ndarray:
        # Education (24 levels).  Older than ~22 can reach college degrees;
        # young adults concentrate at (or below) high-school levels.
        levels = np.arange(24)
        base = np.exp(-((levels - 16.0) ** 2) / (2 * 3.0**2)) + 0.005
        probs = np.tile(base, (count, 1))
        young = age < 5  # age codes 0..4 == 17..21 years old
        probs[young, 18:] *= 0.02  # degrees essentially impossible for the very young
        probs[young, :15] *= 3.0
        older = age >= 8  # 25+
        probs[older, 20:] *= 4.0  # bachelor's and above much more common
        senior = age >= 43  # 60+
        probs[senior, 18:] *= 0.5  # older cohorts hold fewer degrees
        probs = np.clip(probs, 1e-6, None)
        probs /= probs.sum(axis=1, keepdims=True)
        return _sample_rows(rng, probs)

    def _sample_marital(
        self, rng: np.random.Generator, count: int, age: np.ndarray
    ) -> np.ndarray:
        probs = np.tile(np.array([0.45, 0.06, 0.12, 0.02, 0.35]), (count, 1))
        young = age < 9  # under 26
        probs[young] = np.array([0.08, 0.0, 0.02, 0.01, 0.89])
        old = age >= 48  # 65+
        probs[old] = np.array([0.55, 0.25, 0.12, 0.02, 0.06])
        probs = np.clip(probs, 1e-6, None)
        probs /= probs.sum(axis=1, keepdims=True)
        return _sample_rows(rng, probs)

    def _sample_relationship(
        self, rng: np.random.Generator, count: int, age: np.ndarray, marital: np.ndarray
    ) -> np.ndarray:
        # 18 relationship-to-householder codes; code 0 ~ householder,
        # 1 ~ spouse, 2 ~ child, others tail off.
        base = np.concatenate(([0.38, 0.22, 0.16], np.full(15, 0.24 / 15)))
        probs = np.tile(base, (count, 1))
        married = marital == 0
        probs[married, 1] += 0.30
        probs[married, 2] -= 0.10
        young = age < 7
        probs[young, 2] += 0.40
        probs[young, 1] -= 0.15
        probs = np.clip(probs, 1e-6, None)
        probs /= probs.sum(axis=1, keepdims=True)
        return _sample_rows(rng, probs)

    def _sample_workclass(
        self, rng: np.random.Generator, count: int, education: np.ndarray, age: np.ndarray
    ) -> np.ndarray:
        probs = np.tile(np.array([0.64, 0.07, 0.03, 0.03, 0.05, 0.07, 0.02, 0.09]), (count, 1))
        graduate = education >= 20
        probs[graduate, 3] += 0.04
        probs[graduate, 4] += 0.04
        probs[graduate, 7] -= 0.05
        retired = age >= 48
        probs[retired, 7] += 0.25
        probs[retired, 0] -= 0.20
        probs = np.clip(probs, 1e-6, None)
        probs /= probs.sum(axis=1, keepdims=True)
        return _sample_rows(rng, probs)

    def _sample_occupation(
        self,
        rng: np.random.Generator,
        count: int,
        education: np.ndarray,
        sex: np.ndarray,
        workclass: np.ndarray,
    ) -> np.ndarray:
        # 25 occupation groups; low indices ~ management/professional,
        # high indices ~ service/manual.
        occupations = np.arange(25)
        base = np.full(25, 1.0 / 25)
        probs = np.tile(base, (count, 1))
        skilled = education >= 20
        decay_professional = np.exp(-occupations / 4.0)
        probs[skilled] = probs[skilled] * 0.1 + 0.9 * _normalize(decay_professional)
        mid = (education >= 16) & (education < 20)
        decay_mid = np.exp(-np.abs(occupations - 12) / 4.0)
        probs[mid] = probs[mid] * 0.25 + 0.75 * _normalize(decay_mid)
        unskilled = education <= 15
        decay_manual = np.exp(-(24 - occupations) / 4.0)
        probs[unskilled] = probs[unskilled] * 0.15 + 0.85 * _normalize(decay_manual)
        female = sex == 1
        office = np.zeros(25)
        office[8:14] = 1.0
        probs[female] = probs[female] * 0.7 + 0.3 * _normalize(office)
        unemployed = workclass == 7
        probs[unemployed] = np.full(25, 1.0 / 25)
        probs = np.clip(probs, 1e-6, None)
        probs /= probs.sum(axis=1, keepdims=True)
        return _sample_rows(rng, probs)

    def _sample_hours(
        self,
        rng: np.random.Generator,
        count: int,
        workclass: np.ndarray,
        age: np.ndarray,
    ) -> np.ndarray:
        hours = np.arange(100)
        full_time = np.exp(-((hours - 40.0) ** 2) / (2 * 6.0**2))
        part_time = np.exp(-((hours - 20.0) ** 2) / (2 * 8.0**2))
        none = np.zeros(100)
        none[0] = 1.0
        probs = np.tile(_normalize(full_time), (count, 1))
        self_employed = (workclass == 1) | (workclass == 2)
        probs[self_employed] = _normalize(0.6 * full_time + 0.4 * np.exp(-((hours - 50.0) ** 2) / 200.0))
        unemployed = workclass == 7
        probs[unemployed] = _normalize(0.85 * none + 0.15 * part_time)
        retired = age >= 48
        probs[retired] = _normalize(0.6 * none + 0.3 * part_time + 0.1 * full_time)
        young = age < 4
        probs[young] = _normalize(0.5 * part_time + 0.5 * full_time)
        probs = np.clip(probs, 1e-9, None)
        probs /= probs.sum(axis=1, keepdims=True)
        return _sample_rows(rng, probs)

    def _sample_income(
        self,
        rng: np.random.Generator,
        count: int,
        age: np.ndarray,
        education: np.ndarray,
        occupation: np.ndarray,
        hours: np.ndarray,
        sex: np.ndarray,
        workclass: np.ndarray,
    ) -> np.ndarray:
        # Logistic model for Pr[income > 50K]: sharp, strongly feature-driven.
        score = (
            -4.5
            + 0.55 * np.clip(education - 15, 0, None)
            + 0.09 * np.clip(hours - 30, 0, 30)
            + 0.12 * np.clip(age, 0, 25)
            - 0.003 * np.clip(age - 35, 0, None) ** 2
            - 0.22 * occupation
            - 1.1 * sex
            + 1.0 * ((workclass == 2) | (workclass == 3)).astype(float)
            - 4.0 * (workclass == 7).astype(float)
            - 4.0 * (hours == 0).astype(float)
        )
        probability_high = 1.0 / (1.0 + np.exp(-score))
        return (rng.random(count) < probability_high).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def sample_encoded(self, num_records: int, rng: np.random.Generator) -> np.ndarray:
        """Sample clean, fully-observed encoded records (no missing values)."""
        if num_records < 0:
            raise ValueError("num_records must be non-negative")
        count = int(num_records)
        age = self._sample_age(rng, count)
        sex = self._sample_sex(rng, count)
        race = self._sample_race(rng, count)
        waob = self._sample_waob(rng, count, race)
        education = self._sample_education(rng, count, age)
        marital = self._sample_marital(rng, count, age)
        relationship = self._sample_relationship(rng, count, age, marital)
        workclass = self._sample_workclass(rng, count, education, age)
        occupation = self._sample_occupation(rng, count, education, sex, workclass)
        hours = self._sample_hours(rng, count, workclass, age)
        income = self._sample_income(
            rng, count, age, education, occupation, hours, sex, workclass
        )
        return np.column_stack(
            [age, workclass, education, marital, occupation, relationship,
             race, sex, hours, waob, income]
        )

    def sample_raw(self, num_records: int, rng: np.random.Generator) -> np.ndarray:
        """Sample *raw* records: some have missing fields or under-age values.

        Missing fields are encoded as :data:`MISSING`; under-age individuals
        get an age code of ``MISSING`` too (their true age falls outside the
        17-96 domain of the extract, mirroring the Adult extraction rule that
        only keeps individuals older than 16).
        """
        encoded = self.sample_encoded(num_records, rng).astype(np.int64)
        count = encoded.shape[0]
        if count == 0:
            return encoded
        num_columns = encoded.shape[1]
        has_missing = rng.random(count) < self.missing_rate
        # Every affected record loses one or two fields (vectorized: one
        # guaranteed missing column plus a second one half of the time).
        first_missing = rng.integers(0, num_columns, size=count)
        second_missing = rng.integers(0, num_columns, size=count)
        wants_second = rng.random(count) < 0.5
        rows = np.flatnonzero(has_missing)
        encoded[rows, first_missing[rows]] = MISSING
        second_rows = rows[wants_second[rows]]
        encoded[second_rows, second_missing[second_rows]] = MISSING
        underage = rng.random(count) < self.underage_rate
        encoded[underage, 0] = MISSING
        return encoded


def sample_raw_acs(
    num_records: int,
    seed: int = 0,
    model: AcsPopulationModel | None = None,
) -> np.ndarray:
    """Sample a raw (uncleaned) ACS-like matrix of encoded records."""
    rng = np.random.default_rng(seed)
    population = model if model is not None else AcsPopulationModel()
    return population.sample_raw(num_records, rng)


def clean_acs(raw: np.ndarray) -> Dataset:
    """Apply the paper's cleaning step: drop records with missing/invalid values."""
    matrix = np.asarray(raw, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[1] != len(ACS_SCHEMA):
        raise ValueError(
            f"raw ACS data must have {len(ACS_SCHEMA)} columns, got shape {matrix.shape}"
        )
    valid = np.all(matrix != MISSING, axis=1)
    return Dataset(ACS_SCHEMA, matrix[valid])


def load_acs(
    num_records: int = 50_000,
    seed: int = 0,
    model: AcsPopulationModel | None = None,
) -> Dataset:
    """Sample, clean and return an ACS-like dataset of roughly ``num_records`` rows.

    ``num_records`` is the number of *raw* records sampled; after cleaning the
    dataset is somewhat smaller (as in the paper, where 3.1M raw records yield
    1.5M clean ones — our missing/under-age rates are milder so the shrinkage
    is smaller).
    """
    return clean_acs(sample_raw_acs(num_records, seed=seed, model=model))
