"""Attribute and schema definitions, including bucketization.

A :class:`Schema` describes the columns of a dataset: each :class:`Attribute`
has a name, a type (categorical or numerical), a list of values (its domain)
and, optionally, a bucketization used *only* for structure learning (Section
3.3 of the paper: parent attributes are discretized into coarser bins so that
the parent-configuration space stays small, see Eq. 6-7).  Both input and
output data keep the original domain; bucketization never changes the format
of released records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

__all__ = ["AttributeType", "Attribute", "Schema"]


class AttributeType(Enum):
    """Type of a data attribute."""

    CATEGORICAL = "categorical"
    NUMERICAL = "numerical"


@dataclass(frozen=True)
class Attribute:
    """A single data attribute (column).

    Parameters
    ----------
    name:
        Human-readable attribute name (e.g. ``"AGEP"``).
    attribute_type:
        Whether the attribute is categorical or numerical.  Numerical
        attributes are still discrete here (the ACS attributes are integer
        valued); the distinction only matters for default bucketization.
    values:
        The ordered domain of the attribute.  Encoded data stores the *index*
        into this tuple.
    bucket_size:
        If set, structure learning groups consecutive values into buckets of
        this many values.  ``None`` means the attribute is used un-bucketized.
    bucket_map:
        Explicit value-index -> bucket-index mapping.  Overrides
        ``bucket_size`` when provided (used e.g. for the education attribute
        whose buckets are semantic rather than uniform).
    """

    name: str
    attribute_type: AttributeType
    values: tuple = ()
    bucket_size: int | None = None
    bucket_map: tuple[int, ...] | None = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if len(self.values) == 0:
            raise ValueError(f"attribute {self.name!r} must have at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"attribute {self.name!r} has duplicate values")
        if self.bucket_size is not None and self.bucket_size < 1:
            raise ValueError("bucket_size must be a positive integer")
        if self.bucket_map is not None:
            if len(self.bucket_map) != len(self.values):
                raise ValueError(
                    f"bucket_map of attribute {self.name!r} must map every value"
                )
            buckets = set(self.bucket_map)
            if buckets != set(range(len(buckets))):
                raise ValueError(
                    f"bucket_map of attribute {self.name!r} must use contiguous "
                    "bucket indices starting at 0"
                )

    @property
    def cardinality(self) -> int:
        """Number of distinct values the attribute can take."""
        return len(self.values)

    @property
    def bucketized_cardinality(self) -> int:
        """Number of buckets used for structure learning."""
        if self.bucket_map is not None:
            return max(self.bucket_map) + 1
        if self.bucket_size is None:
            return self.cardinality
        return int(np.ceil(self.cardinality / self.bucket_size))

    def encode(self, raw_values: Iterable) -> np.ndarray:
        """Encode raw values to integer codes (indices into ``values``)."""
        lookup = {value: index for index, value in enumerate(self.values)}
        try:
            return np.array([lookup[v] for v in raw_values], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(
                f"value {exc.args[0]!r} is not in the domain of attribute {self.name!r}"
            ) from None

    def decode(self, codes: np.ndarray) -> list:
        """Decode integer codes back to raw values."""
        arr = np.asarray(codes, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= self.cardinality):
            raise ValueError(
                f"codes out of range [0, {self.cardinality}) for attribute {self.name!r}"
            )
        return [self.values[int(code)] for code in arr]

    def bucketize(self, codes: np.ndarray) -> np.ndarray:
        """Map encoded values to (coarser) bucket indices for structure learning."""
        arr = np.asarray(codes, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= self.cardinality):
            raise ValueError(
                f"codes out of range [0, {self.cardinality}) for attribute {self.name!r}"
            )
        if self.bucket_map is not None:
            mapping = np.asarray(self.bucket_map, dtype=np.int64)
            return mapping[arr]
        if self.bucket_size is None:
            return arr.copy()
        return arr // self.bucket_size


class Schema:
    """An ordered collection of attributes describing a dataset."""

    def __init__(self, attributes: Sequence[Attribute]):
        if not attributes:
            raise ValueError("a schema needs at least one attribute")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise ValueError("attribute names must be unique")
        self._attributes = tuple(attributes)
        self._index = {attribute.name: i for i, attribute in enumerate(attributes)}

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self):
        return iter(self._attributes)

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, str):
            return self._attributes[self.index_of(key)]
        return self._attributes[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __repr__(self) -> str:
        names = ", ".join(attribute.name for attribute in self._attributes)
        return f"Schema([{names}])"

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes, in column order."""
        return self._attributes

    @property
    def names(self) -> list[str]:
        """Attribute names in column order."""
        return [attribute.name for attribute in self._attributes]

    @property
    def cardinalities(self) -> list[int]:
        """Cardinality of each attribute, in column order."""
        return [attribute.cardinality for attribute in self._attributes]

    @property
    def bucketized_cardinalities(self) -> list[int]:
        """Bucketized cardinality of each attribute, in column order."""
        return [attribute.bucketized_cardinality for attribute in self._attributes]

    def index_of(self, name: str) -> int:
        """Column index of the attribute with the given name."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"schema has no attribute named {name!r}") from None

    def possible_records(self) -> int:
        """Size of the record universe (product of cardinalities, Table 2)."""
        total = 1
        for attribute in self._attributes:
            total *= attribute.cardinality
        return total
