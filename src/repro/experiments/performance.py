"""Figure 5: generation performance (model learning vs synthesis time).

The paper's Figure 5 plots the cumulative time to produce increasing numbers
of synthetic records (ω=9, k=50, γ=4), separating the one-off model-learning
cost from the per-record synthesis cost, and notes that generation is
embarrassingly parallel.  This experiment measures the same breakdown on the
scaled-down dataset and additionally reports the multi-process speed-up.
"""

from __future__ import annotations

import time

from repro.core.engine import SynthesisEngine
from repro.experiments.harness import ExperimentContext, ExperimentResult

__all__ = ["run_performance_measurement", "run_parallel_scaling"]


def run_performance_measurement(
    context: ExperimentContext | None = None,
    checkpoints: tuple[int, ...] = (250, 500, 1_000, 2_000),
    batch_size: int | None = 256,
) -> ExperimentResult:
    """Figure 5: cumulative time to synthesize increasing numbers of records.

    Uses the vectorized batched synthesis path by default (``batch_size=None``
    falls back to the single-record reference loop).
    """
    ctx = context if context is not None else ExperimentContext()

    learn_start = time.perf_counter()
    mechanism = ctx.mechanism("omega=9")
    model_learning_seconds = time.perf_counter() - learn_start

    result = ExperimentResult(
        name="Figure 5 — synthetic generation performance (omega=9, k=50, gamma=4)",
        headers=[
            "synthetics produced",
            "model learning (s)",
            "synthesis (s)",
            "total (s)",
            "records / second",
        ],
    )
    rng = ctx.rng(80)
    produced = 0
    synthesis_seconds = 0.0
    for checkpoint in sorted(checkpoints):
        batch = checkpoint - produced
        if batch <= 0:
            continue
        start = time.perf_counter()
        mechanism.run_attempts(batch, rng, batch_size=batch_size)
        synthesis_seconds += time.perf_counter() - start
        produced = checkpoint
        rate = produced / synthesis_seconds if synthesis_seconds > 0 else float("inf")
        result.add_row(
            produced,
            model_learning_seconds,
            synthesis_seconds,
            model_learning_seconds + synthesis_seconds,
            rate,
        )
    return result


def run_parallel_scaling(
    context: ExperimentContext | None = None,
    num_attempts: int = 1_000,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    batch_size: int | None = 256,
    chunk_size: int = 128,
) -> ExperimentResult:
    """Throughput of the parallel synthesis engine for several worker counts.

    Each worker count uses a persistent engine whose pool is started (and
    whose workers have attached the shared-memory seed matrix and model
    tables) before timing begins, so the numbers reflect steady-state chunk
    throughput rather than process startup.  The single-worker row is the
    in-process serial reference; every row produces the identical release
    set, so the speedup column is a pure scheduling measurement.
    """
    ctx = context if context is not None else ExperimentContext()
    model = ctx.model("omega=9")
    seeds = ctx.splits.seeds
    params = ctx.privacy_params()

    result = ExperimentResult(
        name="Figure 5 (companion) — parallel engine scaling",
        headers=["workers", "attempts", "seconds", "attempts / second", "speedup"],
        notes="the synthesis of each record is independent of all others",
    )
    baseline_seconds: float | None = None
    for workers in worker_counts:
        with SynthesisEngine(
            model,
            seeds,
            params,
            num_workers=workers,
            chunk_size=chunk_size,
            batch_size=batch_size,
        ) as engine:
            engine.start()
            start = time.perf_counter()
            report = engine.run_attempts(num_attempts, base_seed=ctx.seed)
            elapsed = time.perf_counter() - start
        if baseline_seconds is None:
            baseline_seconds = elapsed
        result.add_row(
            workers,
            report.num_attempts,
            elapsed,
            report.num_attempts / elapsed if elapsed > 0 else float("inf"),
            baseline_seconds / elapsed if elapsed > 0 else float("inf"),
        )
    return result
