"""Figure 6: fraction of candidate synthetics that pass the privacy test.

The paper sweeps the plausible-deniability threshold k for several ω values
(γ = 2) and reports the percentage of generated candidates that pass the
privacy test.  The pass rate falls as k grows (stricter privacy) and rises
with ω (the fewer attributes are copied from the seed, the more records are
plausible seeds), yet stays substantial even for strict settings — which is
what makes large-scale synthesis practical.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentContext, ExperimentResult
from repro.generative.bayesian_network import BayesianNetworkSynthesizer
from repro.privacy.plausible_deniability import batch_plausible_seed_counts

__all__ = ["run_pass_rate_sweep", "plausible_seed_counts", "pass_rate_for_parameters"]


def _omega_label(omega: int | tuple[int, ...]) -> str:
    if isinstance(omega, tuple):
        return f"omega in [{min(omega)}-{max(omega)}]"
    return f"omega={omega}"


def plausible_seed_counts(
    model: BayesianNetworkSynthesizer,
    seeds,
    num_candidates: int,
    gamma: float,
    rng: np.random.Generator,
    batch_size: int = 128,
) -> np.ndarray:
    """Plausible-seed count of ``num_candidates`` freshly generated candidates.

    For every candidate the count is the number of seed records whose
    generation probability falls into the same geometric bucket as the true
    seed's — the quantity the privacy test compares against k.  Computing the
    counts once lets a whole k-sweep reuse the same candidates.  Candidates
    are generated and evaluated through the model's vectorized batch path;
    ``batch_size`` bounds the (candidates x seeds) probability-matrix blocks.
    """
    counts = np.zeros(num_candidates, dtype=np.int64)
    produced = 0
    while produced < num_candidates:
        size = min(batch_size, num_candidates - produced)
        seed_indices = rng.integers(len(seeds), size=size)
        candidates = model.generate_batch(seeds.data[seed_indices], rng)
        matrix = model.batch_probability_matrix(seeds.data, candidates)
        counts[produced : produced + size], _, _, _ = batch_plausible_seed_counts(
            matrix[np.arange(size), seed_indices], matrix, gamma
        )
        produced += size
    return counts


def pass_rate_for_parameters(
    context: ExperimentContext,
    omega: int | tuple[int, ...],
    k: int,
    gamma: float,
    num_candidates: int,
    rng: np.random.Generator | None = None,
) -> float:
    """Fraction of candidates passing the deterministic test for one (k, γ, ω)."""
    generator = rng if rng is not None else context.rng(89)
    model = context.model_for_omega(omega)
    counts = plausible_seed_counts(
        model, context.splits.seeds, num_candidates, gamma, generator
    )
    return float(np.mean(counts >= k))


def run_pass_rate_sweep(
    context: ExperimentContext | None = None,
    k_values: tuple[int, ...] = (10, 25, 50, 100, 150, 250),
    omegas: tuple[int | tuple[int, ...], ...] = (7, 8, 9, 10, (5, 6, 7, 8, 9, 10, 11)),
    gamma: float = 2.0,
    num_candidates: int = 200,
) -> ExperimentResult:
    """Figure 6: pass-rate curves over k for each ω (γ = 2).

    Uses the deterministic privacy test so the sweep isolates the effect of k
    and ω (the randomized test adds threshold noise on top, which only blurs
    the curve near the threshold).
    """
    ctx = context if context is not None else ExperimentContext()

    headers = ["k"] + [_omega_label(omega) for omega in omegas]
    result = ExperimentResult(
        name="Figure 6 — privacy-test pass rate vs k (gamma=2)",
        headers=headers,
        notes="fraction of candidate synthetics passing the deterministic privacy test",
    )

    # Generate candidates once per omega; every k threshold reuses the counts.
    counts_per_omega = []
    for omega_index, omega in enumerate(omegas):
        model = ctx.model_for_omega(omega)
        counts = plausible_seed_counts(
            model, ctx.splits.seeds, num_candidates, gamma, ctx.rng(90 + omega_index)
        )
        counts_per_omega.append(counts)

    for k in k_values:
        rates = [float(np.mean(counts >= k)) for counts in counts_per_omega]
        result.add_row(k, *rates)
    return result
