"""Tables 1 and 2: dataset schema, cardinalities and cleaning statistics."""

from __future__ import annotations

from repro.datasets.acs import sample_raw_acs, clean_acs, MISSING
from repro.experiments.harness import ExperimentContext, ExperimentResult

__all__ = ["run_dataset_summary", "run_attribute_table"]


def run_attribute_table(context: ExperimentContext | None = None) -> ExperimentResult:
    """Table 1: the pre-processed ACS attributes, their types and cardinalities."""
    ctx = context if context is not None else ExperimentContext()
    result = ExperimentResult(
        name="Table 1 — pre-processed ACS13 attributes",
        headers=["attribute", "type", "cardinality", "bucketized cardinality"],
    )
    for attribute in ctx.dataset.schema:
        result.add_row(
            attribute.name,
            attribute.attribute_type.value,
            attribute.cardinality,
            attribute.bucketized_cardinality,
        )
    return result


def run_dataset_summary(context: ExperimentContext | None = None) -> ExperimentResult:
    """Table 2: extraction / cleaning statistics of the ACS-like dataset."""
    ctx = context if context is not None else ExperimentContext()
    raw = sample_raw_acs(ctx.num_raw_records, seed=ctx.seed)
    clean = clean_acs(raw)
    num_with_missing = int((raw == MISSING).any(axis=1).sum())

    result = ExperimentResult(
        name="Table 2 — ACS13 extraction and cleaning statistics",
        headers=["statistic", "value"],
        notes=(
            "the paper reports 3,132,796 raw / 1,494,974 clean records, "
            "~5.4e11 possible records and 68.4% unique records on the real ACS"
        ),
    )
    result.add_row("raw records", raw.shape[0])
    result.add_row("records dropped by cleaning", num_with_missing)
    result.add_row("clean records", len(clean))
    result.add_row("attributes", clean.num_attributes)
    result.add_row(
        "numerical attributes",
        sum(1 for a in clean.schema if a.attribute_type.value == "numerical"),
    )
    result.add_row(
        "categorical attributes",
        sum(1 for a in clean.schema if a.attribute_type.value == "categorical"),
    )
    result.add_row("possible records", clean.schema.possible_records())
    result.add_row("unique record fraction", round(clean.unique_fraction(), 4))
    result.add_row("classification task", "income class (WAGP)")
    return result
