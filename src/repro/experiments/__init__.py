"""Experiment harness: one module per table / figure of the paper's evaluation.

Every experiment exposes a ``run_*`` function that returns an
:class:`~repro.experiments.harness.ExperimentResult` — a named table of rows —
and the benchmarks under ``benchmarks/`` simply execute these functions and
print the resulting tables so the paper's artefacts can be regenerated with a
single command.

| Paper artefact | Module |
|---|---|
| Tables 1-2 (dataset)                  | :mod:`repro.experiments.dataset_summary` |
| Figure 1-2 (model accuracy)           | :mod:`repro.experiments.model_accuracy` |
| Figures 3-4 (statistical distance)    | :mod:`repro.experiments.statistical_distance` |
| Table 3 (classifiers)                 | :mod:`repro.experiments.classifier_comparison` |
| Table 4 (DP classifiers)              | :mod:`repro.experiments.dp_classifier_comparison` |
| Table 5 (distinguishing game)         | :mod:`repro.experiments.distinguishing` |
| Figure 5 (generation performance)     | :mod:`repro.experiments.performance` |
| Figure 6 (privacy-test pass rate)     | :mod:`repro.experiments.pass_rate` |
"""

from repro.experiments.classifier_comparison import run_classifier_comparison
from repro.experiments.dataset_summary import run_dataset_summary
from repro.experiments.distinguishing import run_distinguishing_game
from repro.experiments.dp_classifier_comparison import run_dp_classifier_comparison
from repro.experiments.harness import ExperimentContext, ExperimentResult
from repro.experiments.model_accuracy import run_model_accuracy, run_model_improvement
from repro.experiments.pass_rate import run_pass_rate_sweep
from repro.experiments.performance import run_performance_measurement
from repro.experiments.statistical_distance import (
    run_pairwise_distance,
    run_single_attribute_distance,
)

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "run_dataset_summary",
    "run_model_accuracy",
    "run_model_improvement",
    "run_single_attribute_distance",
    "run_pairwise_distance",
    "run_classifier_comparison",
    "run_dp_classifier_comparison",
    "run_distinguishing_game",
    "run_performance_measurement",
    "run_pass_rate_sweep",
]
