"""Table 5: the real-vs-synthetic distinguishing game.

A random forest and a classification tree are trained to distinguish real
records from generated ones.  High accuracy means the generated data is easy
to tell apart (bad); accuracy near 50% means the synthetics pass off as real.
The paper reports ~80% / 73% for marginals but only ~63% / 59% for the
Bayesian-network synthetics.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentContext, ExperimentResult, OMEGA_VARIANTS
from repro.ml.evaluation import distinguishing_game
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["run_distinguishing_game"]


def run_distinguishing_game(
    context: ExperimentContext | None = None,
    variants: list[str] | None = None,
    train_size_per_class: int | None = None,
    test_size_per_class: int | None = None,
) -> ExperimentResult:
    """Table 5: distinguishing accuracy of RF and Tree per generated dataset."""
    ctx = context if context is not None else ExperimentContext()
    selected = variants if variants is not None else list(OMEGA_VARIANTS)

    real = ctx.reals_dataset()
    candidates = {"marginals": ctx.marginals_dataset}
    for variant in selected:
        candidates[variant] = ctx.synthetic_dataset(variant)

    sizes = [len(real)] + [len(dataset) for dataset in candidates.values()]
    available = min(sizes)
    if train_size_per_class is None:
        train_size_per_class = max(10, int(available * 0.6))
    if test_size_per_class is None:
        test_size_per_class = max(5, int(available * 0.3))

    result = ExperimentResult(
        name="Table 5 — distinguishing game (real vs generated)",
        headers=["dataset", "RF accuracy", "Tree accuracy"],
        notes="0.5 = indistinguishable from real records; higher = easier to tell apart",
    )
    for name, dataset in candidates.items():
        needed = train_size_per_class + test_size_per_class
        if len(dataset) < needed or len(real) < needed:
            continue
        forest_accuracy = distinguishing_game(
            RandomForestClassifier(num_trees=15, max_depth=12, random_state=ctx.seed),
            real,
            dataset,
            train_size_per_class,
            test_size_per_class,
            ctx.rng(70),
        )
        tree_accuracy = distinguishing_game(
            DecisionTreeClassifier(max_depth=10, random_state=ctx.seed),
            real,
            dataset,
            train_size_per_class,
            test_size_per_class,
            ctx.rng(71),
        )
        result.add_row(name, forest_accuracy, tree_accuracy)
    return result
