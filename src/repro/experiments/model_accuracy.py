"""Figures 1 and 2: per-attribute accuracy of the generative model.

The measurement follows Section 6.2: pick records at random, ask the model for
the most likely value of one attribute given all the others, and record how
often that guess equals the true value.  Figure 2 compares the (un-noised)
generative model against a random forest trained to predict the same
attribute, the marginals baseline (predicting the marginal mode) and random
guessing; Figure 1 reports the relative improvement of the un-noised, ε=1-DP
and ε=0.1-DP models over the marginals.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset
from repro.experiments.harness import ExperimentContext, ExperimentResult
from repro.generative.bayesian_network import BayesianNetworkSynthesizer
from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network
from repro.generative.marginal import MarginalSynthesizer
from repro.ml.forest import RandomForestClassifier

__all__ = [
    "model_attribute_accuracy",
    "marginal_attribute_accuracy",
    "forest_attribute_accuracy",
    "run_model_accuracy",
    "run_model_improvement",
]


def _evaluation_sample(dataset: Dataset, count: int, rng: np.random.Generator) -> Dataset:
    return dataset.sample(min(count, len(dataset)), rng)


def model_attribute_accuracy(
    model: BayesianNetworkSynthesizer,
    evaluation: Dataset,
    attribute: int,
) -> float:
    """Fraction of evaluation records whose attribute the model predicts correctly."""
    correct = 0
    for row in range(len(evaluation)):
        record = evaluation.record(row)
        if model.most_likely_value(record, attribute) == int(record[attribute]):
            correct += 1
    return correct / max(1, len(evaluation))


def marginal_attribute_accuracy(
    marginal_model: MarginalSynthesizer, evaluation: Dataset, attribute: int
) -> float:
    """Accuracy of always predicting the marginal mode."""
    mode = marginal_model.most_likely_value(np.empty(0), attribute)
    return float(np.mean(evaluation.column(attribute) == mode)) if len(evaluation) else 0.0


def forest_attribute_accuracy(
    train: Dataset,
    evaluation: Dataset,
    attribute: int,
    num_trees: int = 10,
    max_depth: int = 10,
    seed: int = 0,
) -> float:
    """Accuracy of a random forest trained to predict the attribute from the rest."""
    feature_columns = [col for col in range(train.num_attributes) if col != attribute]
    forest = RandomForestClassifier(
        num_trees=num_trees, max_depth=max_depth, random_state=seed
    )
    forest.fit(train.data[:, feature_columns], train.data[:, attribute])
    predictions = forest.predict(evaluation.data[:, feature_columns])
    return float(np.mean(predictions == evaluation.data[:, attribute]))


def run_model_accuracy(
    context: ExperimentContext | None = None,
    num_eval_records: int = 400,
    forest_train_records: int = 5_000,
) -> ExperimentResult:
    """Figure 2: model accuracy per attribute vs random forest, marginals, random."""
    ctx = context if context is not None else ExperimentContext()
    schema = ctx.dataset.schema
    rng = ctx.rng(30)
    evaluation = _evaluation_sample(ctx.splits.test, num_eval_records, rng)

    # The un-noised generative model (Figure 2 uses the noiseless variant).
    unnoised = fit_bayesian_network(
        ctx.splits.structure,
        ctx.splits.parameters,
        spec=GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None),
        rng=ctx.rng(31),
    )
    marginal_model = ctx.marginal_model
    forest_train = _evaluation_sample(
        ctx.splits.structure.concat(ctx.splits.parameters), forest_train_records, ctx.rng(32)
    )

    result = ExperimentResult(
        name="Figure 2 — per-attribute model accuracy",
        headers=["attribute", "generative", "random forest", "marginals", "random"],
        notes="accuracy of predicting each attribute from the others",
    )
    for attribute in range(len(schema)):
        result.add_row(
            schema[attribute].name,
            model_attribute_accuracy(unnoised, evaluation, attribute),
            forest_attribute_accuracy(forest_train, evaluation, attribute, seed=ctx.seed),
            marginal_attribute_accuracy(marginal_model, evaluation, attribute),
            1.0 / schema[attribute].cardinality,
        )
    return result


def run_model_improvement(
    context: ExperimentContext | None = None,
    num_eval_records: int = 400,
    epsilons: tuple[float | None, ...] = (None, 1.0, 0.1),
    repeats: int = 3,
) -> ExperimentResult:
    """Figure 1: relative improvement of model accuracy over marginals.

    For every attribute and every privacy setting the improvement is the
    relative decrease of the model's prediction error with respect to the
    marginals baseline: (err_marginals - err_model) / err_marginals.  Noisy
    models are re-learned ``repeats`` times and averaged, mirroring the
    paper's 20 repetitions.
    """
    ctx = context if context is not None else ExperimentContext()
    schema = ctx.dataset.schema
    evaluation = _evaluation_sample(ctx.splits.test, num_eval_records, ctx.rng(33))
    marginal_model = ctx.marginal_model

    marginal_errors = np.array(
        [
            1.0 - marginal_attribute_accuracy(marginal_model, evaluation, attribute)
            for attribute in range(len(schema))
        ]
    )

    headers = ["attribute"] + [
        "no noise" if epsilon is None else f"epsilon={epsilon}" for epsilon in epsilons
    ]
    result = ExperimentResult(
        name="Figure 1 — relative improvement of model accuracy over marginals",
        headers=headers,
        notes="(marginal error - model error) / marginal error, per attribute",
    )

    improvements = np.zeros((len(schema), len(epsilons)))
    for setting_index, epsilon in enumerate(epsilons):
        num_runs = 1 if epsilon is None else repeats
        errors = np.zeros(len(schema))
        for run in range(num_runs):
            if epsilon is None:
                spec = GenerativeModelSpec(
                    omega=9, epsilon_structure=None, epsilon_parameters=None
                )
            else:
                from repro.generative.structure import StructureLearningConfig

                spec = GenerativeModelSpec.with_total_epsilon(
                    epsilon,
                    num_attributes=len(schema),
                    omega=9,
                    structure=StructureLearningConfig(max_table_cells=ctx.max_table_cells()),
                )
            model = fit_bayesian_network(
                ctx.splits.structure,
                ctx.splits.parameters,
                spec=spec,
                rng=ctx.rng(40 + 10 * setting_index + run),
            )
            for attribute in range(len(schema)):
                errors[attribute] += 1.0 - model_attribute_accuracy(
                    model, evaluation, attribute
                )
        errors /= num_runs
        with np.errstate(divide="ignore", invalid="ignore"):
            improvements[:, setting_index] = np.where(
                marginal_errors > 0, (marginal_errors - errors) / marginal_errors, 0.0
            )

    for attribute in range(len(schema)):
        result.add_row(
            schema[attribute].name,
            *[float(improvements[attribute, col]) for col in range(len(epsilons))],
        )
    return result
