"""Table 3: classifiers trained on reals / marginals / synthetics.

For each training dataset the experiment trains a classification tree, a
random forest and AdaBoostM1 on the income-class task and reports (a) accuracy
on held-out real records and (b) the agreement rate with the corresponding
classifier trained on real data.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.dataset import Dataset
from repro.experiments.harness import ExperimentContext, ExperimentResult, OMEGA_VARIANTS
from repro.ml.adaboost import AdaBoostM1Classifier
from repro.ml.base import Classifier
from repro.ml.encoding import attribute_features
from repro.ml.evaluation import agreement_rate
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["default_classifiers", "run_classifier_comparison"]

#: The classification target used throughout the ML evaluation.
TARGET_ATTRIBUTE = "WAGP"


def default_classifiers(seed: int = 0) -> dict[str, Callable[[], Classifier]]:
    """Factories for the three classifiers of Table 3."""
    return {
        "Tree": lambda: DecisionTreeClassifier(max_depth=10, random_state=seed),
        "RF": lambda: RandomForestClassifier(num_trees=15, max_depth=12, random_state=seed),
        "Ada": lambda: AdaBoostM1Classifier(num_rounds=20, base_max_depth=3, random_state=seed),
    }


def _fit(classifier: Classifier, train: Dataset) -> Classifier:
    features, labels, _ = attribute_features(train, TARGET_ATTRIBUTE)
    classifier.fit(features, labels)
    return classifier


def run_classifier_comparison(
    context: ExperimentContext | None = None,
    variants: list[str] | None = None,
    train_records: int | None = None,
) -> ExperimentResult:
    """Table 3: accuracy and agreement rate per training dataset and classifier."""
    ctx = context if context is not None else ExperimentContext()
    selected = variants if variants is not None else list(OMEGA_VARIANTS)
    factories = default_classifiers(ctx.seed)

    test = ctx.splits.test
    test_features, test_labels, _ = attribute_features(test, TARGET_ATTRIBUTE)

    training_sets: dict[str, Dataset] = {
        "reals": ctx.reals_dataset(train_records),
        "marginals": ctx.marginals_dataset,
    }
    for variant in selected:
        training_sets[variant] = ctx.synthetic_dataset(variant)

    # Reference classifiers trained on real data (for the agreement rate).
    reference = {
        name: _fit(factory(), training_sets["reals"]) for name, factory in factories.items()
    }

    headers = ["train dataset"]
    headers += [f"{name} accuracy" for name in factories]
    headers += [f"{name} agreement" for name in factories]
    result = ExperimentResult(
        name="Table 3 — classifier accuracy and agreement rate (income class)",
        headers=headers,
        notes="accuracy on held-out real records; agreement vs the reals-trained classifier",
    )

    for dataset_name, train in training_sets.items():
        if len(train) < 10:
            continue
        accuracies: list[float] = []
        agreements: list[float] = []
        for name, factory in factories.items():
            if dataset_name == "reals":
                classifier = reference[name]
            else:
                classifier = _fit(factory(), train)
            accuracies.append(accuracy(classifier.predict(test_features), test_labels))
            agreements.append(agreement_rate(classifier, reference[name], test, TARGET_ATTRIBUTE))
        result.add_row(dataset_name, *accuracies, *agreements)
    return result
