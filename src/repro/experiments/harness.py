"""Shared infrastructure for the evaluation experiments.

The individual experiment modules all need the same ingredients: the ACS-like
dataset, the fitted (DP) generative model, synthetic datasets for several ω
settings, and a marginals dataset.  :class:`ExperimentContext` builds those
lazily and caches them so a benchmark session that regenerates several tables
does not refit the model for each one.

Results are returned as :class:`ExperimentResult` tables that render to plain
text; the benchmarks print them so the paper's rows/series can be read off the
benchmark output directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.mechanism import SynthesisMechanism
from repro.core.run_store import RunStore
from repro.datasets.acs import load_acs
from repro.datasets.dataset import Dataset
from repro.datasets.splits import DataSplits, split_dataset
from repro.generative.bayesian_network import BayesianNetworkSynthesizer
from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network, fit_marginal_model
from repro.generative.marginal import MarginalSynthesizer
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

__all__ = ["ExperimentResult", "ExperimentContext", "OMEGA_VARIANTS"]


#: The synthetic-dataset variants reported throughout Section 6:
#: fixed ω ∈ {11, 10, 9} plus the two random-ω mixtures.
OMEGA_VARIANTS: dict[str, int | tuple[int, ...]] = {
    "omega=11": 11,
    "omega=10": 10,
    "omega=9": 9,
    "omega in [9-11]": (9, 10, 11),
    "omega in [5-11]": (5, 6, 7, 8, 9, 10, 11),
}


@dataclass
class ExperimentResult:
    """A named table of results (one row per configuration / attribute / ...)."""

    name: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: object) -> None:
        """Append one row; the number of values must match the headers."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} values per row, got {len(values)}"
            )
        self.rows.append(list(values))

    def column(self, header: str) -> list[object]:
        """All values of one named column."""
        try:
            index = self.headers.index(header)
        except ValueError:
            raise KeyError(f"no column named {header!r}") from None
        return [row[index] for row in self.rows]

    def row_by_key(self, key: object) -> list[object]:
        """The first row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row with key {key!r}")

    def to_text(self) -> str:
        """Render the table as aligned plain text."""
        def _format(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.4f}"
            return str(value)

        cells = [[_format(value) for value in row] for row in self.rows]
        widths = [
            max(len(header), *(len(row[col]) for row in cells)) if cells else len(header)
            for col, header in enumerate(self.headers)
        ]
        lines = [f"== {self.name} =="]
        lines.append("  ".join(header.ljust(width) for header, width in zip(self.headers, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


class ExperimentContext:
    """Lazily-built shared state for the evaluation experiments.

    Parameters
    ----------
    num_raw_records:
        Number of raw ACS-like records to sample (cleaning shrinks this a
        little).  The paper uses 3.1M; the default here keeps every benchmark
        comfortably laptop-sized while preserving all comparative trends.
    synthetic_records:
        Number of released synthetic records per ω variant.
    total_epsilon:
        Overall DP budget of the generative model (the paper's ε = 1).
    k, gamma, epsilon0:
        Plausible-deniability parameters (paper defaults: 50, 4, 1).
    seed:
        Master RNG seed; every derived computation is seeded from it.
    run_store:
        Optional :class:`~repro.core.run_store.RunStore`.  Fitted models and
        released synthetic datasets are stored as content-addressed artifacts
        keyed by the context's configuration and seed, so a second benchmark
        session — in this process or another — reuses them instead of
        refitting.
    dataset:
        An explicit input dataset to evaluate instead of the ACS-like sample
        (``num_raw_records`` is then ignored).  Used by the conformance
        scenario registry (:mod:`repro.testing.scenarios`) to drive the
        experiment harness over synthetic schema families; the dataset's
        content fingerprint becomes part of every artifact key so cached
        fits can never be confused with the ACS ones.
    """

    def __init__(
        self,
        num_raw_records: int = 400_000,
        synthetic_records: int = 3_000,
        total_epsilon: float = 1.0,
        k: int = 50,
        gamma: float = 4.0,
        epsilon0: float | None = 1.0,
        seed: int = 7,
        adaptive_table_cells: bool = True,
        run_store: "RunStore | None" = None,
        dataset: Dataset | None = None,
    ):
        self.num_raw_records = num_raw_records
        self.synthetic_records = synthetic_records
        self.total_epsilon = total_epsilon
        self.k = k
        self.gamma = gamma
        self.epsilon0 = epsilon0
        self.seed = seed
        self.adaptive_table_cells = adaptive_table_cells
        self.run_store = run_store
        self._dataset: Dataset | None = dataset
        self._dataset_provided = dataset is not None
        self._splits: DataSplits | None = None
        self._models: dict[str, BayesianNetworkSynthesizer] = {}
        self._marginal_model: MarginalSynthesizer | None = None
        self._synthetics: dict[str, Dataset] = {}
        self._marginals_dataset: Dataset | None = None
        self._accountant = PrivacyAccountant()

    # ------------------------------------------------------------------ #
    # Data
    # ------------------------------------------------------------------ #
    def rng(self, offset: int = 0) -> np.random.Generator:
        """A reproducible RNG stream derived from the master seed.

        Stream ``offset`` is the ``offset``-th spawned child of
        ``np.random.SeedSequence(self.seed)`` (constructed statelessly via
        its ``spawn_key``), so streams never collide across offsets *or*
        across adjacent master seeds — the additive ``seed + offset`` pattern
        this replaces made e.g. ``(seed=7, offset=1)`` and ``(seed=8,
        offset=0)`` the same stream.  Every stream (and therefore every
        derived dataset/model) differs from the additive scheme for a fixed
        seed; distributions are unchanged.
        """
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(offset,))
        )

    @property
    def dataset(self) -> Dataset:
        """The cleaned ACS-like dataset."""
        if self._dataset is None:
            self._dataset = load_acs(self.num_raw_records, seed=self.seed)
        return self._dataset

    @property
    def splits(self) -> DataSplits:
        """The DS / DT / DP / test splits."""
        if self._splits is None:
            self._splits = split_dataset(self.dataset, rng=self.rng(1))
        return self._splits

    @property
    def accountant(self) -> PrivacyAccountant:
        """Privacy ledger of the model fits performed by this context."""
        return self._accountant

    # ------------------------------------------------------------------ #
    # Models
    # ------------------------------------------------------------------ #
    def privacy_params(self, k: int | None = None, gamma: float | None = None) -> PlausibleDeniabilityParams:
        """The plausible-deniability parameters used by the context."""
        return PlausibleDeniabilityParams(
            k=k if k is not None else self.k,
            gamma=gamma if gamma is not None else self.gamma,
            epsilon0=self.epsilon0,
        )

    def generation_config(self) -> GenerationConfig:
        """A GenerationConfig mirroring the context's settings."""
        return GenerationConfig(
            privacy=self.privacy_params(),
            model=GenerativeModelSpec.with_total_epsilon(
                self.total_epsilon, num_attributes=len(self.dataset.schema), omega=9
            ),
        )

    def max_table_cells(self) -> int | None:
        """Scale-adaptive cap on conditional-table size (see DESIGN.md).

        The cap keeps the expected per-cell count comfortably above the
        Laplace noise scale of the DP parameter learning at the context's
        (smaller-than-paper) data scale; with ``adaptive_table_cells=False``
        the paper's unconstrained behaviour is used.
        """
        if not self.adaptive_table_cells:
            return None
        from repro.generative.builder import calibrate_parameter_epsilon

        epsilon_p = calibrate_parameter_epsilon(
            self.total_epsilon, len(self.dataset.schema)
        )
        return max(100, int(len(self.splits.parameters) * epsilon_p / 10))

    def model_spec(self, omega: int | Iterable[int]) -> GenerativeModelSpec:
        """A model spec for one ω variant with the context's total budget."""
        from repro.generative.structure import StructureLearningConfig

        return GenerativeModelSpec.with_total_epsilon(
            self.total_epsilon,
            num_attributes=len(self.dataset.schema),
            omega=omega,
            structure=StructureLearningConfig(max_table_cells=self.max_table_cells()),
        )

    def model(self, variant: str = "omega=9") -> BayesianNetworkSynthesizer:
        """The fitted DP generative model for one named ω variant."""
        if variant not in OMEGA_VARIANTS:
            raise KeyError(f"unknown omega variant {variant!r}")
        return self.model_for_omega(OMEGA_VARIANTS[variant], cache_key=variant)

    def _artifact_payload(self, omega: int | Iterable[int] | None = None) -> dict:
        """Everything a fitted artifact depends on, as a plain payload dict."""
        payload = {
            "num_raw_records": self.num_raw_records,
            "seed": self.seed,
            "total_epsilon": self.total_epsilon,
            "max_table_cells": self.max_table_cells(),
            # The rng() stream derivation is part of the fit's identity; bump
            # when the stream scheme changes so stale artifacts never match.
            "rng_scheme": "seedseq-spawn-v1",
        }
        if self._dataset_provided:
            from repro.core.run_store import dataset_fingerprint

            payload["dataset"] = dataset_fingerprint(self.dataset)
        if omega is not None:
            payload["omega"] = (
                [int(omega)]
                if isinstance(omega, (int, np.integer))
                else [int(value) for value in omega]
            )
        return payload

    def model_for_omega(
        self, omega: int | Iterable[int], cache_key: str | None = None
    ) -> BayesianNetworkSynthesizer:
        """The fitted DP generative model for an arbitrary ω setting.

        Cached in-process per ω variant and, with a run store attached,
        across processes: the fitted model and the privacy-ledger entries of
        its fit are stored under a content key derived from the context's
        configuration, so a second benchmark session loads instead of
        refitting.
        """
        key = cache_key if cache_key is not None else f"omega:{omega!r}"
        if key in self._models:
            return self._models[key]
        store_key = None
        if self.run_store is not None:
            store_key = RunStore.artifact_key(
                "context-model", self._artifact_payload(omega)
            )
            if self.run_store.has_artifact(store_key):
                artifact = self.run_store.load_artifact(store_key)
                self._accountant.entries.extend(artifact["accountant_entries"])
                self._models[key] = artifact["model"]
                return self._models[key]
        entries_before = len(self._accountant.entries)
        self._models[key] = fit_bayesian_network(
            self.splits.structure,
            self.splits.parameters,
            spec=self.model_spec(omega),
            accountant=self._accountant,
            rng=self.rng(2),
        )
        if store_key is not None:
            self.run_store.save_artifact(
                store_key,
                {
                    "model": self._models[key],
                    "accountant_entries": list(
                        self._accountant.entries[entries_before:]
                    ),
                },
            )
        return self._models[key]

    @property
    def marginal_model(self) -> MarginalSynthesizer:
        """The fitted DP marginals baseline."""
        if self._marginal_model is None:
            spec = self.model_spec(9)
            self._marginal_model = fit_marginal_model(
                self.splits.parameters,
                epsilon=spec.epsilon_parameters,
                rng=self.rng(3),
            )
        return self._marginal_model

    def mechanism(self, variant: str = "omega=9", k: int | None = None, gamma: float | None = None) -> SynthesisMechanism:
        """Mechanism 1 wired to the context's seed split and one ω variant."""
        return SynthesisMechanism(
            self.model(variant), self.splits.seeds, self.privacy_params(k, gamma)
        )

    # ------------------------------------------------------------------ #
    # Datasets for the utility experiments
    # ------------------------------------------------------------------ #
    def synthetic_dataset(self, variant: str = "omega=9") -> Dataset:
        """Released synthetic records for one ω variant.

        Cached in-process and, with a run store attached, across processes
        (content-keyed by the generation configuration and seed).
        """
        if variant in self._synthetics:
            return self._synthetics[variant]
        store_key = None
        if self.run_store is not None:
            payload = self._artifact_payload(OMEGA_VARIANTS[variant])
            payload.update(
                {
                    "variant": variant,
                    "synthetic_records": self.synthetic_records,
                    "k": self.k,
                    "gamma": self.gamma,
                    "epsilon0": self.epsilon0,
                }
            )
            store_key = RunStore.artifact_key("context-synthetic", payload)
            if self.run_store.has_artifact(store_key):
                self._synthetics[variant] = self.run_store.load_artifact(store_key)
                return self._synthetics[variant]
        mechanism = self.mechanism(variant)
        report = mechanism.generate(
            self.synthetic_records,
            self.rng(10 + list(OMEGA_VARIANTS).index(variant)),
            max_attempts=20 * self.synthetic_records,
        )
        self._synthetics[variant] = report.released_dataset()
        if store_key is not None:
            self.run_store.save_artifact(store_key, self._synthetics[variant])
        return self._synthetics[variant]

    @property
    def marginals_dataset(self) -> Dataset:
        """Records generated by the marginals baseline (cached)."""
        if self._marginals_dataset is None:
            data = self.marginal_model.generate_many(self.synthetic_records, self.rng(20))
            self._marginals_dataset = Dataset(self.dataset.schema, data)
        return self._marginals_dataset

    def reals_dataset(self, count: int | None = None) -> Dataset:
        """A sample of real (seed-split) records of the same size as the synthetics."""
        count = count if count is not None else self.synthetic_records
        count = min(count, len(self.splits.seeds))
        return self.splits.seeds.sample(count, self.rng(21))

    def comparison_datasets(
        self, variants: Sequence[str] | None = None
    ) -> dict[str, Dataset]:
        """Reals, marginals and the requested synthetic variants, keyed by name."""
        selected = list(variants) if variants is not None else list(OMEGA_VARIANTS)
        datasets: dict[str, Dataset] = {
            "reals": self.reals_dataset(),
            "marginals": self.marginals_dataset,
        }
        for variant in selected:
            datasets[variant] = self.synthetic_dataset(variant)
        return datasets
