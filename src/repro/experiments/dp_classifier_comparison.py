"""Table 4: DP-ERM classifiers on real data vs plain classifiers on synthetics.

Logistic regression and SVM classifiers are trained four ways:

* non-private, on real data,
* with output perturbation (ε-DP), on real data,
* with objective perturbation (ε-DP), on real data,
* non-private, on the marginals baseline and on each synthetic variant.

All use the Chaudhuri et al. preprocessing (one-hot + unit-norm rows) and the
regularization constant λ is selected from a small grid by maximizing the
accuracy of the non-private classifier, exactly as the paper does.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset
from repro.experiments.harness import ExperimentContext, ExperimentResult, OMEGA_VARIANTS
from repro.ml.dp_erm import DPTrainingConfig, objective_perturbation, output_perturbation
from repro.ml.encoding import prepare_erm_data
from repro.ml.linear import LinearSVMClassifier, LogisticRegressionClassifier

__all__ = ["select_regularization", "run_dp_classifier_comparison"]

TARGET_ATTRIBUTE = "WAGP"

#: λ grid of the paper (Section 6.3).
LAMBDA_GRID = (1e-3, 1e-4, 1e-5, 1e-6)


def _make_classifier(loss: str, regularization: float):
    if loss == "logistic":
        return LogisticRegressionClassifier(
            regularization=regularization, num_iterations=200, fit_intercept=False
        )
    return LinearSVMClassifier(
        regularization=regularization, num_iterations=200, fit_intercept=False
    )


def _erm_accuracy(classifier, features: np.ndarray, labels: np.ndarray) -> float:
    predictions = np.sign(classifier.decision_function(features))
    predictions[predictions == 0] = 1.0
    return float(np.mean(predictions == labels))


def select_regularization(
    loss: str,
    train_features: np.ndarray,
    train_labels: np.ndarray,
    test_features: np.ndarray,
    test_labels: np.ndarray,
    grid: tuple[float, ...] = LAMBDA_GRID,
) -> float:
    """Pick the λ maximizing the *non-private* classifier's accuracy (paper's rule)."""
    best_lambda = grid[0]
    best_accuracy = -1.0
    for regularization in grid:
        classifier = _make_classifier(loss, regularization)
        weights = classifier.train_weights(train_features, train_labels)
        classifier.set_weights(weights, classes=np.array([-1.0, 1.0]))
        score = _erm_accuracy(classifier, test_features, test_labels)
        if score > best_accuracy:
            best_accuracy = score
            best_lambda = regularization
    return best_lambda


def run_dp_classifier_comparison(
    context: ExperimentContext | None = None,
    variants: list[str] | None = None,
    epsilon: float = 1.0,
    train_records: int | None = None,
) -> ExperimentResult:
    """Table 4: LR / SVM accuracy for DP-ERM on reals vs plain training on synthetics."""
    ctx = context if context is not None else ExperimentContext()
    selected = variants if variants is not None else list(OMEGA_VARIANTS)

    real_train = ctx.reals_dataset(train_records)
    test = ctx.splits.test
    test_features, test_labels = prepare_erm_data(test, TARGET_ATTRIBUTE)
    real_features, real_labels = prepare_erm_data(real_train, TARGET_ATTRIBUTE)

    result = ExperimentResult(
        name="Table 4 — DP classifiers on reals vs classifiers on synthetics",
        headers=["training", "LR accuracy", "SVM accuracy"],
        notes=f"epsilon={epsilon}; lambda selected from {LAMBDA_GRID} on the non-private model",
    )

    accuracies: dict[str, dict[str, float]] = {}
    chosen_lambda: dict[str, float] = {}
    for loss in ("logistic", "svm"):
        chosen_lambda[loss] = select_regularization(
            loss, real_features, real_labels, test_features, test_labels
        )

    # Non-private and DP-ERM classifiers trained on real data.
    for label, trainer in (
        ("non-private (reals)", None),
        ("output perturbation (reals)", output_perturbation),
        ("objective perturbation (reals)", objective_perturbation),
    ):
        accuracies[label] = {}
        for loss in ("logistic", "svm"):
            config = DPTrainingConfig(
                epsilon=epsilon,
                regularization=chosen_lambda[loss],
                loss=loss,
                num_iterations=200,
            )
            if trainer is None:
                classifier = config.make_classifier()
                weights = classifier.train_weights(real_features, real_labels)
                classifier.set_weights(weights, classes=np.array([-1.0, 1.0]))
            else:
                classifier = trainer(real_features, real_labels, config, ctx.rng(60))
            accuracies[label][loss] = _erm_accuracy(classifier, test_features, test_labels)

    # Non-private classifiers trained on the synthetic / baseline datasets.
    synthetic_sets: dict[str, Dataset] = {"marginals": ctx.marginals_dataset}
    for variant in selected:
        synthetic_sets[variant] = ctx.synthetic_dataset(variant)
    for name, dataset in synthetic_sets.items():
        if len(dataset) < 10:
            continue
        features, labels = prepare_erm_data(dataset, TARGET_ATTRIBUTE)
        accuracies[name] = {}
        for loss in ("logistic", "svm"):
            classifier = _make_classifier(loss, chosen_lambda[loss])
            weights = classifier.train_weights(features, labels)
            classifier.set_weights(weights, classes=np.array([-1.0, 1.0]))
            accuracies[name][loss] = _erm_accuracy(classifier, test_features, test_labels)

    for label, scores in accuracies.items():
        result.add_row(label, scores["logistic"], scores["svm"])
    return result
