"""Figures 3 and 4: total variation distance between reals and other datasets.

For every comparison dataset (another sample of reals, the marginals baseline,
and the synthetics for each ω variant) the experiment computes the total
variation distance of the per-attribute marginals (Figure 3) and of the
per-attribute-pair joint distributions (Figure 4) against a reference sample
of real records, and summarizes the distribution of those distances.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset
from repro.experiments.harness import ExperimentContext, ExperimentResult, OMEGA_VARIANTS
from repro.stats.distance import pairwise_attribute_distances, single_attribute_distances

__all__ = [
    "distance_summary",
    "run_single_attribute_distance",
    "run_pairwise_distance",
]


def distance_summary(distances: list[float]) -> tuple[float, float, float, float]:
    """(mean, median, minimum, maximum) of a list of distances."""
    if not distances:
        return 0.0, 0.0, 0.0, 0.0
    values = np.asarray(distances, dtype=np.float64)
    return (
        float(values.mean()),
        float(np.median(values)),
        float(values.min()),
        float(values.max()),
    )


def _comparison_sets(
    ctx: ExperimentContext, variants: list[str] | None
) -> tuple[Dataset, dict[str, Dataset]]:
    """Reference reals plus every comparison dataset keyed by display name."""
    selected = variants if variants is not None else list(OMEGA_VARIANTS)
    reference = ctx.reals_dataset()
    comparisons: dict[str, Dataset] = {
        # A second, disjointly-sampled set of reals gives the noise floor.
        "reals": ctx.splits.test.sample(
            min(ctx.synthetic_records, len(ctx.splits.test)), ctx.rng(50)
        ),
        "marginals": ctx.marginals_dataset,
    }
    for variant in selected:
        comparisons[variant] = ctx.synthetic_dataset(variant)
    return reference, comparisons


def run_single_attribute_distance(
    context: ExperimentContext | None = None,
    variants: list[str] | None = None,
) -> ExperimentResult:
    """Figure 3: statistical distance of individual-attribute distributions."""
    ctx = context if context is not None else ExperimentContext()
    reference, comparisons = _comparison_sets(ctx, variants)
    cardinalities = ctx.dataset.schema.cardinalities

    result = ExperimentResult(
        name="Figure 3 — statistical distance, single attributes",
        headers=["dataset", "mean", "median", "min", "max"],
        notes="total variation distance of each attribute's marginal vs a real sample",
    )
    for name, dataset in comparisons.items():
        if len(dataset) == 0:
            continue
        distances = single_attribute_distances(reference.data, dataset.data, cardinalities)
        result.add_row(name, *distance_summary(distances))
    return result


def run_pairwise_distance(
    context: ExperimentContext | None = None,
    variants: list[str] | None = None,
) -> ExperimentResult:
    """Figure 4: statistical distance of attribute-pair joint distributions."""
    ctx = context if context is not None else ExperimentContext()
    reference, comparisons = _comparison_sets(ctx, variants)
    cardinalities = ctx.dataset.schema.cardinalities

    result = ExperimentResult(
        name="Figure 4 — statistical distance, attribute pairs",
        headers=["dataset", "mean", "median", "min", "max"],
        notes="total variation distance of each attribute pair's joint vs a real sample",
    )
    for name, dataset in comparisons.items():
        if len(dataset) == 0:
            continue
        distances = list(
            pairwise_attribute_distances(reference.data, dataset.data, cardinalities).values()
        )
        result.add_row(name, *distance_summary(distances))
    return result
