"""repro — Plausible Deniability for Privacy-Preserving Data Synthesis.

A from-scratch Python reproduction of Bindschaedler, Shokri and Gunter,
"Plausible Deniability for Privacy-Preserving Data Synthesis" (VLDB 2017).

The public API groups into:

* :mod:`repro.datasets` — schemas, encoded datasets and the ACS-like census
  data used throughout the evaluation;
* :mod:`repro.stats` — entropy / correlation / distribution-distance measures;
* :mod:`repro.privacy` — the Laplace mechanism, DP composition, and the
  plausible-deniability criterion with its deterministic and randomized
  privacy tests (Theorem 1);
* :mod:`repro.generative` — the seed-based Bayesian-network synthesizer, the
  marginals baseline and their differentially-private learners;
* :mod:`repro.core` — Mechanism 1 and the end-to-end synthesis pipeline;
* :mod:`repro.ml` — from-scratch classifiers used by the utility evaluation;
* :mod:`repro.experiments` — one module per table / figure of the paper.

Quickstart::

    import numpy as np
    from repro.datasets import load_acs
    from repro.core import SynthesisPipeline, GenerationConfig

    data = load_acs(num_records=20_000, seed=7)
    pipeline = SynthesisPipeline(
        data, GenerationConfig.paper_defaults(), rng=np.random.default_rng(0)
    )
    report = pipeline.generate(num_records=500)
    synthetic = report.released_dataset()
"""

from repro.core import (
    GenerationConfig,
    RunStore,
    SynthesisEngine,
    SynthesisMechanism,
    SynthesisPipeline,
)
from repro.datasets import ACS_SCHEMA, Dataset, Schema, load_acs
from repro.generative import (
    BayesianNetworkSynthesizer,
    GenerativeModelSpec,
    MarginalSynthesizer,
    fit_bayesian_network,
    fit_marginal_model,
)
from repro.privacy import (
    PlausibleDeniabilityParams,
    theorem1_guarantee,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Dataset",
    "Schema",
    "ACS_SCHEMA",
    "load_acs",
    "GenerationConfig",
    "RunStore",
    "SynthesisEngine",
    "SynthesisMechanism",
    "SynthesisPipeline",
    "BayesianNetworkSynthesizer",
    "MarginalSynthesizer",
    "GenerativeModelSpec",
    "fit_bayesian_network",
    "fit_marginal_model",
    "PlausibleDeniabilityParams",
    "theorem1_guarantee",
]
