"""Text and JSON reporters for lint results."""

from __future__ import annotations

from repro.analysis.core import LintResult

__all__ = ["render_json", "render_text"]

REPORT_VERSION = 1


def render_text(result: LintResult, verbose_clean: bool = True) -> str:
    """Human-readable report: one line per finding, grouped by file."""
    lines: list[str] = []
    current_file = None
    for finding in result.findings:
        if finding.path != current_file:
            if current_file is not None:
                lines.append("")
            current_file = finding.path
        lines.append(
            f"{finding.location}  {finding.rule}  {finding.message}"
            + (f"  [{finding.symbol}]" if finding.symbol else "")
        )
    for error in result.parse_errors:
        lines.append(f"parse error: {error}")
    if lines:
        lines.append("")
    counts = result.counts
    if counts:
        summary = ", ".join(f"{rule}: {count}" for rule, count in counts.items())
        lines.append(
            f"{sum(counts.values())} finding(s) in {result.files_scanned} "
            f"file(s) ({summary})"
        )
    elif verbose_clean:
        lines.append(
            f"clean: {result.files_scanned} file(s), "
            f"{result.inline_suppressed} inline suppression(s), "
            f"{result.baseline_suppressed} baselined"
        )
    for stale in result.stale_baseline_keys:
        lines.append(f"warning: stale baseline entry (no longer fires): {stale}")
    return "\n".join(lines)


def render_json(result: LintResult) -> dict:
    """Machine-readable report (the CI artifact format)."""
    return {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "findings": [finding.to_dict() for finding in result.findings],
        "counts": result.counts,
        "inline_suppressed": result.inline_suppressed,
        "baseline_suppressed": result.baseline_suppressed,
        "stale_baseline_keys": result.stale_baseline_keys,
        "parse_errors": result.parse_errors,
    }
