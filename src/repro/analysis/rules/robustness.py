"""Robustness rules (family ``robust``).

The fault-tolerance layer only works if failures surface: a worker death,
a lost chunk, or a journal write error that is silently swallowed turns a
recoverable fault into a wrong answer.  Inside the production packages
(``core/``, ``service/``) a bare/broad exception handler whose body is just
``pass`` hides exactly those signals, so it must either name the specific
exception it means to ignore or carry an explicit
``# repro: allow[robust-swallowed-exception]`` acknowledging the swallow
(legitimate only on best-effort shutdown paths).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceModule, register

#: Exception names considered "broad": catching these (or catching nothing)
#: swallows unexpected faults rather than one anticipated condition.
_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare `except:`
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", None)
        if name in _BROAD_NAMES:
            return True
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing: ``pass``/``...`` (an initial
    docstring-style string constant is ignored)."""
    body = handler.body
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if not body:
        return True
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


@register
class SwallowedExceptionRule(Rule):
    """Broad except-and-pass handlers in production packages hide faults."""

    id = "robust-swallowed-exception"
    family = "robust"
    summary = (
        "a bare or broad (Exception/BaseException) handler in core/ or "
        "service/ swallows the exception with a pass-only body"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.is_test:
            return
        if not module.package_rel.startswith(("core/", "service/")):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and _swallows(node):
                caught = (
                    "a bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                yield self.finding(
                    module,
                    node,
                    f"{caught} with a pass-only body silently swallows "
                    "faults; catch the specific exception, handle it, or "
                    "annotate the swallow with "
                    "`# repro: allow[robust-swallowed-exception]`",
                )
