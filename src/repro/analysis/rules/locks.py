"""Lock discipline rules (family ``lock``).

The serving layer's budget arithmetic is only sound because every read and
write of shared session/registry state happens under one lock.  Attributes
declared shared via ``# repro: guarded-by[<lock>]`` may only be touched
lexically inside ``with self.<lock>:`` (or from a method annotated
``# repro: requires-lock[<lock>]``, whose callers must in turn hold the
lock), and a class owning a lock must strip it in ``__getstate__`` rather
than let pickling walk into an unpicklable — and semantically unshareable —
synchronization primitive.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    call_terminal_name,
    dotted_name,
    register,
)

#: Methods where unguarded access is legitimate: construction and pickling
#: happen before/outside any sharing.
_EXEMPT_METHODS = {
    "__init__",
    "__post_init__",
    "__new__",
    "__getstate__",
    "__setstate__",
    "__reduce__",
    "__del__",
}

_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassFacts:
    """Annotations and lock inventory of one class."""

    def __init__(self, node: ast.ClassDef):
        self.node = node
        self.guarded: dict[str, str] = {}  # attr -> lock name
        self.requires: dict[str, str] = {}  # method -> lock name
        self.lock_attrs: set[str] = set()
        self.aliases: dict[str, str] = {}  # condition attr -> wrapped lock attr
        self.methods: list[ast.FunctionDef | ast.AsyncFunctionDef] = []


def _collect_class_facts(module: SourceModule, node: ast.ClassDef) -> _ClassFacts:
    facts = _ClassFacts(node)
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.methods.append(child)
            lock = module.annotation_for_def(child, module.requires_lock)
            if lock:
                facts.requires[child.name] = lock
        elif isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
            lock = module.guarded_by.get(child.lineno)
            if lock:
                facts.guarded[child.target.id] = lock
        elif isinstance(child, ast.Assign):
            lock = module.guarded_by.get(child.lineno)
            if lock:
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        facts.guarded[target.id] = lock
    # self.<attr> = ... assignments anywhere in the class pick up same-line
    # guarded-by annotations and reveal which attributes hold locks.
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            lock = module.guarded_by.get(stmt.lineno)
            if lock:
                facts.guarded[attr] = lock
            if (
                isinstance(stmt.value, ast.Call)
                and call_terminal_name(stmt.value) in _LOCK_CONSTRUCTORS
            ):
                dotted = dotted_name(stmt.value.func) or ""
                if dotted.startswith("threading.") or isinstance(
                    stmt.value.func, ast.Name
                ):
                    facts.lock_attrs.add(attr)
                    # A Condition built on an owned lock shares it: entering
                    # `with self.<cond>:` acquires the wrapped lock too.
                    if call_terminal_name(stmt.value) == "Condition":
                        wrapped = (
                            _self_attr(stmt.value.args[0])
                            if stmt.value.args
                            else None
                        )
                        if wrapped is not None:
                            facts.aliases[attr] = wrapped
    return facts


def _locks_entered(
    with_node: ast.With | ast.AsyncWith, facts: _ClassFacts
) -> set[str]:
    held: set[str] = set()
    for item in with_node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None:
            held.add(attr)
            wrapped = facts.aliases.get(attr)
            if wrapped is not None:
                held.add(wrapped)
    return held


@register
class GuardedAttrRule(Rule):
    """Guarded attributes may only be touched under their declared lock."""

    id = "lock-guarded-attr"
    family = "lock"
    summary = (
        "an attribute declared `# repro: guarded-by[lock]` is read or written "
        "outside a `with self.<lock>:` block"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                facts = _collect_class_facts(module, node)
                if facts.guarded:
                    yield from self._check_class(module, facts)

    def _check_class(self, module: SourceModule, facts: _ClassFacts) -> Iterator[Finding]:
        for method in facts.methods:
            if method.name in _EXEMPT_METHODS:
                continue
            held: set[str] = set()
            lock = facts.requires.get(method.name)
            if lock:
                held = {lock}
            yield from self._walk(module, facts, method.body, held, method.name)

    def _walk(
        self,
        module: SourceModule,
        facts: _ClassFacts,
        body: list[ast.stmt],
        held: set[str],
        method_name: str,
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held | _locks_entered(stmt, facts)
                for item in stmt.items:  # guarded state in the context exprs
                    yield from self._check_expr(module, facts, item.context_expr, held, method_name)
                yield from self._walk(module, facts, stmt.body, inner, method_name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A closure may run on another thread; require its own lock.
                yield from self._walk(module, facts, stmt.body, set(), method_name)
            else:
                for child_body in self._sub_bodies(stmt):
                    yield from self._walk(module, facts, child_body, held, method_name)
                yield from self._check_stmt_exprs(module, facts, stmt, held, method_name)

    @staticmethod
    def _sub_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies = []
        for attr in ("body", "orelse", "finalbody"):
            value = getattr(stmt, attr, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                bodies.append(value)
        for handler in getattr(stmt, "handlers", []):
            bodies.append(handler.body)
        return bodies

    def _check_stmt_exprs(
        self, module, facts, stmt: ast.stmt, held: set[str], method_name: str
    ) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, (ast.stmt, ast.excepthandler)):
                continue  # handled by the recursive statement walk
            yield from self._check_expr(module, facts, node, held, method_name)

    def _check_expr(
        self, module, facts, expr: ast.AST, held: set[str], method_name: str
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            attr = _self_attr(node)
            if attr is None or attr not in facts.guarded:
                continue
            lock = facts.guarded[attr]
            if lock not in held:
                yield self.finding(
                    module,
                    node,
                    f"self.{attr} is guarded-by[{lock}] but "
                    f"{facts.node.name}.{method_name} touches it without "
                    f"holding self.{lock}",
                )


@register
class RequiresLockCallRule(Rule):
    """Methods annotated requires-lock must be called with the lock held."""

    id = "lock-requires-held"
    family = "lock"
    summary = (
        "a method annotated `# repro: requires-lock[lock]` is called outside "
        "a `with self.<lock>:` block"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                facts = _collect_class_facts(module, node)
                if facts.requires:
                    yield from self._check_class(module, facts)

    def _check_class(self, module, facts: _ClassFacts) -> Iterator[Finding]:
        for method in facts.methods:
            if method.name in _EXEMPT_METHODS:
                continue
            held: set[str] = set()
            lock = facts.requires.get(method.name)
            if lock:
                held = {lock}
            yield from self._walk(module, facts, method.body, held, method.name)

    def _walk(self, module, facts, body, held, method_name) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held | _locks_entered(stmt, facts)
                yield from self._walk(module, facts, stmt.body, inner, method_name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk(module, facts, stmt.body, set(), method_name)
            else:
                for child_body in GuardedAttrRule._sub_bodies(stmt):
                    yield from self._walk(module, facts, child_body, held, method_name)
                yield from self._check_calls(module, facts, stmt, held, method_name)

    def _check_calls(self, module, facts, stmt, held, method_name) -> Iterator[Finding]:
        # Only the statement's direct expression children: nested statements
        # are reached by the recursive _walk with their own held set.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.excepthandler)):
                continue
            for node in ast.walk(child):
                if not isinstance(node, ast.Call):
                    continue
                attr = _self_attr(node.func)
                if attr is None or attr not in facts.requires:
                    continue
                lock = facts.requires[attr]
                if lock not in held:
                    yield self.finding(
                        module,
                        node,
                        f"self.{attr}() requires-lock[{lock}] but "
                        f"{facts.node.name}.{method_name} calls it without "
                        f"holding self.{lock}",
                    )


@register
class LockPickleRule(Rule):
    """``__getstate__``/``__reduce__`` must never pickle a lock."""

    id = "lock-pickle"
    family = "lock"
    summary = (
        "a class owning a threading lock defines __getstate__/__reduce__ "
        "without stripping the lock from the pickled state"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            facts = _collect_class_facts(module, node)
            locks = facts.lock_attrs | set(facts.guarded.values()) | set(
                facts.requires.values()
            )
            if not locks:
                continue
            for method in facts.methods:
                if method.name == "__getstate__":
                    removed = self._removed_keys(method)
                    for lock in sorted(locks - removed):
                        yield self.finding(
                            module,
                            method,
                            f"{node.name}.__getstate__ does not remove the "
                            f"lock attribute {lock!r}; pickling a lock "
                            "carries live synchronization state across "
                            "process boundaries",
                        )
                elif method.name in ("__reduce__", "__reduce_ex__"):
                    yield self.finding(
                        module,
                        method,
                        f"{node.name}.{method.name} on a lock-owning class "
                        "bypasses __getstate__ lock stripping; implement "
                        "__getstate__/__setstate__ instead",
                    )

    @staticmethod
    def _removed_keys(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        removed: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Delete):  # del state["_lock"]
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        removed.add(target.slice.value)
            elif isinstance(node, ast.Call) and call_terminal_name(node) == "pop":
                if node.args and isinstance(node.args[0], ast.Constant):
                    if isinstance(node.args[0].value, str):
                        removed.add(node.args[0].value)
        return removed
