"""Privacy-spend dataflow rules (family ``privacy``).

The Theorem-1 accounting story requires every noise draw to be visible to a
:class:`~repro.privacy.accountant.PrivacyAccountant`: a noise primitive may
only run in a frame from which a ``spend``/``reserve`` record is reachable,
and composed guarantees must never be read before the spend that backs them
has been recorded.  The pass is intraprocedural with a module-local call
graph: a function that draws noise is clean when it records spend itself or
when every path to it from this module's public surface goes through a frame
that does.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    call_terminal_name,
    register,
)

#: Calls that draw calibrated noise (the DP primitives of the codebase).
_NOISE_FUNCS = {"laplace_noise", "laplace_mechanism", "sample_dirichlet_rows"}

#: Direct generator draws that are noise in this codebase's DP modules.
_NOISE_METHODS = {"laplace"}

#: Accountant methods that record an expenditure.
_SPEND_METHODS = {"spend", "reserve"}

#: Accountant methods that read a composed guarantee.
_GUARANTEE_METHODS = {"total_guarantee", "phase_guarantee", "scope_guarantee"}

#: Package-relative path prefixes the taint pass runs over.
_SCOPED_PREFIXES = ("privacy/", "generative/", "core/")


def _in_scope(module: SourceModule) -> bool:
    rel = module.package_rel
    return any(rel.startswith(prefix) for prefix in _SCOPED_PREFIXES)


def _top_level_functions(module: SourceModule) -> list[ast.AST]:
    """Module functions and methods, with nested defs folded into their owner."""
    owners: list[ast.AST] = []
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            owners.append(node)
        elif isinstance(node, ast.ClassDef):
            owners.extend(
                child
                for child in node.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
    return owners


class _Frame:
    """Per-function facts for the taint pass."""

    def __init__(self, node):
        self.node = node
        self.noise_calls: list[tuple[ast.Call, str]] = []
        self.records_spend = False
        self.callees: set[str] = set()


def _analyze_frame(node: ast.AST) -> _Frame:
    frame = _Frame(node)
    params = {arg.arg for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs}
    if "accountant" in params:
        frame.records_spend = True
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and "accountant" in child.attr.lower():
            # Holding (or forwarding) an accountant attribute counts as being
            # inside the accounting boundary — e.g. builders that hand the
            # accountant to a learner which records on its behalf.
            frame.records_spend = True
        if isinstance(child, ast.Name) and child.id == "accountant":
            frame.records_spend = True
        if not isinstance(child, ast.Call):
            continue
        terminal = call_terminal_name(child)
        if terminal is None:
            continue
        if terminal in _SPEND_METHODS and isinstance(child.func, ast.Attribute):
            frame.records_spend = True
        if terminal in _NOISE_FUNCS:
            frame.noise_calls.append((child, f"{terminal}()"))
        elif terminal in _NOISE_METHODS and isinstance(child.func, ast.Attribute):
            receiver = child.func.value
            if isinstance(receiver, ast.Name):
                frame.noise_calls.append((child, f"{receiver.id}.{terminal}()"))
        frame.callees.add(terminal)
    return frame


@register
class UnrecordedNoiseRule(Rule):
    """Noise draws must be reachable from a frame that records spend."""

    id = "privacy-unrecorded-noise"
    family = "privacy"
    summary = (
        "a DP noise primitive runs with no PrivacyAccountant spend/reserve "
        "recorded in the frame or any local caller"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        frames = {node.name: _analyze_frame(node) for node in _top_level_functions(module)}
        # callers[f] = local functions whose bodies call f.
        callers: dict[str, set[str]] = {name: set() for name in frames}
        for name, frame in frames.items():
            for callee in frame.callees:
                if callee in callers:
                    callers[callee].add(name)
        for name, frame in frames.items():
            if not frame.noise_calls:
                continue
            if name in _NOISE_FUNCS:
                continue  # the definition of the primitive itself
            if self._accounted(name, frames, callers):
                continue
            call, label = frame.noise_calls[0]
            yield self.finding(
                module,
                call,
                f"{label} in {name!r} is not reachable from any frame that "
                "records a PrivacyAccountant spend/reserve; record the "
                "expenditure or thread an accountant through",
            )

    @staticmethod
    def _accounted(name: str, frames: dict, callers: dict) -> bool:
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if frames[current].records_spend:
                return True
            stack.extend(callers.get(current, ()))
        return False


@register
class ReadBeforeSpendRule(Rule):
    """No code path may read a composed guarantee before its spend commits."""

    id = "privacy-read-before-spend"
    family = "privacy"
    summary = (
        "a guarantee is read earlier in the function than a later spend; the "
        "read sees a ledger that is still missing budget entries"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        for node in _top_level_functions(module):
            spends: list[ast.Call] = []
            reads: list[ast.Call] = []
            for child in ast.walk(node):
                if not isinstance(child, ast.Call):
                    continue
                terminal = call_terminal_name(child)
                if terminal in _SPEND_METHODS and isinstance(child.func, ast.Attribute):
                    spends.append(child)
                elif terminal in _GUARANTEE_METHODS:
                    reads.append(child)
            if not spends or not reads:
                continue
            last_spend = max(call.lineno for call in spends)
            for read in reads:
                if read.lineno < last_spend:
                    yield self.finding(
                        module,
                        read,
                        f"{call_terminal_name(read)}() is read before the "
                        f"spend recorded at line {last_spend} commits; move "
                        "the read after every spend on this path",
                    )
