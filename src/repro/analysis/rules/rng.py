"""RNG hygiene rules (family ``rng``).

Bit-identical parallel synthesis requires every stochastic code path to draw
from an explicitly threaded ``numpy`` Generator: global module-level streams
(``np.random.*``, stdlib ``random``) are process-wide hidden state, and
``default_rng()`` with a constant (or no) seed silently pins — or worse,
unpins — a stream the caller believes they control.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    call_terminal_name,
    dotted_name,
    register,
)

#: numpy.random attributes that construct explicit generators (allowed).
_GENERATOR_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",
}

#: stdlib ``random`` functions that touch the global Mersenne-Twister state.
_STDLIB_RANDOM_FUNCS = {
    "seed",
    "random",
    "randint",
    "randrange",
    "getrandbits",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
}

#: Generator methods that consume randomness from their receiver.
_STOCHASTIC_METHODS = {
    "laplace",
    "integers",
    "random",
    "choice",
    "shuffle",
    "permutation",
    "permuted",
    "normal",
    "standard_normal",
    "uniform",
    "standard_gamma",
    "gamma",
    "dirichlet",
    "multinomial",
    "binomial",
    "poisson",
    "exponential",
    "geometric",
    "beta",
    "bytes",
}

#: repro functions that consume randomness through an rng argument.
_STOCHASTIC_REPRO_FUNCS = {
    "laplace_noise",
    "laplace_mechanism",
    "sample_dirichlet_rows",
    "chunk_rng",
    "stratified_sample_indices",
}

#: Parameter names through which randomness legitimately flows in.
_RNG_PARAM_MARKERS = ("rng", "seed", "random_state", "generator")


def _has_rng_marker(name: str) -> bool:
    return any(marker in name for marker in _RNG_PARAM_MARKERS)


@register
class RngModuleCallRule(Rule):
    """Forbid module-level random calls (``np.random.normal``, ``random.seed``)."""

    id = "rng-module-call"
    family = "rng"
    summary = (
        "module-level RNG call draws from hidden global state; thread an "
        "explicit np.random.Generator instead"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        imports_stdlib_random = any(
            isinstance(node, ast.Import)
            and any(alias.name == "random" for alias in node.names)
            for node in ast.walk(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _GENERATOR_CONSTRUCTORS
            ):
                yield self.finding(
                    module,
                    node,
                    f"call to {dotted}() uses numpy's global RNG state; draw "
                    "from an explicit np.random.Generator passed by the caller",
                )
            elif (
                imports_stdlib_random
                and len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _STDLIB_RANDOM_FUNCS
            ):
                yield self.finding(
                    module,
                    node,
                    f"call to {dotted}() mutates the stdlib global RNG; use an "
                    "explicit np.random.Generator",
                )


def _constant_int(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, int)


def _hidden_constant_seed(arg: ast.AST) -> bool:
    """True for seed expressions that bottom out in a literal int on some path."""
    if _constant_int(arg):
        return True
    if isinstance(arg, ast.IfExp):
        return _hidden_constant_seed(arg.body) or _hidden_constant_seed(arg.orelse)
    if isinstance(arg, ast.BoolOp):
        return any(_hidden_constant_seed(value) for value in arg.values)
    return False


@register
class RngConstantSeedRule(Rule):
    """Forbid ``default_rng()`` with a constant or missing seed outside tests."""

    id = "rng-constant-seed"
    family = "rng"
    summary = (
        "default_rng() with a constant/no seed hides the stream from the "
        "caller; require an explicit rng or seed argument"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_terminal_name(node) != "default_rng":
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "default_rng() without a seed is nondeterministic; thread "
                    "the caller's rng or seed through",
                )
            elif node.args and _hidden_constant_seed(node.args[0]):
                yield self.finding(
                    module,
                    node,
                    "default_rng(<constant>) pins a hidden fixed stream; "
                    "require the caller to pass rng/seed explicitly",
                )


class _FunctionInfo:
    """Stochastic calls and visible randomness sources of one function."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef):
        self.node = node
        self.stochastic_calls: list[tuple[ast.Call, str]] = []
        self.has_source = False

    @staticmethod
    def param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        args = node.args
        every = args.posonlyargs + args.args + args.kwonlyargs
        names = [arg.arg for arg in every]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@register
class RngMissingParamRule(Rule):
    """Functions that consume randomness must receive an rng/seed explicitly."""

    id = "rng-missing-param"
    family = "rng"
    summary = (
        "function draws randomness but exposes no rng/seed parameter, so "
        "callers cannot control (or reproduce) its stream"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info = self._analyze(module, node)
            if not info.stochastic_calls or info.has_source:
                continue
            call, label = info.stochastic_calls[0]
            yield self.finding(
                module,
                call,
                f"function {node.name!r} consumes randomness ({label}) but "
                "takes no explicit rng/seed parameter and reads no seed "
                "attribute; thread the caller's generator through",
            )

    def _analyze(
        self, module: SourceModule, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> _FunctionInfo:
        info = _FunctionInfo(node)
        visible: set[str] = set(_FunctionInfo.param_names(node))
        # Closures may capture the enclosing function's rng legitimately.
        enclosing = module.enclosing_function(node)
        while enclosing is not None:
            visible.update(_FunctionInfo.param_names(enclosing))
            enclosing = module.enclosing_function(enclosing)
        if any(_has_rng_marker(name) for name in visible):
            info.has_source = True
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute) and _has_rng_marker(child.attr):
                # e.g. self.random_state, self._rng, job.base_seed: the stream
                # is explicitly plumbed through visible state, not ambient.
                info.has_source = True
            if not isinstance(child, ast.Call):
                continue
            # Skip calls belonging to a nested function; they are analyzed
            # against that function's own (plus inherited) parameters.
            if module.enclosing_function(child) is not node:
                continue
            func = child.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in _STOCHASTIC_METHODS
            ):
                info.stochastic_calls.append(
                    (child, f"{func.value.id}.{func.attr}()")
                )
            elif call_terminal_name(child) in _STOCHASTIC_REPRO_FUNCS:
                info.stochastic_calls.append(
                    (child, f"{call_terminal_name(child)}()")
                )
        return info
