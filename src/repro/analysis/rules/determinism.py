"""Determinism rules (family ``det``).

Released synthetics, golden digests and resume checkpoints must be pure
functions of (data, config, seed): wall-clock reads, iteration order of
unordered sets, and unsorted JSON serialization in digest code all smuggle
ambient state into supposedly reproducible output.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    Rule,
    SourceModule,
    dotted_name,
    register,
)

#: Dotted call targets that read the wall clock.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Wrappers whose argument order feeds output directly.
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate"}

#: Modules whose JSON output is hashed into content digests.
_DIGEST_MODULES = {"core/run_store.py", "testing/golden.py"}

_DIGEST_SCOPE_MARKERS = ("digest", "canonical", "fingerprint", "artifact_key")


@register
class WallClockRule(Rule):
    """Forbid wall-clock reads; timestamps are ambient nondeterminism."""

    id = "det-wall-clock"
    family = "det"
    summary = (
        "wall-clock read (time.time / datetime.now) feeds ambient state into "
        "code that must be a pure function of (data, config, seed)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _WALL_CLOCK_CALLS or (
                dotted in ("time.strftime", "time.localtime") and len(node.args) < 2
                and not (dotted == "time.localtime" and node.args)
            ):
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() reads the wall clock; derive the value from "
                    "inputs, or suppress if this is operational metadata "
                    "(audit timestamps) that never feeds released output",
                )


def _is_set_construction(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class SetIterationRule(Rule):
    """Forbid iterating unordered sets where the order can reach output."""

    id = "det-set-iteration"
    family = "det"
    summary = (
        "iteration over an unordered set; hash-seed randomization makes the "
        "order run-dependent — sort (or use a list/dict) instead"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_construction(
                node.iter
            ):
                yield self.finding(
                    module,
                    node.iter,
                    "for-loop iterates a set in unordered (hash-randomized) "
                    "order; wrap it in sorted()",
                )
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)
            ):
                for generator in node.generators:
                    if _is_set_construction(generator.iter):
                        yield self.finding(
                            module,
                            generator.iter,
                            "comprehension iterates a set in unordered "
                            "(hash-randomized) order; wrap it in sorted()",
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_WRAPPERS
                    and node.args
                    and _is_set_construction(node.args[0])
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}(set(...)) materializes an unordered "
                        "set; use sorted() to fix the order",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and _is_set_construction(node.args[0])
                ):
                    yield self.finding(
                        module,
                        node,
                        "str.join over a set concatenates in unordered "
                        "(hash-randomized) order; use sorted()",
                    )


@register
class UnsortedJsonRule(Rule):
    """Digest/golden code must serialize JSON with ``sort_keys=True``."""

    id = "det-unsorted-json"
    family = "det"
    summary = (
        "json.dumps without sort_keys=True in digest code makes the hash "
        "depend on dict insertion order"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        digest_module = module.package_rel in _DIGEST_MODULES
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "json.dumps":
                continue
            scope = module.scope_name(node).lower()
            in_digest_scope = any(marker in scope for marker in _DIGEST_SCOPE_MARKERS)
            if not digest_module and not in_digest_scope:
                continue
            sorted_keys = any(
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
            if not sorted_keys:
                yield self.finding(
                    module,
                    node,
                    "json.dumps in digest/golden code must pass "
                    "sort_keys=True so the serialized form (and any hash of "
                    "it) is independent of dict insertion order",
                )
