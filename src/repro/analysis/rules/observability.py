"""Observability rules (family ``obs``).

Tracing only stays trustworthy if every span that is opened is also closed:
a span started with ``start_span`` and never ended lingers in the tracer's
open set forever, never reaches the trace log, and silently truncates the
request tree an operator debugs from.  Inside the production packages
(``core/``, ``service/``) a ``start_span`` call must therefore either be
used as a context manager (``with tracer.span(...)`` is the usual spelling)
or be bound to a name whose ``.end()`` runs in a ``finally`` block of the
same function — the only shapes that survive an exception on the traced
path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, SourceModule, register


def _parent_map(tree: ast.AST) -> dict:
    parents: dict = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _ancestors(node: ast.AST, parents: dict) -> Iterator[ast.AST]:
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def _in_withitem(call: ast.Call, parents: dict) -> bool:
    """True when the call is (part of) a ``with`` statement's context expr."""
    child = call
    for ancestor in _ancestors(call, parents):
        if isinstance(ancestor, ast.withitem) and ancestor.context_expr is child:
            return True
        child = ancestor
    return False


def _assigned_name(call: ast.Call, parents: dict) -> str | None:
    """The simple name the call's result is bound to, if any."""
    parent = parents.get(call)
    if isinstance(parent, ast.Assign) and parent.value is call:
        if len(parent.targets) == 1 and isinstance(parent.targets[0], ast.Name):
            return parent.targets[0].id
    return None


def _enclosing_function(call: ast.Call, parents: dict) -> ast.AST | None:
    for ancestor in _ancestors(call, parents):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def _ended_in_finally(function: ast.AST, name: str) -> bool:
    """True when some ``finally`` block in ``function`` calls ``name.end()``."""
    for node in ast.walk(function):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for final_stmt in node.finalbody:
            for sub in ast.walk(final_stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "end"
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == name
                ):
                    return True
    return False


@register
class UnclosedSpanRule(Rule):
    """``start_span`` calls in production code must be exception-safe."""

    id = "obs-unclosed-span"
    family = "obs"
    summary = (
        "a start_span call in core/ or service/ that is neither a context "
        "manager nor bound to a name ended in a finally block leaks the "
        "span on any exception"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.is_test:
            return
        if not module.package_rel.startswith(("core/", "service/")):
            return
        parents = _parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "start_span"
            ):
                continue
            if _in_withitem(node, parents):
                continue
            name = _assigned_name(node, parents)
            if name is not None:
                function = _enclosing_function(node, parents)
                if function is not None and _ended_in_finally(function, name):
                    continue
            yield self.finding(
                module,
                node,
                "start_span opens a span that no finally block closes; use "
                "the tracer's `span(...)` context manager, or bind the span "
                "and call `.end()` in a `finally`",
            )
