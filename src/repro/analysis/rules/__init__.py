"""Rule families of the static invariant checker.

Importing this package registers every rule with the
:mod:`repro.analysis.core` registry.  To add a rule: subclass
:class:`~repro.analysis.core.Rule` in the matching family module (or a new
one imported here), decorate it with :func:`~repro.analysis.core.register`,
and add a violating/clean fixture pair to ``tests/analysis/``.
"""

from repro.analysis.rules import (  # noqa: F401
    determinism,
    locks,
    observability,
    privacy,
    rng,
    robustness,
)
