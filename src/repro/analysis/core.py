"""Checker framework: parsed modules, ``# repro:`` annotations, rule registry.

A :class:`SourceModule` wraps one parsed Python file together with the
checker annotations extracted from its comments.  :class:`Rule` subclasses
register themselves under a stable rule id (``<family>-<name>``) and yield
:class:`Finding` objects from :meth:`Rule.check`; the drivers
(:func:`lint_paths`, :func:`check_source`) apply inline ``allow``
suppressions and collect everything into a :class:`LintResult`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "SourceModule",
    "all_rules",
    "check_source",
    "iter_python_files",
    "lint_paths",
    "register",
    "rules_for",
]

#: ``# repro: allow[rule-a,rule-b]`` / ``guarded-by[_lock]`` / ``requires-lock[_lock]``
_ANNOTATION_RE = re.compile(r"#\s*repro:\s*(allow|guarded-by|requires-lock)\[([^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One invariant violation at a source location.

    ``symbol`` is the dotted enclosing scope (``Class.method``); baselines
    key on ``(path, symbol, rule)`` so they survive unrelated line drift.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def baseline_key(self) -> str:
        return f"{self.path}::{self.symbol}::{self.rule}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }


def _extract_annotations(text: str) -> tuple[dict, dict, dict]:
    """Map comment lines to their checker annotations.

    Returns ``(allow, guarded_by, requires_lock)``: ``allow`` maps a line
    number to the set of rule ids suppressed there, the other two map a line
    number to a lock attribute name.
    """
    allow: dict[int, set[str]] = {}
    guarded: dict[int, str] = {}
    requires: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for kind, payload in _ANNOTATION_RE.findall(token.string):
                line = token.start[0]
                if kind == "allow":
                    ids = {part.strip() for part in payload.split(",") if part.strip()}
                    allow.setdefault(line, set()).update(ids)
                elif kind == "guarded-by":
                    guarded[line] = payload.strip()
                else:
                    requires[line] = payload.strip()
    except tokenize.TokenError:
        pass  # syntactically odd files still lint via the AST
    return allow, guarded, requires


class SourceModule:
    """One parsed source file plus its checker annotations."""

    def __init__(self, text: str, path: Path | str, rel_path: str | None = None):
        self.path = Path(path)
        self.text = text
        self.rel_path = rel_path if rel_path is not None else self.path.as_posix()
        self.tree = ast.parse(text, filename=str(path))
        self.allow, self.guarded_by, self.requires_lock = _extract_annotations(text)
        parts = set(self.path.parts)
        self.is_test = "tests" in parts or self.path.name.startswith("test_")
        self._parents: dict[ast.AST, ast.AST] | None = None

    @classmethod
    def read(cls, path: Path, rel_path: str | None = None) -> "SourceModule":
        return cls(Path(path).read_text(encoding="utf-8"), path, rel_path)

    @property
    def package_rel(self) -> str:
        """Path relative to the ``repro`` package (e.g. ``privacy/laplace.py``).

        Lets path-scoped rules work no matter which directory the lint was
        rooted at; files outside the package keep their given path.
        """
        parts = self.path.parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return "/".join(parts[index + 1 :])
        return self.rel_path

    # ------------------------------------------------------------------ #
    # AST helpers shared by the rules
    # ------------------------------------------------------------------ #
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents

    def scope_name(self, node: ast.AST) -> str:
        """Dotted name of the function/class scopes enclosing ``node``."""
        parents = self.parents()
        names: list[str] = []
        current: ast.AST | None = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(current.name)
            current = parents.get(current)
        return ".".join(reversed(names))

    def enclosing_function(
        self, node: ast.AST
    ) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
        parents = self.parents()
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = parents.get(current)
        return None

    def allows(self, rule_id: str, line: int) -> bool:
        """True when an ``allow`` comment on this or the preceding line
        suppresses ``rule_id`` (multi-line statements annotate their first
        line)."""
        for candidate in (line, line - 1):
            ids = self.allow.get(candidate)
            if ids and (rule_id in ids or "*" in ids):
                return True
        return False

    def annotation_for_def(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef", table: dict[int, str]
    ) -> str | None:
        """A line-keyed annotation attached to a ``def`` (same or previous line)."""
        for candidate in (node.lineno, node.lineno - 1):
            if candidate in table:
                return table[candidate]
        return None


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_terminal_name(call: ast.Call) -> str | None:
    """The final identifier of a call target (``laplace_noise``, ``spend``)."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


# --------------------------------------------------------------------------- #
# Rule registry
# --------------------------------------------------------------------------- #
class Rule:
    """Base class: subclass, set ``id``/``family``/``summary``, implement
    :meth:`check`, and decorate with :func:`register`."""

    id: str = ""
    family: str = ""
    summary: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.rel_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=module.scope_name(node),
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and add the rule to the registry."""
    rule = rule_cls()
    if not rule.id or not rule.family:
        raise ValueError(f"rule {rule_cls.__name__} must define id and family")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (importing the rule modules)."""
    import repro.analysis.rules  # noqa: F401  — registration side effect

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rules_for(select: str | None) -> list[Rule]:
    """Rules matching a ``--select`` expression: comma-separated families or
    full rule ids; ``None`` selects everything."""
    rules = all_rules()
    if not select:
        return rules
    wanted = {part.strip() for part in select.split(",") if part.strip()}
    chosen = [rule for rule in rules if rule.family in wanted or rule.id in wanted]
    if not chosen:
        known = sorted({rule.family for rule in rules} | {rule.id for rule in rules})
        raise ValueError(f"--select matched no rules (known: {', '.join(known)})")
    return chosen


# --------------------------------------------------------------------------- #
# Drivers
# --------------------------------------------------------------------------- #
@dataclass
class LintResult:
    """Findings plus bookkeeping from one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    inline_suppressed: int = 0
    baseline_suppressed: int = 0
    stale_baseline_keys: list[str] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for finding in self.findings:
            totals[finding.rule] = totals.get(finding.rule, 0) + 1
        return dict(sorted(totals.items()))

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _check_module(module: SourceModule, rules: list[Rule], result: LintResult) -> None:
    for rule in rules:
        for finding in rule.check(module):
            if module.allows(finding.rule, finding.line):
                result.inline_suppressed += 1
            else:
                result.findings.append(finding)


def lint_paths(
    paths: Iterable[Path | str],
    select: str | None = None,
    root: Path | str | None = None,
) -> LintResult:
    """Lint files/directories; paths in findings are relative to ``root``."""
    rules = rules_for(select)
    root_path = Path(root) if root is not None else Path.cwd()
    result = LintResult()
    for file_path in iter_python_files(paths):
        try:
            rel = file_path.resolve().relative_to(root_path.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        try:
            module = SourceModule.read(file_path, rel_path=rel)
        except SyntaxError as exc:
            result.parse_errors.append(f"{rel}: {exc}")
            continue
        result.files_scanned += 1
        _check_module(module, rules, result)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def check_source(
    source: str, path: str = "<memory>", select: str | None = None
) -> list[Finding]:
    """Lint one in-memory snippet (the rule-level test suite's entry point)."""
    rules = rules_for(select)
    result = LintResult()
    module = SourceModule(source, path)
    result.files_scanned = 1
    _check_module(module, rules, result)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result.findings
