"""Static invariant checking for the repro codebase (``repro lint``).

The repo's correctness story rests on conventions that runtime tests only
exercise on the paths they happen to run: every source of randomness is an
explicit ``rng``/``seed`` argument (bit-identical parallel synthesis), every
noise draw is recorded on a :class:`~repro.privacy.accountant.PrivacyAccountant`
(Theorem-1 spend accounting), and shared mutable state is only touched under
its lock (multi-tenant budgets).  This package proves those conventions over
*all* code paths with a lightweight AST/dataflow pass:

* :mod:`repro.analysis.core` — the visitor framework: parsed
  :class:`SourceModule` objects carrying ``# repro:`` annotations, the
  :class:`Rule` registry, and the lint drivers;
* :mod:`repro.analysis.rules` — the four rule families (``rng``,
  ``privacy``, ``lock``, ``det``);
* :mod:`repro.analysis.baseline` — the committed-baseline mechanism for the
  few intentional suppressions;
* :mod:`repro.analysis.reporters` — text and JSON output;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` / ``repro lint``.

Inline annotations understood by the checker::

    x = unordered_thing()        # repro: allow[det-set-iteration]
    self._spent = _Spent()       # repro: guarded-by[_lock]
    def _helper(self):           # repro: requires-lock[_lock]

``allow[rule-id]`` suppresses one rule on that line (comma-separate several
ids; the comment may also sit on the preceding line).  ``guarded-by[lock]``
declares an attribute as shared state protected by ``self.<lock>``;
``requires-lock[lock]`` marks a method whose callers must already hold the
lock.  See the README section "Static invariant checking" for the rule
catalogue and how to register new rules.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.core import (
    Finding,
    LintResult,
    Rule,
    SourceModule,
    all_rules,
    check_source,
    lint_paths,
    register,
    rules_for,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Rule",
    "SourceModule",
    "all_rules",
    "check_source",
    "lint_paths",
    "register",
    "rules_for",
]
