"""Command line of the static invariant checker.

Invoked as ``python -m repro.analysis`` or ``repro lint``::

    repro lint                               # lint src/repro with the baseline
    repro lint --select rng                  # one rule family only
    repro lint --format json --output r.json # machine-readable report (CI)
    repro lint --list-rules                  # rule catalogue
    repro lint --write-baseline              # refresh lint-baseline.json

Exit status: 0 when clean (after inline + baseline suppressions), 1 when
findings or parse errors remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.core import all_rules, lint_paths
from repro.analysis.reporters import render_json, render_text

__all__ = ["build_arg_parser", "main"]

DEFAULT_BASELINE_NAME = "lint-baseline.json"


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Statically enforce RNG hygiene, privacy-spend accounting, lock "
            "discipline and determinism invariants over the repro tree."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro, or the "
        "installed repro package directory)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="FAMILIES",
        help="comma-separated rule families or ids to run "
        "(rng, privacy, lock, det; default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (whatever --format says; "
        "CI uploads this artifact on failure)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline of intentional suppressions (default: "
        f"./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _default_paths() -> list[Path]:
    src_tree = Path("src/repro")
    if src_tree.is_dir():
        return [src_tree]
    return [Path(__file__).resolve().parent.parent]  # the installed package


def _resolve_baseline(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    return default if default.is_file() else None


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:28s} [{rule.family}]  {rule.summary}")
        return 0

    paths = [Path(p) for p in args.paths] if args.paths else _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        result = lint_paths(paths, select=args.select)
    except ValueError as exc:  # bad --select
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline(args)
    if args.write_baseline:
        target = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
        Baseline.from_findings(result.findings).write(target)
        print(
            f"wrote {len(result.findings)} finding(s) to {target}; audit each "
            "entry before committing"
        )
        return 0
    if baseline_path is not None:
        if not baseline_path.is_file():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        Baseline.load(baseline_path).apply(result)

    if args.format == "json":
        print(json.dumps(render_json(result), indent=2, sort_keys=True))
    else:
        print(render_text(result))
    if args.output:
        Path(args.output).write_text(
            json.dumps(render_json(result), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
