"""``python -m repro.analysis`` — the static invariant checker CLI."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
