"""Committed-baseline support for intentional suppressions.

A baseline entry keys on ``(path, symbol, rule)`` with an occurrence count,
so it survives unrelated line drift but goes stale (and is reported stale)
the moment the suppressed code is fixed or moves to another symbol.  The
committed file lives at the repo root (``lint-baseline.json``) and is passed
to ``repro lint --baseline``; regenerate it with ``--write-baseline`` after
auditing each entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding, LintResult

__all__ = ["Baseline"]


@dataclass
class Baseline:
    """Allowed finding counts keyed by ``path::symbol::rule``."""

    counts: dict[str, int] = field(default_factory=dict)
    notes: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        counts: dict[str, int] = {}
        notes: dict[str, str] = {}
        for entry in document.get("entries", []):
            key = f"{entry['path']}::{entry.get('symbol', '')}::{entry['rule']}"
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
            if entry.get("note"):
                notes[key] = entry["note"]
        return cls(counts=counts, notes=notes)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = finding.baseline_key()
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
        return baseline

    def write(self, path: Path | str) -> None:
        entries = []
        for key in sorted(self.counts):
            file_path, symbol, rule = key.split("::")
            entry: dict = {"path": file_path, "symbol": symbol, "rule": rule}
            if self.counts[key] != 1:
                entry["count"] = self.counts[key]
            if key in self.notes:
                entry["note"] = self.notes[key]
            entries.append(entry)
        document = {
            "comment": (
                "Intentional `repro lint` suppressions. Audit before adding; "
                "regenerate with `repro lint --write-baseline` only after "
                "every remaining finding has been judged intentional."
            ),
            "entries": entries,
        }
        Path(path).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def apply(self, result: LintResult) -> None:
        """Filter baselined findings out of ``result`` in place.

        Remaining (never-matched) entries are reported as stale so the
        baseline can only shrink, never silently rot.
        """
        budget = dict(self.counts)
        kept: list[Finding] = []
        for finding in result.findings:
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                result.baseline_suppressed += 1
            else:
                kept.append(finding)
        result.findings = kept
        result.stale_baseline_keys = sorted(
            key for key, remaining in budget.items() if remaining > 0
        )
