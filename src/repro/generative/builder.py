"""End-to-end fitting of the (differentially private) generative model.

The paper's pipeline (Section 3.5) learns the dependency structure on the DT
split and the conditional tables on the DP split, each with its own Laplace
noise, then accounts for the total privacy via composition.  This module wraps
those steps behind a single :func:`fit_bayesian_network` call driven by a
:class:`GenerativeModelSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.datasets.dataset import Dataset
from repro.generative.bayesian_network import BayesianNetworkSynthesizer
from repro.generative.marginal import MarginalSynthesizer
from repro.generative.parameters import ParameterLearner
from repro.generative.structure import (
    DependencyStructure,
    StructureLearner,
    StructureLearningConfig,
)
from repro.privacy.accountant import PrivacyAccountant

__all__ = [
    "GenerativeModelSpec",
    "fit_bayesian_network",
    "fit_marginal_model",
    "calibrate_structure_epsilon",
    "calibrate_parameter_epsilon",
]


@dataclass
class GenerativeModelSpec:
    """Specification of the generative model and its privacy parameters.

    Parameters
    ----------
    omega:
        Number of re-sampled attributes (an int, or an iterable for random ω).
    epsilon_structure:
        ε used per noisy entropy value during structure learning
        (``None`` disables DP for structure learning).
    epsilon_parameters:
        ε used per attribute for the noisy conditional counts
        (``None`` disables DP for parameter learning).
    alpha:
        Dirichlet prior pseudo-count for the conditional tables.
    sample_parameters:
        Draw the conditional tables from the Dirichlet posterior instead of
        using the posterior mean.
    structure:
        Extra structure-learning knobs (max parent cost, max parents, ...).
    """

    omega: int | Iterable[int] = 9
    epsilon_structure: float | None = 1.0
    epsilon_parameters: float | None = 1.0
    alpha: float = 1.0
    sample_parameters: bool = False
    structure: StructureLearningConfig = field(default_factory=StructureLearningConfig)

    @classmethod
    def with_total_epsilon(
        cls,
        total_epsilon: float,
        num_attributes: int,
        omega: int | Iterable[int] = 9,
        delta: float = 1e-9,
        **kwargs,
    ) -> "GenerativeModelSpec":
        """Build a spec whose *overall* model-learning budget is ``total_epsilon``.

        The paper's evaluation quotes the total ε of the generative model
        (ε = 1 or ε = 0.1 in Section 6.1); since the DT and DP splits are
        disjoint, the total equals max(ε_L, ε_P), so both phases are each
        given the full ``total_epsilon`` and their per-query epsilons are
        derived by inverting the composition formulas.
        """
        epsilon_entropy, epsilon_count = calibrate_structure_epsilon(
            total_epsilon, num_attributes, delta
        )
        epsilon_parameters = calibrate_parameter_epsilon(
            total_epsilon, num_attributes, delta
        )
        structure_config = kwargs.pop("structure", StructureLearningConfig())
        structure_config = StructureLearningConfig(
            max_parent_cost=structure_config.max_parent_cost,
            max_parents=structure_config.max_parents,
            epsilon_entropy=epsilon_entropy,
            epsilon_count=epsilon_count,
            min_merit_gain=structure_config.min_merit_gain,
            max_table_cells=structure_config.max_table_cells,
            engine=structure_config.engine,
        )
        return cls(
            omega=omega,
            epsilon_structure=epsilon_entropy,
            epsilon_parameters=epsilon_parameters,
            structure=structure_config,
            **kwargs,
        )


def _invert_advanced_composition(
    total_epsilon: float, num_queries: int, delta_slack: float
) -> float:
    """Largest per-query ε whose advanced composition stays below ``total_epsilon``.

    Solved by bisection on the monotone advanced-composition formula
    (Theorem 3): ε' = ε sqrt(2 k ln(1/δ'')) + k ε (e^ε - 1).
    """
    from repro.privacy.composition import advanced_composition

    if total_epsilon <= 0:
        raise ValueError("total_epsilon must be positive")
    low, high = 0.0, total_epsilon
    for _ in range(200):
        mid = (low + high) / 2.0
        if mid <= 0:
            break
        composed, _ = advanced_composition(mid, 0.0, num_queries, delta_slack)
        if composed <= total_epsilon:
            low = mid
        else:
            high = mid
    return low


def _per_query_epsilon(total_epsilon: float, num_queries: int, delta_slack: float) -> float:
    """Per-query ε under whichever composition (sequential or advanced) is tighter.

    Advanced composition only pays off for many queries; for a handful of
    queries plain sequential composition (ε / k, δ = 0) gives a larger
    per-query budget, so the better of the two is used.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    sequential = total_epsilon / num_queries
    advanced = _invert_advanced_composition(total_epsilon, num_queries, delta_slack)
    return max(sequential, advanced)


def calibrate_structure_epsilon(
    total_epsilon: float,
    num_attributes: int,
    delta: float = 1e-9,
    count_fraction: float = 0.1,
) -> tuple[float, float]:
    """Per-entropy ε_H and record-count ε_nT for a target structure budget.

    Structure learning releases m(m+1) noisy entropy values (composed with
    advanced composition) plus one noisy record count (sequentially composed),
    see Section 3.5.  Given the total budget ε_L this helper reserves
    ``count_fraction`` of it for the record count and splits the rest across
    the entropy values so that the composed ε stays at or below the target.

    Returns ``(epsilon_entropy, epsilon_count)``.
    """
    if num_attributes < 1:
        raise ValueError("num_attributes must be positive")
    if not 0.0 < count_fraction < 1.0:
        raise ValueError("count_fraction must lie strictly between 0 and 1")
    epsilon_count = total_epsilon * count_fraction
    entropy_budget = total_epsilon - epsilon_count
    # The learner releases H(x_i) and H(bkt(x_i)) for every attribute,
    # H(x_i, bkt(x_j)) for every ordered pair and H(bkt(x_i), bkt(x_j)) for
    # every unordered pair.
    m = num_attributes
    num_queries = 2 * m + m * (m - 1) + (m * (m - 1)) // 2
    epsilon_entropy = _per_query_epsilon(entropy_budget, num_queries, delta)
    return epsilon_entropy, epsilon_count


def calibrate_parameter_epsilon(
    total_epsilon: float,
    num_attributes: int,
    delta: float = 1e-9,
) -> float:
    """Per-attribute ε_p for a target parameter-learning budget (Section 3.5).

    Parameter learning releases one noisy count vector per attribute (L1
    sensitivity 1 each); the m releases are composed with advanced
    composition.
    """
    if num_attributes < 1:
        raise ValueError("num_attributes must be positive")
    return _per_query_epsilon(total_epsilon, num_attributes, delta)


def fit_bayesian_network(
    structure_data: Dataset,
    parameter_data: Dataset,
    spec: GenerativeModelSpec | None = None,
    accountant: PrivacyAccountant | None = None,
    rng: np.random.Generator | None = None,
    structure: DependencyStructure | None = None,
) -> BayesianNetworkSynthesizer:
    """Fit the seed-based Bayesian-network synthesizer.

    Parameters
    ----------
    structure_data:
        The DT split used for (DP) structure learning.
    parameter_data:
        The DP split used for (DP) parameter learning.
    spec:
        Model and privacy specification; defaults to the paper's settings.
    accountant:
        Optional privacy accountant; both learning phases record their
        expenditure into it.
    rng:
        Randomness for noise and posterior sampling.
    structure:
        A pre-computed structure to reuse (skips structure learning), e.g. for
        ablations or to amortize learning across many model fits.

    ``rng`` is passed straight through to the learners, which require it
    whenever they actually consume randomness (DP noise, posterior sampling);
    fully deterministic fits accept ``rng=None``.  There is no silent
    fixed-seed fallback.
    """
    model_spec = spec if spec is not None else GenerativeModelSpec()
    generator = rng

    if structure_data.schema != parameter_data.schema:
        raise ValueError("structure and parameter splits must share a schema")

    if structure is None:
        structure_config = StructureLearningConfig(
            max_parent_cost=model_spec.structure.max_parent_cost,
            max_parents=model_spec.structure.max_parents,
            epsilon_entropy=model_spec.epsilon_structure,
            epsilon_count=model_spec.structure.epsilon_count,
            min_merit_gain=model_spec.structure.min_merit_gain,
            max_table_cells=model_spec.structure.max_table_cells,
            engine=model_spec.structure.engine,
        )
        learner = StructureLearner(structure_config, accountant)
        structure = learner.learn(structure_data, generator)

    parameter_learner = ParameterLearner(
        epsilon=model_spec.epsilon_parameters,
        alpha=model_spec.alpha,
        sample_parameters=model_spec.sample_parameters,
        accountant=accountant,
    )
    tables = parameter_learner.learn(parameter_data, structure, generator)
    return BayesianNetworkSynthesizer(
        schema=structure_data.schema,
        structure=structure,
        tables=tables,
        omega=model_spec.omega,
    )


def fit_marginal_model(
    parameter_data: Dataset,
    epsilon: float | None = 1.0,
    alpha: float = 1.0,
    accountant: PrivacyAccountant | None = None,
    rng: np.random.Generator | None = None,
) -> MarginalSynthesizer:
    """Fit the privacy-preserving marginals baseline on the parameter split.

    ``rng`` is required whenever ``epsilon`` is set (the noise must come from
    the caller's generator); the noise-free fit accepts ``rng=None``.
    """
    return MarginalSynthesizer.fit(
        parameter_data, epsilon=epsilon, alpha=alpha, rng=rng, accountant=accountant
    )
