"""The marginal-synthesis baseline (Section 3.2, "Baseline: Marginal Synthesis").

The baseline synthesizer assumes attributes are independent: each attribute of
a synthetic record is drawn from its (optionally differentially-private)
marginal distribution, ignoring the seed entirely.  Because the output does
not depend on the seed, every record of the input dataset is an equally
plausible seed and the plausible-deniability test passes whenever the dataset
holds at least k records (Section 8 of the paper).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.schema import Schema
from repro.generative.base import GenerativeModel
from repro.privacy.accountant import PrivacyAccountant

__all__ = ["MarginalSynthesizer"]


class MarginalSynthesizer(GenerativeModel):
    """Independent-marginals synthesizer (the paper's utility baseline)."""

    seed_dependent = False

    def __init__(self, schema: Schema, marginals: Sequence[np.ndarray]):
        if len(marginals) != len(schema):
            raise ValueError(
                f"expected {len(schema)} marginal distributions, got {len(marginals)}"
            )
        validated: list[np.ndarray] = []
        for attribute, marginal in zip(schema, marginals):
            distribution = np.asarray(marginal, dtype=np.float64)
            if distribution.shape != (attribute.cardinality,):
                raise ValueError(
                    f"marginal of attribute {attribute.name!r} must have "
                    f"{attribute.cardinality} entries"
                )
            if np.any(distribution < 0) or not np.isclose(distribution.sum(), 1.0, atol=1e-6):
                raise ValueError(
                    f"marginal of attribute {attribute.name!r} is not a distribution"
                )
            validated.append(distribution / distribution.sum())
        self._schema = schema
        self._marginals = validated

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def fit(
        cls,
        dataset: Dataset,
        epsilon: float | None = None,
        alpha: float = 1.0,
        rng: np.random.Generator | None = None,
        accountant: PrivacyAccountant | None = None,
    ) -> "MarginalSynthesizer":
        """Estimate (optionally DP) marginals from a dataset.

        With ``epsilon`` set, Laplace(1/ε) noise is added to every histogram
        count and clamped at zero, exactly like the conditional-table counts
        of the full model (the marginal is the empty-parent-set special case
        the paper mentions at the end of Section 3.4).
        """
        if len(dataset) == 0:
            raise ValueError("cannot fit marginals on an empty dataset")
        if epsilon is not None and epsilon <= 0:
            raise ValueError("epsilon must be positive when provided")
        generator = rng
        if epsilon is not None and generator is None:
            raise ValueError(
                "fitting DP marginals requires an explicit rng; pass the "
                "pipeline's generator"
            )
        marginals = []
        for index, attribute in enumerate(dataset.schema):
            counts = np.bincount(
                dataset.column(index), minlength=attribute.cardinality
            ).astype(np.float64)
            if epsilon is not None:
                counts = np.maximum(
                    0.0, counts + generator.laplace(0.0, 1.0 / epsilon, size=counts.shape)
                )
            counts += alpha
            marginals.append(counts / counts.sum())
        if epsilon is not None and accountant is not None:
            accountant.spend(
                "marginals/counts",
                epsilon,
                0.0,
                count=len(dataset.schema),
                scope="parameter-data",
            )
        return cls(dataset.schema, marginals)

    # ------------------------------------------------------------------ #
    # GenerativeModel interface
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """Schema of generated records."""
        return self._schema

    @property
    def marginals(self) -> list[np.ndarray]:
        """The per-attribute marginal distributions."""
        return [marginal.copy() for marginal in self._marginals]

    def generate(self, seed: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Generate one record by sampling every attribute independently."""
        del seed  # the baseline ignores its seed by construction
        return np.array(
            [int(rng.choice(marginal.size, p=marginal)) for marginal in self._marginals],
            dtype=np.int64,
        )

    def generate_many(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorized generation of ``count`` records."""
        if count < 0:
            raise ValueError("count must be non-negative")
        columns = [
            rng.choice(marginal.size, size=count, p=marginal)
            for marginal in self._marginals
        ]
        return np.column_stack(columns).astype(np.int64) if count else np.empty(
            (0, len(self._schema)), dtype=np.int64
        )

    def seed_probability(self, seed: np.ndarray, candidate: np.ndarray) -> float:
        """Pr{candidate = M(seed)}: independent of the seed."""
        del seed
        record = np.asarray(candidate, dtype=np.int64)
        probability = 1.0
        for value, marginal in zip(record, self._marginals):
            probability *= float(marginal[int(value)])
        return probability

    def batch_seed_probabilities(
        self, seeds: np.ndarray, candidate: np.ndarray
    ) -> np.ndarray:
        """Every seed generates the candidate with the same probability."""
        matrix = np.asarray(seeds)
        probability = self.seed_probability(matrix[0] if matrix.size else candidate, candidate)
        return np.full(matrix.shape[0], probability, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Prediction (Figures 1-2 baseline)
    # ------------------------------------------------------------------ #
    def most_likely_value(self, record: np.ndarray, attribute: int) -> int:
        """Most likely value of an attribute: the marginal mode (seed ignored)."""
        del record
        return int(np.argmax(self._marginals[attribute]))
