"""The seed-based Bayesian-network synthesizer (Sections 3.1-3.2).

Given a learned dependency structure and conditional tables, a synthetic
record is produced from a seed record by:

1. ordering the attributes in the dependency (topological) order σ,
2. copying the first ``m - ω`` attributes of σ from the seed,
3. re-sampling the remaining ω attributes, in order, from their conditional
   distributions given the *current* record state (so re-sampled attributes
   may condition on both copied and freshly re-sampled values).

Because a re-sampled attribute's parents always carry the same values as the
candidate record y itself (copied attributes agree with the seed *and* with
y), the probability that any record d generates y factorizes as

    Pr{y = M(d)} = 1[d and y agree on the copied attributes] * q(y) ,

where q(y) is the product of the re-sampled conditionals evaluated at y.  This
makes the plausible-seed count of the privacy test a simple (vectorized) match
count — exactly the property the paper exploits to generate millions of
records efficiently.

The ω parameter can be a single integer or a collection of integers; in the
latter case ω is drawn uniformly per generated record ("ω ∈R [5-11]" in the
paper) and seed probabilities marginalize over the same uniform choice.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.datasets.schema import Schema
from repro.generative.base import SeedBasedGenerativeModel
from repro.generative.parameters import ConditionalParameters
from repro.generative.structure import DependencyStructure

__all__ = ["BayesianNetworkSynthesizer"]


class BayesianNetworkSynthesizer(SeedBasedGenerativeModel):
    """Seed-based synthesizer backed by a Bayesian network."""

    seed_dependent = True

    def __init__(
        self,
        schema: Schema,
        structure: DependencyStructure,
        tables: Sequence[ConditionalParameters],
        omega: int | Iterable[int],
    ):
        """Create a synthesizer.

        Parameters
        ----------
        schema:
            Schema shared by seeds and synthetics.
        structure:
            The learned dependency DAG and re-sampling order.
        tables:
            One :class:`ConditionalParameters` per attribute, indexed by
            attribute position.
        omega:
            Number of attributes to re-sample: a fixed integer in
            ``[0, m]`` or an iterable of such integers from which ω is drawn
            uniformly for every generated record.
        """
        m = len(schema)
        if structure.num_attributes != m:
            raise ValueError("structure does not match the schema size")
        if len(tables) != m:
            raise ValueError(f"expected {m} conditional tables, got {len(tables)}")
        for index, table in enumerate(tables):
            if table.attribute_index != index:
                raise ValueError("tables must be ordered by attribute index")
            if table.parents != structure.parents[index]:
                raise ValueError(
                    f"table for attribute {index} does not match the structure's parents"
                )
        self._schema = schema
        self._structure = structure
        self._tables = list(tables)
        self._omegas = self._validate_omegas(omega, m)

    @staticmethod
    def _validate_omegas(omega: int | Iterable[int], num_attributes: int) -> tuple[int, ...]:
        if isinstance(omega, (int, np.integer)):
            omegas: tuple[int, ...] = (int(omega),)
        else:
            omegas = tuple(int(value) for value in omega)
        if not omegas:
            raise ValueError("omega must contain at least one value")
        for value in omegas:
            if not 0 <= value <= num_attributes:
                raise ValueError(
                    f"omega value {value} out of range [0, {num_attributes}]"
                )
        return omegas

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        """Schema of seeds and synthetics."""
        return self._schema

    @property
    def structure(self) -> DependencyStructure:
        """The dependency structure."""
        return self._structure

    @property
    def tables(self) -> list[ConditionalParameters]:
        """The conditional tables, one per attribute."""
        return self._tables

    @property
    def omegas(self) -> tuple[int, ...]:
        """The set of ω values the synthesizer draws from."""
        return self._omegas

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _bucketize_record(self, record: np.ndarray) -> np.ndarray:
        return self.bucketize_records(np.asarray(record, dtype=np.int64)[None, :])[0]

    def bucketize_records(self, records: np.ndarray) -> np.ndarray:
        """Column-wise bucketization of a (records x attributes) matrix."""
        matrix = np.asarray(records, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._schema):
            raise ValueError(
                f"records must be a 2-D array with {len(self._schema)} columns, "
                f"got shape {matrix.shape}"
            )
        bucketized = np.empty_like(matrix)
        for index, attribute in enumerate(self._schema):
            bucketized[:, index] = attribute.bucketize(matrix[:, index])
        return bucketized

    def _parent_values(self, bucketized_record: np.ndarray, attribute: int) -> np.ndarray | None:
        parents = self._structure.parents[attribute]
        if not parents:
            return None
        return bucketized_record[list(parents)]

    def _fixed_attributes(self, omega: int) -> tuple[int, ...]:
        """Attributes copied from the seed when re-sampling ω attributes."""
        m = len(self._schema)
        return self._structure.order[: m - omega]

    def _resampled_attributes(self, omega: int) -> tuple[int, ...]:
        """Attributes re-sampled (in σ order) when re-sampling ω attributes."""
        m = len(self._schema)
        return self._structure.order[m - omega :]

    def _draw_omega(self, rng: np.random.Generator) -> int:
        if len(self._omegas) == 1:
            return self._omegas[0]
        return int(self._omegas[rng.integers(len(self._omegas))])

    def draw_omegas(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw one ω per record, uniformly from the configured ω set."""
        if size < 0:
            raise ValueError("size must be non-negative")
        choices = np.asarray(self._omegas, dtype=np.int64)
        if choices.size == 1:
            return np.full(size, choices[0], dtype=np.int64)
        return choices[rng.integers(choices.size, size=size)]

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, seed: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Generate one synthetic record from the seed (ω drawn if needed)."""
        return self.generate_with_omega(seed, self._draw_omega(rng), rng)

    def generate_with_omega(
        self, seed: np.ndarray, omega: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Generate one synthetic record re-sampling exactly ``omega`` attributes."""
        record = np.asarray(seed, dtype=np.int64).copy()
        if record.shape != (len(self._schema),):
            raise ValueError(
                f"seed must have {len(self._schema)} attributes, got shape {record.shape}"
            )
        if not 0 <= omega <= len(self._schema):
            raise ValueError(f"omega must lie in [0, {len(self._schema)}]")
        bucketized = self._bucketize_record(record)
        for attribute in self._resampled_attributes(omega):
            parent_values = self._parent_values(bucketized, attribute)
            new_value = self._tables[attribute].sample(rng, parent_values)
            record[attribute] = new_value
            bucketized[attribute] = int(
                self._schema[attribute].bucketize(np.array([new_value]))[0]
            )
        return record

    def sample_record(self, rng: np.random.Generator) -> np.ndarray:
        """Ancestral sampling of a full record (every attribute re-sampled)."""
        placeholder = np.zeros(len(self._schema), dtype=np.int64)
        return self.generate_with_omega(placeholder, len(self._schema), rng)

    def generate_batch(
        self,
        seeds: np.ndarray,
        rng: np.random.Generator,
        omegas: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized ancestral re-sampling over every row of ``seeds`` at once.

        Walks the re-sampling order σ a single time; at each position the rows
        whose ω covers that attribute draw a new value together through one
        vectorized conditional-table lookup, so the per-record Python overhead
        of :meth:`generate` is amortized over the whole batch.

        Parameters
        ----------
        seeds:
            (records x attributes) matrix of seed rows.
        rng:
            Source of randomness for the ω draws and the re-sampling.
        omegas:
            Optional per-row ω values; drawn uniformly from the configured ω
            set when omitted.
        """
        matrix = np.asarray(seeds, dtype=np.int64)
        m = len(self._schema)
        if matrix.ndim != 2 or matrix.shape[1] != m:
            raise ValueError(
                f"seeds must be a 2-D array with {m} columns, got shape {matrix.shape}"
            )
        num_rows = matrix.shape[0]
        if omegas is None:
            omega_draws = self.draw_omegas(rng, num_rows)
        else:
            omega_draws = np.asarray(omegas, dtype=np.int64)
            if omega_draws.shape != (num_rows,):
                raise ValueError("omegas must hold one value per seed row")
            if omega_draws.size and (omega_draws.min() < 0 or omega_draws.max() > m):
                raise ValueError(f"omega values must lie in [0, {m}]")
        if num_rows == 0:
            return np.empty((0, m), dtype=np.int64)

        records = matrix.copy()
        bucketized = self.bucketize_records(records)
        for position, attribute in enumerate(self._structure.order):
            # Attribute at position p is re-sampled for a row iff ω >= m - p.
            rows = np.nonzero(omega_draws >= m - position)[0]
            if rows.size == 0:
                continue
            table = self._tables[attribute]
            parents = list(self._structure.parents[attribute])
            configs = table.configuration_indices(bucketized[rows][:, parents])
            values = table.sample_batch(rng, configs)
            records[rows, attribute] = values
            bucketized[rows, attribute] = self._schema[attribute].bucketize(values)
        return records

    # ------------------------------------------------------------------ #
    # Probabilities
    # ------------------------------------------------------------------ #
    def candidate_factor(self, candidate: np.ndarray, omega: int) -> float:
        """q(y): product of the re-sampled conditionals evaluated at the candidate."""
        record = np.asarray(candidate, dtype=np.int64)
        bucketized = self._bucketize_record(record)
        probability = 1.0
        for attribute in self._resampled_attributes(omega):
            parent_values = self._parent_values(bucketized, attribute)
            probability *= self._tables[attribute].probability(
                int(record[attribute]), parent_values
            )
        return probability

    def seed_probability_with_omega(
        self, seed: np.ndarray, candidate: np.ndarray, omega: int
    ) -> float:
        """Pr{candidate = M_ω(seed)} for a specific ω."""
        seed_record = np.asarray(seed, dtype=np.int64)
        candidate_record = np.asarray(candidate, dtype=np.int64)
        fixed = list(self._fixed_attributes(omega))
        if fixed and not np.array_equal(seed_record[fixed], candidate_record[fixed]):
            return 0.0
        return self.candidate_factor(candidate_record, omega)

    def seed_probability(self, seed: np.ndarray, candidate: np.ndarray) -> float:
        """Pr{candidate = M(seed)}, marginalized over the ω distribution."""
        total = 0.0
        for omega in self._omegas:
            total += self.seed_probability_with_omega(seed, candidate, omega)
        return total / len(self._omegas)

    def batch_seed_probabilities_with_omega(
        self, seeds: np.ndarray, candidate: np.ndarray, omega: int
    ) -> np.ndarray:
        """Vectorized Pr{candidate = M_ω(seed)} over every row of ``seeds``."""
        matrix = np.asarray(seeds, dtype=np.int64)
        candidate_record = np.asarray(candidate, dtype=np.int64)
        factor = self.candidate_factor(candidate_record, omega)
        fixed = list(self._fixed_attributes(omega))
        if not fixed:
            return np.full(matrix.shape[0], factor, dtype=np.float64)
        matches = np.all(matrix[:, fixed] == candidate_record[fixed], axis=1)
        return matches.astype(np.float64) * factor

    def batch_seed_probabilities(
        self, seeds: np.ndarray, candidate: np.ndarray
    ) -> np.ndarray:
        """Vectorized Pr{candidate = M(seed)} (ω-marginalized) over seed rows."""
        matrix = np.asarray(seeds, dtype=np.int64)
        total = np.zeros(matrix.shape[0], dtype=np.float64)
        for omega in self._omegas:
            total += self.batch_seed_probabilities_with_omega(matrix, candidate, omega)
        return total / len(self._omegas)

    def fixed_prefix_keys(self, records: np.ndarray, omega: int) -> np.ndarray | None:
        """Mixed-radix key of each record's fixed-attribute values for one ω.

        Two records agree on the copied (fixed) attributes of ω iff their keys
        are equal, which turns the plausible-seed match count into a key
        multiplicity query (sort the seed keys once, ``searchsorted`` per
        candidate batch) instead of an O(candidates x seeds) comparison.
        Returns ``None`` when the key would overflow int64 (callers fall back
        to the dense probability-matrix path).
        """
        matrix = np.asarray(records, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._schema):
            raise ValueError(
                f"records must be a 2-D array with {len(self._schema)} columns, "
                f"got shape {matrix.shape}"
            )
        fixed = self._fixed_attributes(omega)
        if not fixed:
            return np.zeros(matrix.shape[0], dtype=np.int64)
        radix_product = 1
        for attribute in fixed:
            radix_product *= self._schema[attribute].cardinality
        if radix_product >= 2**62:
            return None
        keys = np.zeros(matrix.shape[0], dtype=np.int64)
        for attribute in fixed:
            keys = keys * self._schema[attribute].cardinality + matrix[:, attribute]
        return keys

    def candidate_factors_batch(self, candidates: np.ndarray, omega: int) -> np.ndarray:
        """Vectorized q(y) over every row of ``candidates`` for a fixed ω."""
        matrix = np.asarray(candidates, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._schema):
            raise ValueError(
                f"candidates must be a 2-D array with {len(self._schema)} columns, "
                f"got shape {matrix.shape}"
            )
        if not 0 <= omega <= len(self._schema):
            raise ValueError(f"omega must lie in [0, {len(self._schema)}]")
        bucketized = self.bucketize_records(matrix)
        factors = np.ones(matrix.shape[0], dtype=np.float64)
        for attribute in self._resampled_attributes(omega):
            table = self._tables[attribute]
            parents = list(self._structure.parents[attribute])
            configs = table.configuration_indices(bucketized[:, parents])
            factors *= table.probabilities_batch(matrix[:, attribute], configs)
        return factors

    def candidate_factor_suffix_products(self, candidates: np.ndarray) -> np.ndarray:
        """(m+1, candidates) array: row p = product of conditionals at σ-positions >= p.

        ``row[m - ω]`` is exactly q_ω(y) for every candidate, so one backward
        walk over the re-sampling order serves every ω of the ω set at once —
        the per-ω callers would otherwise re-bucketize the candidate block and
        recompute the overlapping factor products once per ω.
        """
        matrix = np.asarray(candidates, dtype=np.int64)
        m = len(self._schema)
        if matrix.ndim != 2 or matrix.shape[1] != m:
            raise ValueError(
                f"candidates must be a 2-D array with {m} columns, got shape {matrix.shape}"
            )
        bucketized = self.bucketize_records(matrix)
        products = np.ones((m + 1, matrix.shape[0]), dtype=np.float64)
        for position in range(m - 1, -1, -1):
            attribute = self._structure.order[position]
            table = self._tables[attribute]
            parents = list(self._structure.parents[attribute])
            configs = table.configuration_indices(bucketized[:, parents])
            products[position] = products[position + 1] * table.probabilities_batch(
                matrix[:, attribute], configs
            )
        return products

    def batch_probability_matrix(
        self, seeds: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Pr{candidates[c] = M(seeds[s])} for every (candidate, seed) pair.

        Returns a (candidates x seeds) matrix, ω-marginalized.  For each ω the
        probability factorizes as ``match(c, s) * q(c)`` — a fixed-attribute
        agreement indicator times a per-candidate factor — so the whole matrix
        is a handful of broadcast comparisons and one outer product per ω.
        """
        seed_matrix = np.asarray(seeds, dtype=np.int64)
        cand_matrix = np.asarray(candidates, dtype=np.int64)
        if seed_matrix.ndim != 2 or seed_matrix.shape[1] != len(self._schema):
            raise ValueError("seeds must be a 2-D array matching the schema width")
        if cand_matrix.ndim != 2 or cand_matrix.shape[1] != len(self._schema):
            raise ValueError("candidates must be a 2-D array matching the schema width")
        suffix_products = self.candidate_factor_suffix_products(cand_matrix)
        m = len(self._schema)
        total = np.zeros((cand_matrix.shape[0], seed_matrix.shape[0]), dtype=np.float64)
        for omega in self._omegas:
            factors = suffix_products[m - omega]
            fixed = self._fixed_attributes(omega)
            if fixed:
                matches = np.ones(total.shape, dtype=bool)
                for attribute in fixed:
                    matches &= (
                        cand_matrix[:, attribute][:, None]
                        == seed_matrix[:, attribute][None, :]
                    )
                total += matches * factors[:, None]
            else:
                total += factors[:, None]
        return total / len(self._omegas)

    # ------------------------------------------------------------------ #
    # Prediction (used by the model-accuracy experiments, Figures 1-2)
    # ------------------------------------------------------------------ #
    def conditional_scores(self, record: np.ndarray, attribute: int) -> np.ndarray:
        """Unnormalized Pr{x_i = v | x_-i} for every value v of one attribute.

        Under the Bayesian network, Pr{x_i | x_-i} is proportional to the
        product of the factors in i's Markov blanket: its own conditional and
        the conditionals of its children.  The child factors only depend on
        the *bucketized* value of attribute i (parents enter conditionals in
        their bucketized domains), so they are evaluated once per bucket.
        """
        encoded = np.asarray(record, dtype=np.int64).copy()
        schema_attribute = self._schema[attribute]
        cardinality = schema_attribute.cardinality
        bucketized = self._bucketize_record(encoded)
        children = [
            child
            for child in range(len(self._schema))
            if attribute in self._structure.parents[child]
        ]

        # Own-conditional factor: a full distribution over the values.
        own_distribution = self._tables[attribute].distribution(
            self._parent_values(bucketized, attribute)
        )
        scores = np.array(own_distribution, dtype=np.float64, copy=True)

        if not children:
            return scores

        # Child factors depend only on the target's bucket.
        value_buckets = schema_attribute.bucketize(np.arange(cardinality))
        bucket_factor: dict[int, float] = {}
        for bucket in np.unique(value_buckets):
            bucketized[attribute] = int(bucket)
            factor = 1.0
            for child in children:
                factor *= self._tables[child].probability(
                    int(encoded[child]), self._parent_values(bucketized, child)
                )
            bucket_factor[int(bucket)] = factor
        scores *= np.array([bucket_factor[int(b)] for b in value_buckets])
        return scores

    def most_likely_value(self, record: np.ndarray, attribute: int) -> int:
        """Most likely value of one attribute given the rest of the record."""
        return int(np.argmax(self.conditional_scores(record, attribute)))
