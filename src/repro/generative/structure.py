"""Dependency-structure learning (Section 3.3 of the paper).

The structure of the generative model is a directed acyclic graph over the
data attributes.  It is learned by greedy Correlation-based Feature Selection
(CFS): for each attribute, parents are added one at a time so as to maximize
the merit score of Eq. 4,

    score(P) = sum_{j in P} corr(x_i, x_j)
               / sqrt(|P| + sum_{j,k in P, j != k} corr(x_j, x_k)) ,

where ``corr`` is the symmetrical uncertainty coefficient (Eq. 5), subject to

* the overall graph staying acyclic, and
* the parent-configuration cost of Eq. 6 staying below ``max_parent_cost``
  (parents are counted in their *bucketized* domains, Eq. 7).

The differentially-private variant replaces every entropy value with a noisy
one (Laplace noise scaled by the Lemma 1 sensitivity bound computed from a
noisy record count) before running exactly the same greedy search.

Two interchangeable engines implement the learner:

* ``"vectorized"`` (the default) derives every entropy from one shared scan of
  the data (:class:`~repro.stats.pairwise.PairwiseStats`), draws all Laplace
  noise in a single batched call and keeps candidate-edge acyclicity checks
  O(m) with an incrementally maintained reachability bitset;
* ``"reference"`` is the direct per-pair / per-edge loop transcription of the
  paper, kept as the ground truth for equivalence tests.

Both engines learn identical structures; in the DP variant they consume the
same number of Laplace draws from the generator (so the stream position after
learning agrees) but assign the draws to entropy values in a different order,
so individual noisy entropies — and hence DP structures — differ between
engines for the same seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.datasets.dataset import Dataset
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.laplace import laplace_mechanism
from repro.stats.entropy import (
    entropy,
    entropy_sensitivity_bound,
    joint_entropy,
    symmetrical_uncertainty_from_entropies,
)
from repro.stats.pairwise import CrossPairwiseStats, block_entropy

__all__ = ["DependencyStructure", "StructureLearningConfig", "StructureLearner"]

_ENGINES = ("vectorized", "reference")


@dataclass(frozen=True)
class DependencyStructure:
    """A learned DAG over attributes plus a compatible re-sampling order.

    Parameters
    ----------
    parents:
        ``parents[i]`` is the tuple of parent attribute indices of attribute i
        (possibly empty).
    order:
        A permutation of attribute indices that is a topological order of the
        DAG: every attribute appears after all of its parents.  This is the
        re-sampling order σ used by the synthesizer (Section 3.2).
    """

    parents: tuple[tuple[int, ...], ...]
    order: tuple[int, ...]

    def __post_init__(self) -> None:
        m = len(self.parents)
        if sorted(self.order) != list(range(m)):
            raise ValueError("order must be a permutation of the attribute indices")
        position = {attribute: pos for pos, attribute in enumerate(self.order)}
        for child, parent_set in enumerate(self.parents):
            for parent in parent_set:
                if not 0 <= parent < m:
                    raise ValueError(f"parent index {parent} out of range")
                if parent == child:
                    raise ValueError(f"attribute {child} cannot be its own parent")
                if position[parent] >= position[child]:
                    raise ValueError(
                        "order is not a topological order of the parent structure"
                    )

    @property
    def num_attributes(self) -> int:
        """Number of attributes (nodes) in the structure."""
        return len(self.parents)

    @property
    def num_edges(self) -> int:
        """Total number of parent-child edges."""
        return sum(len(parent_set) for parent_set in self.parents)

    def as_digraph(self) -> nx.DiGraph:
        """The structure as a networkx directed graph (edges parent -> child)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_attributes))
        for child, parent_set in enumerate(self.parents):
            graph.add_edges_from((parent, child) for parent in parent_set)
        return graph

    @classmethod
    def empty(cls, num_attributes: int) -> "DependencyStructure":
        """A structure with no edges (every attribute independent)."""
        return cls(
            parents=tuple(() for _ in range(num_attributes)),
            order=tuple(range(num_attributes)),
        )

    @classmethod
    def from_parent_map(cls, parents: dict[int, tuple[int, ...]], num_attributes: int) -> "DependencyStructure":
        """Build a structure from a child -> parents mapping, deriving an order."""
        parent_tuples = tuple(tuple(parents.get(i, ())) for i in range(num_attributes))
        graph = nx.DiGraph()
        graph.add_nodes_from(range(num_attributes))
        for child, parent_set in enumerate(parent_tuples):
            graph.add_edges_from((parent, child) for parent in parent_set)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError("the parent map contains a cycle")
        order = tuple(nx.lexicographical_topological_sort(graph))
        return cls(parents=parent_tuples, order=order)


@dataclass
class StructureLearningConfig:
    """Knobs of the CFS structure learner.

    Parameters
    ----------
    max_parent_cost:
        Maximum allowed product of (bucketized) parent cardinalities for any
        attribute (Eq. 6); prevents over-fitting the conditional tables.
    max_parents:
        Hard cap on the number of parents per attribute (practical guard on
        top of the cost constraint).
    epsilon_entropy:
        Per-entropy-value ε for the DP variant; ``None`` learns without noise.
    epsilon_count:
        ε used to randomize the record count that feeds the sensitivity bound
        (Eq. 10).  Only used when ``epsilon_entropy`` is set.
    min_merit_gain:
        Minimum improvement of the CFS merit required to add another parent.
    max_table_cells:
        Optional cap on the total number of cells of an attribute's
        conditional table, i.e. (parent-configuration count) × (attribute
        cardinality).  The paper's Eq. 6 only bounds the configuration count,
        which is adequate at its 280k-record parameter split; at smaller
        scales this extra knob keeps the per-cell counts large enough to
        survive the DP noise of Eq. 14.  ``None`` (the default) reproduces the
        paper's behaviour exactly.
    engine:
        ``"vectorized"`` (default) uses the shared-scan pairwise-statistics
        engine, batched noise draws and incremental acyclicity bookkeeping;
        ``"reference"`` is the per-pair loop transcription kept for
        equivalence testing.
    """

    max_parent_cost: int = 300
    max_parents: int = 4
    epsilon_entropy: float | None = None
    epsilon_count: float = 0.1
    min_merit_gain: float = 1e-6
    max_table_cells: int | None = None
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.max_parent_cost < 1:
            raise ValueError("max_parent_cost must be positive")
        if self.max_parents < 0:
            raise ValueError("max_parents must be non-negative")
        if self.epsilon_entropy is not None and self.epsilon_entropy <= 0:
            raise ValueError("epsilon_entropy must be positive when provided")
        if self.epsilon_count <= 0:
            raise ValueError("epsilon_count must be positive")
        if self.max_table_cells is not None and self.max_table_cells < 1:
            raise ValueError("max_table_cells must be positive when provided")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")


@dataclass
class _CorrelationTables:
    """Symmetrical-uncertainty values needed by the greedy CFS search.

    ``target_parent[i, j]`` is corr(x_i, bkt(x_j)) — how well (bucketized)
    attribute j predicts attribute i.  ``parent_parent[j, k]`` is
    corr(bkt(x_j), bkt(x_k)) — the redundancy between candidate parents.
    """

    target_parent: np.ndarray
    parent_parent: np.ndarray


class StructureLearner:
    """Greedy CFS structure learner with optional differential privacy."""

    def __init__(
        self,
        config: StructureLearningConfig | None = None,
        accountant: PrivacyAccountant | None = None,
    ):
        self._config = config if config is not None else StructureLearningConfig()
        self._accountant = accountant

    @property
    def config(self) -> StructureLearningConfig:
        """The learner's configuration."""
        return self._config

    # ------------------------------------------------------------------ #
    # Entropy / correlation computation
    # ------------------------------------------------------------------ #
    def _entropy_tables_reference(
        self, dataset: Dataset
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Noise-free entropies via one joint_entropy pass per attribute pair."""
        schema = dataset.schema
        m = len(schema)
        raw = dataset.data
        bucketized = dataset.bucketized()
        cardinalities = schema.cardinalities
        bucket_cards = schema.bucketized_cardinalities

        h_raw = np.array([entropy(raw[:, i], cardinalities[i]) for i in range(m)])
        h_bkt = np.array([entropy(bucketized[:, i], bucket_cards[i]) for i in range(m)])
        h_raw_bkt = np.zeros((m, m))
        h_bkt_bkt = np.zeros((m, m))
        for i in range(m):
            for j in range(m):
                if i == j:
                    continue
                h_raw_bkt[i, j] = joint_entropy(
                    raw[:, i], bucketized[:, j], cardinalities[i], bucket_cards[j]
                )
                if j > i:
                    h_bkt_bkt[i, j] = joint_entropy(
                        bucketized[:, i], bucketized[:, j], bucket_cards[i], bucket_cards[j]
                    )
                    h_bkt_bkt[j, i] = h_bkt_bkt[i, j]
        return h_raw, h_bkt, h_raw_bkt, h_bkt_bkt

    def _entropy_tables_vectorized(
        self, dataset: Dataset
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Noise-free entropies from one shared scan of [raw | bucketized].

        The raw and bucketized encodings are stacked into 2m virtual
        attributes so a single Gram product yields every contingency table the
        learner needs: marginal counts on the diagonal blocks, the
        x_i × bkt(x_j) tables in the raw-times-bucketized quadrant and the
        bkt(x_i) × bkt(x_j) tables in the bucketized quadrant.  The records
        are never rescanned per pair.

        Only the quadrants the learner consumes are computed: the Gram product
        is [raw | bkt].T @ bkt, skipping the raw x raw quadrant (the largest
        one) entirely; marginal counts fall out of the same product (buckets
        partition the records, so each raw_i x bkt_i block's row sums are the
        raw marginals, and its bkt_i x bkt_i block is diagonal).

        Each entropy is then reduced from its (tiny, n-independent) count
        block with :func:`~repro.stats.pairwise.block_entropy` — the exact
        scalar pipeline of the reference loop — so the two engines produce
        bit-identical entropies.  (``PairwiseStats.entropies()`` offers a
        fully batched reduceat derivation, but its different float-summation
        order perturbs values by ~1 ulp, which is enough to flip tie-breaks
        between exactly-tied correlations such as clipped SU = 1.0 pairs.)
        """
        schema = dataset.schema
        m = len(schema)
        raw = dataset.data
        bucketized = dataset.bucketized()
        raw_cards = tuple(schema.cardinalities)
        bucket_cards = tuple(schema.bucketized_cardinalities)
        stats = CrossPairwiseStats.from_matrices(
            np.hstack([raw, bucketized]),
            raw_cards + bucket_cards,
            bucketized,
            bucket_cards,
            # Dataset/bucketize already guarantee in-range codes.
            validate=False,
        )

        h_raw = np.array(
            [block_entropy(stats.table(i, i).sum(axis=1)) for i in range(m)]
        )
        h_bkt = np.array(
            [block_entropy(np.diagonal(stats.table(m + i, i))) for i in range(m)]
        )
        h_raw_bkt = np.zeros((m, m))
        h_bkt_bkt = np.zeros((m, m))
        for i in range(m):
            for j in range(m):
                if i == j:
                    continue
                h_raw_bkt[i, j] = block_entropy(stats.table(i, j))
                if j > i:
                    h_bkt_bkt[i, j] = block_entropy(stats.table(m + i, j))
                    h_bkt_bkt[j, i] = h_bkt_bkt[i, j]
        return h_raw, h_bkt, h_raw_bkt, h_bkt_bkt

    def entropy_tables(
        self, dataset: Dataset, rng: np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The (possibly noisy) entropy tables the greedy search consumes.

        Returns ``(H(x_i), H(bkt(x_i)), H(x_i, bkt(x_j)), H(bkt(x_i),
        bkt(x_j)))`` exactly as :meth:`learn` would see them.  Public so the
        conformance layer (:mod:`repro.testing.invariants`) can assert
        bit-exact equality between the ``"vectorized"`` and ``"reference"``
        engines without reaching into learner internals.
        """
        return self._compute_entropies(dataset, rng)

    def _compute_entropies(
        self, dataset: Dataset, rng: np.random.Generator | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return (H(x_i), H(bkt(x_i)), H(x_i, bkt(x_j)), H(bkt(x_i), bkt(x_j))).

        When the DP variant is enabled every value receives fresh Laplace noise
        scaled with the Lemma 1 sensitivity bound evaluated at a *noisy*
        record count, and the privacy expenditure is recorded.
        """
        if self._config.engine == "reference":
            h_raw, h_bkt, h_raw_bkt, h_bkt_bkt = self._entropy_tables_reference(dataset)
        else:
            h_raw, h_bkt, h_raw_bkt, h_bkt_bkt = self._entropy_tables_vectorized(dataset)

        epsilon_h = self._config.epsilon_entropy
        if epsilon_h is None:
            return h_raw, h_bkt, h_raw_bkt, h_bkt_bkt
        if rng is None:
            raise ValueError(
                "differentially-private structure learning requires an explicit "
                "rng; pass the pipeline's generator to learn()"
            )

        m = len(h_raw)
        # Randomize the record count used for the sensitivity bound (Eq. 10).
        noisy_count = laplace_mechanism(
            float(len(dataset)), 1.0, self._config.epsilon_count, rng
        )
        noisy_count = max(2.0, float(noisy_count))
        sensitivity = entropy_sensitivity_bound(int(math.ceil(noisy_count)))
        num_entropy_values = 2 * m + m * (m - 1) + (m * (m - 1)) // 2

        if self._config.engine == "reference":
            def _noisy(value: float) -> float:
                return max(0.0, laplace_mechanism(value, sensitivity, epsilon_h, rng))

            h_raw = np.array([_noisy(value) for value in h_raw])
            h_bkt = np.array([_noisy(value) for value in h_bkt])
            noisy_raw_bkt = np.zeros_like(h_raw_bkt)
            noisy_bkt_bkt = np.zeros_like(h_bkt_bkt)
            for i in range(m):
                for j in range(m):
                    if i == j:
                        continue
                    noisy_raw_bkt[i, j] = _noisy(h_raw_bkt[i, j])
                    if j > i:
                        value = _noisy(h_bkt_bkt[i, j])
                        noisy_bkt_bkt[i, j] = value
                        noisy_bkt_bkt[j, i] = value
        else:
            # One batched draw for every entropy value.  Consumes exactly as
            # many Laplace variates as the reference loop (the stream position
            # after learning is identical) but assigns them in flat order:
            # h_raw, h_bkt, then the off-diagonal raw x bkt entries row-major,
            # then the upper-triangular bkt x bkt entries row-major.
            noise = rng.laplace(0.0, sensitivity / epsilon_h, size=num_entropy_values)
            off_diag = ~np.eye(m, dtype=bool)
            upper = np.triu(np.ones((m, m), dtype=bool), k=1)
            h_raw = np.maximum(0.0, h_raw + noise[:m])
            h_bkt = np.maximum(0.0, h_bkt + noise[m : 2 * m])
            noisy_raw_bkt = np.zeros_like(h_raw_bkt)
            noisy_raw_bkt[off_diag] = np.maximum(
                0.0, h_raw_bkt[off_diag] + noise[2 * m : 2 * m + m * (m - 1)]
            )
            noisy_bkt_bkt = np.zeros_like(h_bkt_bkt)
            noisy_bkt_bkt[upper] = np.maximum(
                0.0, h_bkt_bkt[upper] + noise[2 * m + m * (m - 1) :]
            )
            noisy_bkt_bkt = noisy_bkt_bkt + noisy_bkt_bkt.T

        if self._accountant is not None:
            self._accountant.spend(
                "structure/entropy",
                epsilon_h,
                0.0,
                count=num_entropy_values,
                scope="structure-data",
            )
            self._accountant.spend(
                "structure/count", self._config.epsilon_count, 0.0, scope="structure-data"
            )
        return h_raw, h_bkt, noisy_raw_bkt, noisy_bkt_bkt

    def _correlations(
        self, dataset: Dataset, rng: np.random.Generator | None
    ) -> _CorrelationTables:
        h_raw, h_bkt, h_raw_bkt, h_bkt_bkt = self._compute_entropies(dataset, rng)
        m = len(h_raw)
        if self._config.engine == "reference":
            target_parent = np.zeros((m, m))
            parent_parent = np.zeros((m, m))
            for i in range(m):
                for j in range(m):
                    if i == j:
                        continue
                    target_parent[i, j] = symmetrical_uncertainty_from_entropies(
                        h_raw[i], h_bkt[j], h_raw_bkt[i, j]
                    )
                    parent_parent[i, j] = symmetrical_uncertainty_from_entropies(
                        h_bkt[i], h_bkt[j], h_bkt_bkt[i, j]
                    )
            return _CorrelationTables(
                target_parent=target_parent, parent_parent=parent_parent
            )

        off_diag = ~np.eye(m, dtype=bool)
        target_parent = _symmetrical_uncertainty_matrix(h_raw, h_bkt, h_raw_bkt)
        parent_parent = _symmetrical_uncertainty_matrix(h_bkt, h_bkt, h_bkt_bkt)
        target_parent *= off_diag
        parent_parent *= off_diag
        return _CorrelationTables(target_parent=target_parent, parent_parent=parent_parent)

    # ------------------------------------------------------------------ #
    # CFS merit and greedy search
    # ------------------------------------------------------------------ #
    @staticmethod
    def merit_score(
        target: int, parent_set: tuple[int, ...], tables: _CorrelationTables
    ) -> float:
        """The CFS merit of a candidate parent set (Eq. 4)."""
        if not parent_set:
            return 0.0
        relevance = float(
            sum(tables.target_parent[target, parent] for parent in parent_set)
        )
        redundancy = 0.0
        for index, first in enumerate(parent_set):
            for second in parent_set[index + 1 :]:
                redundancy += 2.0 * tables.parent_parent[first, second]
        denominator = math.sqrt(len(parent_set) + redundancy)
        return relevance / denominator if denominator > 0 else 0.0

    @staticmethod
    def parent_cost(parent_set: tuple[int, ...], bucket_cardinalities: list[int]) -> int:
        """Parent-configuration cost (Eq. 6) in bucketized domains."""
        cost = 1
        for parent in parent_set:
            cost *= bucket_cardinalities[parent]
        return cost

    def learn(
        self,
        dataset: Dataset,
        rng: np.random.Generator | None = None,
    ) -> DependencyStructure:
        """Learn the dependency structure from the structure-learning split DT.

        ``rng`` is only consumed by the differentially-private variant
        (``epsilon_entropy`` set), which requires it explicitly — there is no
        silent fixed-seed fallback.  Non-private learning is deterministic and
        accepts ``rng=None``.
        """
        if len(dataset) == 0:
            raise ValueError("cannot learn a structure from an empty dataset")
        tables = self._correlations(dataset, rng)
        if self._config.engine == "reference":
            parents = self._greedy_reference(tables, dataset.schema)
        else:
            parents = self._greedy_incremental(tables, dataset.schema)

        graph = nx.DiGraph()
        graph.add_nodes_from(range(len(parents)))
        for child, parent_set in enumerate(parents):
            graph.add_edges_from((parent, child) for parent in parent_set)
        order = tuple(nx.lexicographical_topological_sort(graph))
        return DependencyStructure(parents=tuple(parents), order=order)

    def _target_order(self, tables: _CorrelationTables) -> list[int]:
        """Process targets in decreasing order of their best available predictor
        so that strongly-predicted attributes get first pick of parents before
        acyclicity constraints start binding."""
        best_predictor = tables.target_parent.max(axis=1)
        return list(np.argsort(-best_predictor))

    def _greedy_reference(
        self, tables: _CorrelationTables, schema
    ) -> list[tuple[int, ...]]:
        """The paper's greedy search with a full DAG probe per candidate edge."""
        m = len(schema)
        bucket_cards = schema.bucketized_cardinalities
        cardinalities = schema.cardinalities

        graph = nx.DiGraph()
        graph.add_nodes_from(range(m))
        parents: list[tuple[int, ...]] = [() for _ in range(m)]

        for target in self._target_order(tables):
            current: tuple[int, ...] = ()
            current_score = 0.0
            while len(current) < self._config.max_parents:
                best_candidate = None
                best_score = current_score
                for candidate in range(m):
                    if candidate == target or candidate in current:
                        continue
                    tentative = current + (candidate,)
                    tentative_cost = self.parent_cost(tentative, bucket_cards)
                    if tentative_cost > self._config.max_parent_cost:
                        continue
                    if (
                        self._config.max_table_cells is not None
                        and tentative_cost * cardinalities[target]
                        > self._config.max_table_cells
                    ):
                        continue
                    graph.add_edge(candidate, target)
                    acyclic = nx.is_directed_acyclic_graph(graph)
                    graph.remove_edge(candidate, target)
                    if not acyclic:
                        continue
                    score = self.merit_score(target, tentative, tables)
                    if score > best_score + self._config.min_merit_gain:
                        best_score = score
                        best_candidate = candidate
                if best_candidate is None:
                    break
                current = current + (best_candidate,)
                current_score = best_score
                graph.add_edge(best_candidate, target)
            parents[target] = current
        return parents

    def _greedy_incremental(
        self, tables: _CorrelationTables, schema
    ) -> list[tuple[int, ...]]:
        """Greedy search with O(m) candidate acyclicity checks.

        Instead of probing a graph copy per candidate edge, a boolean
        reachability matrix ``reach`` (``reach[u, v]`` iff there is a directed
        path u -> v, reflexively true on the diagonal) is maintained: adding
        the edge candidate -> target creates a cycle iff the target already
        reaches the candidate, and accepting an edge updates the matrix with
        one outer product.  Candidate merits are evaluated as one array
        expression per greedy step; the sequential threshold scan over that
        array replicates the reference selection rule (a later candidate must
        beat the running best by ``min_merit_gain``) exactly.
        """
        m = len(schema)
        bucket_cards = np.asarray(schema.bucketized_cardinalities, dtype=np.int64)
        cardinalities = np.asarray(schema.cardinalities, dtype=np.int64)
        target_parent = tables.target_parent
        parent_parent = tables.parent_parent
        min_gain = self._config.min_merit_gain

        reach = np.eye(m, dtype=bool)
        parents: list[tuple[int, ...]] = [() for _ in range(m)]

        for target in self._target_order(tables):
            current: list[int] = []
            current_score = 0.0
            relevance = 0.0
            redundancy = 0.0
            cost = 1
            while len(current) < self._config.max_parents:
                tentative_cost = cost * bucket_cards
                valid = tentative_cost <= self._config.max_parent_cost
                if self._config.max_table_cells is not None:
                    valid &= (
                        tentative_cost * cardinalities[target]
                        <= self._config.max_table_cells
                    )
                valid &= ~reach[target]  # target ⇝ candidate would close a cycle
                valid[target] = False
                if current:
                    members = np.array(current, dtype=np.int64)
                    valid[members] = False
                    extra_redundancy = 2.0 * parent_parent[members, :].sum(axis=0)
                else:
                    extra_redundancy = np.zeros(m)
                if not valid.any():
                    break
                denominator = np.sqrt(
                    len(current) + 1 + redundancy + extra_redundancy
                )
                with np.errstate(divide="ignore", invalid="ignore"):
                    scores = np.where(
                        denominator > 0,
                        (relevance + target_parent[target]) / denominator,
                        0.0,
                    )

                best_candidate = None
                best_score = current_score
                for candidate in np.flatnonzero(valid):
                    score = float(scores[candidate])
                    if score > best_score + min_gain:
                        best_score = score
                        best_candidate = int(candidate)
                if best_candidate is None:
                    break
                current.append(best_candidate)
                current_score = best_score
                relevance += float(target_parent[target, best_candidate])
                redundancy += float(extra_redundancy[best_candidate])
                cost *= int(bucket_cards[best_candidate])
                # Everything that reaches the new parent now reaches everything
                # the target reaches.
                reach |= np.outer(reach[:, best_candidate], reach[target])
            parents[target] = tuple(current)
        return parents


def _symmetrical_uncertainty_matrix(
    h_first: np.ndarray, h_second: np.ndarray, h_joint: np.ndarray
) -> np.ndarray:
    """Vectorized Eq. 5 over all pairs: 2 - 2 H(x,y) / (H(x) + H(y)), clipped.

    Elementwise identical to
    :func:`repro.stats.entropy.symmetrical_uncertainty_from_entropies`.
    """
    denominator = h_first[:, None] + h_second[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        value = 2.0 - 2.0 * h_joint / denominator
    value = np.where(denominator > 0, value, 0.0)
    return np.minimum(1.0, np.maximum(0.0, value))
