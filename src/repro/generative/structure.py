"""Dependency-structure learning (Section 3.3 of the paper).

The structure of the generative model is a directed acyclic graph over the
data attributes.  It is learned by greedy Correlation-based Feature Selection
(CFS): for each attribute, parents are added one at a time so as to maximize
the merit score of Eq. 4,

    score(P) = sum_{j in P} corr(x_i, x_j)
               / sqrt(|P| + sum_{j,k in P, j != k} corr(x_j, x_k)) ,

where ``corr`` is the symmetrical uncertainty coefficient (Eq. 5), subject to

* the overall graph staying acyclic, and
* the parent-configuration cost of Eq. 6 staying below ``max_parent_cost``
  (parents are counted in their *bucketized* domains, Eq. 7).

The differentially-private variant replaces every entropy value with a noisy
one (Laplace noise scaled by the Lemma 1 sensitivity bound computed from a
noisy record count) before running exactly the same greedy search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.datasets.dataset import Dataset
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.laplace import laplace_mechanism
from repro.stats.entropy import (
    entropy,
    entropy_sensitivity_bound,
    joint_entropy,
    symmetrical_uncertainty_from_entropies,
)

__all__ = ["DependencyStructure", "StructureLearningConfig", "StructureLearner"]


@dataclass(frozen=True)
class DependencyStructure:
    """A learned DAG over attributes plus a compatible re-sampling order.

    Parameters
    ----------
    parents:
        ``parents[i]`` is the tuple of parent attribute indices of attribute i
        (possibly empty).
    order:
        A permutation of attribute indices that is a topological order of the
        DAG: every attribute appears after all of its parents.  This is the
        re-sampling order σ used by the synthesizer (Section 3.2).
    """

    parents: tuple[tuple[int, ...], ...]
    order: tuple[int, ...]

    def __post_init__(self) -> None:
        m = len(self.parents)
        if sorted(self.order) != list(range(m)):
            raise ValueError("order must be a permutation of the attribute indices")
        position = {attribute: pos for pos, attribute in enumerate(self.order)}
        for child, parent_set in enumerate(self.parents):
            for parent in parent_set:
                if not 0 <= parent < m:
                    raise ValueError(f"parent index {parent} out of range")
                if parent == child:
                    raise ValueError(f"attribute {child} cannot be its own parent")
                if position[parent] >= position[child]:
                    raise ValueError(
                        "order is not a topological order of the parent structure"
                    )

    @property
    def num_attributes(self) -> int:
        """Number of attributes (nodes) in the structure."""
        return len(self.parents)

    @property
    def num_edges(self) -> int:
        """Total number of parent-child edges."""
        return sum(len(parent_set) for parent_set in self.parents)

    def as_digraph(self) -> nx.DiGraph:
        """The structure as a networkx directed graph (edges parent -> child)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_attributes))
        for child, parent_set in enumerate(self.parents):
            graph.add_edges_from((parent, child) for parent in parent_set)
        return graph

    @classmethod
    def empty(cls, num_attributes: int) -> "DependencyStructure":
        """A structure with no edges (every attribute independent)."""
        return cls(
            parents=tuple(() for _ in range(num_attributes)),
            order=tuple(range(num_attributes)),
        )

    @classmethod
    def from_parent_map(cls, parents: dict[int, tuple[int, ...]], num_attributes: int) -> "DependencyStructure":
        """Build a structure from a child -> parents mapping, deriving an order."""
        parent_tuples = tuple(tuple(parents.get(i, ())) for i in range(num_attributes))
        graph = nx.DiGraph()
        graph.add_nodes_from(range(num_attributes))
        for child, parent_set in enumerate(parent_tuples):
            graph.add_edges_from((parent, child) for parent in parent_set)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError("the parent map contains a cycle")
        order = tuple(nx.lexicographical_topological_sort(graph))
        return cls(parents=parent_tuples, order=order)


@dataclass
class StructureLearningConfig:
    """Knobs of the CFS structure learner.

    Parameters
    ----------
    max_parent_cost:
        Maximum allowed product of (bucketized) parent cardinalities for any
        attribute (Eq. 6); prevents over-fitting the conditional tables.
    max_parents:
        Hard cap on the number of parents per attribute (practical guard on
        top of the cost constraint).
    epsilon_entropy:
        Per-entropy-value ε for the DP variant; ``None`` learns without noise.
    epsilon_count:
        ε used to randomize the record count that feeds the sensitivity bound
        (Eq. 10).  Only used when ``epsilon_entropy`` is set.
    min_merit_gain:
        Minimum improvement of the CFS merit required to add another parent.
    max_table_cells:
        Optional cap on the total number of cells of an attribute's
        conditional table, i.e. (parent-configuration count) × (attribute
        cardinality).  The paper's Eq. 6 only bounds the configuration count,
        which is adequate at its 280k-record parameter split; at smaller
        scales this extra knob keeps the per-cell counts large enough to
        survive the DP noise of Eq. 14.  ``None`` (the default) reproduces the
        paper's behaviour exactly.
    """

    max_parent_cost: int = 300
    max_parents: int = 4
    epsilon_entropy: float | None = None
    epsilon_count: float = 0.1
    min_merit_gain: float = 1e-6
    max_table_cells: int | None = None

    def __post_init__(self) -> None:
        if self.max_parent_cost < 1:
            raise ValueError("max_parent_cost must be positive")
        if self.max_parents < 0:
            raise ValueError("max_parents must be non-negative")
        if self.epsilon_entropy is not None and self.epsilon_entropy <= 0:
            raise ValueError("epsilon_entropy must be positive when provided")
        if self.epsilon_count <= 0:
            raise ValueError("epsilon_count must be positive")
        if self.max_table_cells is not None and self.max_table_cells < 1:
            raise ValueError("max_table_cells must be positive when provided")


@dataclass
class _CorrelationTables:
    """Symmetrical-uncertainty values needed by the greedy CFS search.

    ``target_parent[i, j]`` is corr(x_i, bkt(x_j)) — how well (bucketized)
    attribute j predicts attribute i.  ``parent_parent[j, k]`` is
    corr(bkt(x_j), bkt(x_k)) — the redundancy between candidate parents.
    """

    target_parent: np.ndarray
    parent_parent: np.ndarray


class StructureLearner:
    """Greedy CFS structure learner with optional differential privacy."""

    def __init__(
        self,
        config: StructureLearningConfig | None = None,
        accountant: PrivacyAccountant | None = None,
    ):
        self._config = config if config is not None else StructureLearningConfig()
        self._accountant = accountant

    @property
    def config(self) -> StructureLearningConfig:
        """The learner's configuration."""
        return self._config

    # ------------------------------------------------------------------ #
    # Entropy / correlation computation
    # ------------------------------------------------------------------ #
    def _compute_entropies(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return (H(x_i), H(bkt(x_i)), H(x_i, bkt(x_j)), H(bkt(x_i), bkt(x_j))).

        When the DP variant is enabled every value receives fresh Laplace noise
        scaled with the Lemma 1 sensitivity bound evaluated at a *noisy*
        record count, and the privacy expenditure is recorded.
        """
        schema = dataset.schema
        m = len(schema)
        raw = dataset.data
        bucketized = dataset.bucketized()
        cardinalities = schema.cardinalities
        bucket_cards = schema.bucketized_cardinalities

        h_raw = np.array([entropy(raw[:, i], cardinalities[i]) for i in range(m)])
        h_bkt = np.array([entropy(bucketized[:, i], bucket_cards[i]) for i in range(m)])
        h_raw_bkt = np.zeros((m, m))
        h_bkt_bkt = np.zeros((m, m))
        for i in range(m):
            for j in range(m):
                if i == j:
                    continue
                h_raw_bkt[i, j] = joint_entropy(
                    raw[:, i], bucketized[:, j], cardinalities[i], bucket_cards[j]
                )
                if j > i:
                    h_bkt_bkt[i, j] = joint_entropy(
                        bucketized[:, i], bucketized[:, j], bucket_cards[i], bucket_cards[j]
                    )
                    h_bkt_bkt[j, i] = h_bkt_bkt[i, j]

        epsilon_h = self._config.epsilon_entropy
        if epsilon_h is None:
            return h_raw, h_bkt, h_raw_bkt, h_bkt_bkt

        # Randomize the record count used for the sensitivity bound (Eq. 10).
        noisy_count = laplace_mechanism(
            float(len(dataset)), 1.0, self._config.epsilon_count, rng
        )
        noisy_count = max(2.0, float(noisy_count))
        sensitivity = entropy_sensitivity_bound(int(math.ceil(noisy_count)))

        def _noisy(value: float) -> float:
            return max(0.0, laplace_mechanism(value, sensitivity, epsilon_h, rng))

        h_raw = np.array([_noisy(value) for value in h_raw])
        h_bkt = np.array([_noisy(value) for value in h_bkt])
        noisy_raw_bkt = np.zeros_like(h_raw_bkt)
        noisy_bkt_bkt = np.zeros_like(h_bkt_bkt)
        num_entropy_values = 2 * m
        for i in range(m):
            for j in range(m):
                if i == j:
                    continue
                noisy_raw_bkt[i, j] = _noisy(h_raw_bkt[i, j])
                num_entropy_values += 1
                if j > i:
                    value = _noisy(h_bkt_bkt[i, j])
                    noisy_bkt_bkt[i, j] = value
                    noisy_bkt_bkt[j, i] = value
                    num_entropy_values += 1

        if self._accountant is not None:
            self._accountant.spend(
                "structure/entropy",
                epsilon_h,
                0.0,
                count=num_entropy_values,
                scope="structure-data",
            )
            self._accountant.spend(
                "structure/count", self._config.epsilon_count, 0.0, scope="structure-data"
            )
        return h_raw, h_bkt, noisy_raw_bkt, noisy_bkt_bkt

    def _correlations(
        self, dataset: Dataset, rng: np.random.Generator
    ) -> _CorrelationTables:
        h_raw, h_bkt, h_raw_bkt, h_bkt_bkt = self._compute_entropies(dataset, rng)
        m = len(h_raw)
        target_parent = np.zeros((m, m))
        parent_parent = np.zeros((m, m))
        for i in range(m):
            for j in range(m):
                if i == j:
                    continue
                target_parent[i, j] = symmetrical_uncertainty_from_entropies(
                    h_raw[i], h_bkt[j], h_raw_bkt[i, j]
                )
                parent_parent[i, j] = symmetrical_uncertainty_from_entropies(
                    h_bkt[i], h_bkt[j], h_bkt_bkt[i, j]
                )
        return _CorrelationTables(target_parent=target_parent, parent_parent=parent_parent)

    # ------------------------------------------------------------------ #
    # CFS merit and greedy search
    # ------------------------------------------------------------------ #
    @staticmethod
    def merit_score(
        target: int, parent_set: tuple[int, ...], tables: _CorrelationTables
    ) -> float:
        """The CFS merit of a candidate parent set (Eq. 4)."""
        if not parent_set:
            return 0.0
        relevance = float(
            sum(tables.target_parent[target, parent] for parent in parent_set)
        )
        redundancy = 0.0
        for index, first in enumerate(parent_set):
            for second in parent_set[index + 1 :]:
                redundancy += 2.0 * tables.parent_parent[first, second]
        denominator = math.sqrt(len(parent_set) + redundancy)
        return relevance / denominator if denominator > 0 else 0.0

    @staticmethod
    def parent_cost(parent_set: tuple[int, ...], bucket_cardinalities: list[int]) -> int:
        """Parent-configuration cost (Eq. 6) in bucketized domains."""
        cost = 1
        for parent in parent_set:
            cost *= bucket_cardinalities[parent]
        return cost

    def learn(
        self,
        dataset: Dataset,
        rng: np.random.Generator | None = None,
    ) -> DependencyStructure:
        """Learn the dependency structure from the structure-learning split DT."""
        if len(dataset) == 0:
            raise ValueError("cannot learn a structure from an empty dataset")
        generator = rng if rng is not None else np.random.default_rng(0)
        tables = self._correlations(dataset, generator)
        schema = dataset.schema
        m = len(schema)
        bucket_cards = schema.bucketized_cardinalities

        graph = nx.DiGraph()
        graph.add_nodes_from(range(m))
        parents: list[tuple[int, ...]] = [() for _ in range(m)]

        # Process targets in decreasing order of their best available predictor
        # so that strongly-predicted attributes get first pick of parents
        # before acyclicity constraints start binding.
        best_predictor = tables.target_parent.max(axis=1)
        target_order = list(np.argsort(-best_predictor))

        cardinalities = schema.cardinalities
        for target in target_order:
            current: tuple[int, ...] = ()
            current_score = 0.0
            while len(current) < self._config.max_parents:
                best_candidate = None
                best_score = current_score
                for candidate in range(m):
                    if candidate == target or candidate in current:
                        continue
                    tentative = current + (candidate,)
                    tentative_cost = self.parent_cost(tentative, bucket_cards)
                    if tentative_cost > self._config.max_parent_cost:
                        continue
                    if (
                        self._config.max_table_cells is not None
                        and tentative_cost * cardinalities[target]
                        > self._config.max_table_cells
                    ):
                        continue
                    graph.add_edge(candidate, target)
                    acyclic = nx.is_directed_acyclic_graph(graph)
                    graph.remove_edge(candidate, target)
                    if not acyclic:
                        continue
                    score = self.merit_score(target, tentative, tables)
                    if score > best_score + self._config.min_merit_gain:
                        best_score = score
                        best_candidate = candidate
                if best_candidate is None:
                    break
                current = current + (best_candidate,)
                current_score = best_score
                graph.add_edge(best_candidate, target)
            parents[target] = current

        order = tuple(nx.lexicographical_topological_sort(graph))
        return DependencyStructure(parents=tuple(parents), order=order)
