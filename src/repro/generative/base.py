"""Abstract interfaces for generative models used by the synthesis mechanism.

Mechanism 1 (Section 2) only needs two things from a generative model M:

* the ability to *generate* a candidate synthetic record y from a seed d, and
* the ability to *evaluate* Pr{y = M(d)} for arbitrary (d, y) pairs so the
  privacy test can count plausible seeds.

The plausible-deniability framework is deliberately agnostic to how M is
built; any class implementing :class:`GenerativeModel` can be plugged into
:class:`repro.core.mechanism.SynthesisMechanism`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.datasets.schema import Schema

__all__ = ["GenerativeModel", "SeedBasedGenerativeModel"]


class GenerativeModel(ABC):
    """A probabilistic model that maps a seed record to a synthetic record."""

    @property
    @abstractmethod
    def schema(self) -> Schema:
        """Schema of both the input (seed) and output (synthetic) records."""

    @abstractmethod
    def generate(self, seed: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Generate one synthetic record (encoded) from the given seed record."""

    @abstractmethod
    def seed_probability(self, seed: np.ndarray, candidate: np.ndarray) -> float:
        """Pr{candidate = M(seed)} for one (seed, candidate) pair."""

    def batch_seed_probabilities(
        self, seeds: np.ndarray, candidate: np.ndarray
    ) -> np.ndarray:
        """Pr{candidate = M(seed)} for every row of ``seeds``.

        The default implementation loops over :meth:`seed_probability`;
        concrete models should override this with a vectorized version because
        the privacy test evaluates it against the whole seed dataset.
        """
        matrix = np.asarray(seeds, dtype=np.int64)
        return np.array(
            [self.seed_probability(matrix[row], candidate) for row in range(matrix.shape[0])],
            dtype=np.float64,
        )

    def generate_batch(self, seeds: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Generate one synthetic record per row of ``seeds``.

        The default implementation loops over :meth:`generate`; seed-based
        models should override it with a vectorized version — the batched
        Mechanism 1 calls it on whole blocks of seed rows.
        """
        matrix = np.asarray(seeds, dtype=np.int64)
        if matrix.ndim != 2:
            raise ValueError("seeds must be a 2-D (records x attributes) array")
        if matrix.shape[0] == 0:
            return np.empty((0, len(self.schema)), dtype=np.int64)
        return np.vstack([self.generate(matrix[row], rng) for row in range(matrix.shape[0])])

    def batch_probability_matrix(
        self, seeds: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Matrix of Pr{candidates[c] = M(seeds[s])} with shape (candidates, seeds).

        The default implementation stacks :meth:`batch_seed_probabilities` per
        candidate; concrete models should vectorize over both dimensions.
        """
        matrix = np.asarray(candidates, dtype=np.int64)
        if matrix.ndim != 2:
            raise ValueError("candidates must be a 2-D (records x attributes) array")
        seed_matrix = np.asarray(seeds, dtype=np.int64)
        if matrix.shape[0] == 0:
            return np.empty((0, seed_matrix.shape[0]), dtype=np.float64)
        return np.vstack(
            [
                self.batch_seed_probabilities(seed_matrix, matrix[row])
                for row in range(matrix.shape[0])
            ]
        )


class SeedBasedGenerativeModel(GenerativeModel):
    """Marker base class for models whose output genuinely depends on the seed.

    The distinction matters for the privacy discussion in Section 8: when the
    model ignores its seed (like the marginal baseline) the privacy test is
    vacuous — every record of the input dataset is an equally plausible seed —
    whereas seed-dependent models rely on the test to protect their seeds.
    """

    #: Whether generated records actually depend on the seed record.
    seed_dependent: bool = True
