"""Conditional-probability-table (parameter) learning (Section 3.4).

For every attribute i the model needs Pr{x_i | parent configuration}.  The
paper assumes a multinomial distribution over the attribute's values per
parent configuration, with a Dirichlet conjugate prior; learning reduces to
counting how many records in the parameter split DP exhibit each (value,
configuration) combination.

The DP variant adds Laplace(1/ε_p) noise to every count and clamps at zero
(Eq. 14); the L1 sensitivity of the whole count vector of one attribute is 1
because one record contributes to exactly one cell.

Parent configurations are indexed in the parents' *bucketized* domains
(Eq. 7), matching the structure learner's cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import Dataset
from repro.generative.structure import DependencyStructure
from repro.privacy.accountant import PrivacyAccountant

__all__ = ["ConditionalParameters", "ParameterLearner", "sample_dirichlet_rows"]


def sample_dirichlet_rows(rng: np.random.Generator, alphas: np.ndarray) -> np.ndarray:
    """Draw one Dirichlet sample per row of a (rows x values) alpha matrix.

    Vectorized via the Gamma representation: each row of independent
    ``standard_gamma(alpha)`` draws, normalized, is Dirichlet(alpha).  One
    batched call replaces a per-row ``rng.dirichlet`` loop.

    Note the RNG stream differs from per-row ``rng.dirichlet`` calls for the
    same generator state: ``dirichlet`` consumes its own gamma draws with a
    different internal call pattern, so tables sampled before/after this
    change are not bit-identical for a fixed seed (they follow the same
    distribution).

    Rows whose gamma draws all underflow to zero (possible only for extreme
    sub-1e-2 alphas) fall back to the normalized alphas themselves, keeping
    every returned row a valid distribution.
    """
    shape = np.maximum(np.asarray(alphas, dtype=np.float64), 1e-9)
    draws = rng.standard_gamma(shape)
    totals = draws.sum(axis=1, keepdims=True)
    degenerate = totals[:, 0] <= 0.0
    if np.any(degenerate):
        draws[degenerate] = shape[degenerate]
        totals = draws.sum(axis=1, keepdims=True)
    return draws / totals


@dataclass
class ConditionalParameters:
    """The conditional distribution table of a single attribute.

    Parameters
    ----------
    attribute_index:
        Which attribute this table predicts.
    parents:
        Parent attribute indices, in the order used for configuration
        indexing.
    parent_cardinalities:
        Bucketized cardinality of each parent (the radices of the mixed-radix
        configuration index).
    table:
        Row-stochastic matrix of shape (num_configurations, cardinality):
        ``table[c, v] = Pr{x_i = v | configuration c}``.
    counts:
        The (possibly noisy) counts the table was estimated from; kept for
        inspection and posterior re-sampling.
    prior:
        Dirichlet prior pseudo-counts per value (the ᾱ vector of Eq. 11).
        The learner uses a prior proportional to the attribute's marginal so
        that rarely-observed parent configurations degrade gracefully to the
        marginal distribution instead of to a uniform one.
    """

    attribute_index: int
    parents: tuple[int, ...]
    parent_cardinalities: tuple[int, ...]
    table: np.ndarray
    counts: np.ndarray
    prior: np.ndarray | None = None

    def __post_init__(self) -> None:
        table = np.asarray(self.table, dtype=np.float64)
        expected_configs = int(np.prod(self.parent_cardinalities)) if self.parents else 1
        if table.ndim != 2 or table.shape[0] != expected_configs:
            raise ValueError(
                f"table must have {expected_configs} configuration rows, "
                f"got shape {table.shape}"
            )
        if not np.allclose(table.sum(axis=1), 1.0, atol=1e-6):
            raise ValueError("every configuration row must sum to 1")
        if self.prior is None:
            self.prior = np.full(table.shape[1], 1.0 / table.shape[1])

    @property
    def num_configurations(self) -> int:
        """Number of parent configurations (rows of the table)."""
        return self.table.shape[0]

    @property
    def cardinality(self) -> int:
        """Number of values of the predicted attribute (columns of the table)."""
        return self.table.shape[1]

    def configuration_index(self, bucketized_parent_values: np.ndarray) -> int:
        """Mixed-radix index of one parent configuration."""
        if len(self.parents) == 0:
            return 0
        values = np.asarray(bucketized_parent_values, dtype=np.int64)
        if values.shape != (len(self.parents),):
            raise ValueError(
                f"expected {len(self.parents)} parent values, got shape {values.shape}"
            )
        index = 0
        for value, radix in zip(values, self.parent_cardinalities):
            if not 0 <= value < radix:
                raise ValueError(f"parent value {value} out of range [0, {radix})")
            index = index * radix + int(value)
        return index

    def configuration_indices(self, bucketized_parent_matrix: np.ndarray) -> np.ndarray:
        """Vectorized configuration indices for a (rows x parents) matrix."""
        if len(self.parents) == 0:
            rows = np.asarray(bucketized_parent_matrix).shape[0]
            return np.zeros(rows, dtype=np.int64)
        matrix = np.asarray(bucketized_parent_matrix, dtype=np.int64)
        index = np.zeros(matrix.shape[0], dtype=np.int64)
        for col, radix in enumerate(self.parent_cardinalities):
            index = index * radix + matrix[:, col]
        return index

    def distribution(self, bucketized_parent_values: np.ndarray | None = None) -> np.ndarray:
        """The conditional distribution for one parent configuration."""
        if bucketized_parent_values is None:
            if self.parents:
                raise ValueError("parent values are required for a non-root attribute")
            return self.table[0]
        return self.table[self.configuration_index(bucketized_parent_values)]

    def probability(
        self, value: int, bucketized_parent_values: np.ndarray | None = None
    ) -> float:
        """Pr{x_i = value | configuration}."""
        distribution = self.distribution(bucketized_parent_values)
        if not 0 <= value < distribution.size:
            raise ValueError(f"value {value} out of range [0, {distribution.size})")
        return float(distribution[value])

    def sample(
        self,
        rng: np.random.Generator,
        bucketized_parent_values: np.ndarray | None = None,
    ) -> int:
        """Draw a value from the conditional distribution."""
        distribution = self.distribution(bucketized_parent_values)
        return int(rng.choice(distribution.size, p=distribution))

    def probabilities_batch(
        self, values: np.ndarray, configuration_indices: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``Pr{x_i = values[r] | configuration_indices[r]}`` per row."""
        vals = np.asarray(values, dtype=np.int64)
        configs = np.asarray(configuration_indices, dtype=np.int64)
        if vals.shape != configs.shape or vals.ndim != 1:
            raise ValueError("values and configuration_indices must be matching 1-D arrays")
        if vals.size and (vals.min() < 0 or vals.max() >= self.cardinality):
            raise ValueError(f"values out of range [0, {self.cardinality})")
        if configs.size and (configs.min() < 0 or configs.max() >= self.num_configurations):
            raise ValueError(
                f"configuration indices out of range [0, {self.num_configurations})"
            )
        return self.table[configs, vals]

    def sample_batch(
        self, rng: np.random.Generator, configuration_indices: np.ndarray
    ) -> np.ndarray:
        """Draw one value per configuration row via vectorized inverse-CDF sampling.

        Consumes exactly one uniform draw per row, so a batch of size n advances
        the generator as far as n scalar draws would.
        """
        configs = np.asarray(configuration_indices, dtype=np.int64)
        if configs.ndim != 1:
            raise ValueError("configuration_indices must be a 1-D array")
        if configs.size == 0:
            return np.empty(0, dtype=np.int64)
        if configs.min() < 0 or configs.max() >= self.num_configurations:
            raise ValueError(
                f"configuration indices out of range [0, {self.num_configurations})"
            )
        cdf = np.cumsum(self.table[configs], axis=1)
        # Scale the uniforms onto each row's actual cumulative total so float
        # rounding can never push a draw past the last positive-probability
        # value, and count with <= (searchsorted side="right" semantics) so a
        # draw landing exactly on a bucket boundary — including 0.0 on leading
        # zero-probability values — skips past them.  A zero-probability
        # sample would later fail the privacy test's positive-seed-probability
        # invariant.
        uniforms = rng.random(configs.size) * cdf[:, -1]
        values = np.sum(cdf <= uniforms[:, None], axis=1)
        return np.minimum(values, self.cardinality - 1).astype(np.int64)

    def resample_table(self, rng: np.random.Generator) -> "ConditionalParameters":
        """A copy whose table is drawn from the Dirichlet posterior (Eq. 12).

        The paper samples the multinomial parameters from the posterior rather
        than using the point estimate "to increase the variety of data samples".
        The whole table is drawn with one batched gamma call
        (:func:`sample_dirichlet_rows`); the RNG stream therefore differs from
        the earlier per-row ``rng.dirichlet`` loop for the same seed.
        """
        posterior = self.counts + np.asarray(self.prior)[None, :]
        # Posterior resampling, not a DP release: the spend happens when the
        # noisy counts are formed.  # repro: allow[privacy-unrecorded-noise]
        table = sample_dirichlet_rows(rng, posterior)
        return ConditionalParameters(
            attribute_index=self.attribute_index,
            parents=self.parents,
            parent_cardinalities=self.parent_cardinalities,
            table=table,
            counts=self.counts,
            prior=self.prior,
        )


class ParameterLearner:
    """Learns Dirichlet-multinomial conditional tables, optionally with DP."""

    def __init__(
        self,
        epsilon: float | None = None,
        alpha: float = 1.0,
        sample_parameters: bool = False,
        accountant: PrivacyAccountant | None = None,
        truncation_multiplier: float = 2.0,
    ):
        """Create a parameter learner.

        Parameters
        ----------
        epsilon:
            Per-attribute ε for the Laplace noise on counts (Eq. 14); ``None``
            disables the noise (non-private learning).
        alpha:
            Equivalent sample size of the Dirichlet prior: every parent
            configuration receives ``alpha`` pseudo-records distributed
            proportionally to the attribute's overall marginal (the ᾱ vector
            of Eq. 11).  A marginal-proportional prior makes configurations
            with little or no data degrade to the marginal distribution rather
            than to a uniform one, which matters when the parameter split is
            much smaller than the paper's 280k records.
        sample_parameters:
            If true, the released table is a sample from the Dirichlet
            posterior instead of the posterior mean.
        accountant:
            Optional privacy accountant to record the expenditure.
        truncation_multiplier:
            After adding Laplace noise, cells whose noisy count falls below
            ``truncation_multiplier / epsilon`` (i.e. a few noise scales) are
            zeroed.  This is pure post-processing of the noisy counts — it
            costs no additional privacy — and removes most of the spurious
            "phantom" mass that clamped noise would otherwise spread across
            the many empty cells of large conditional tables.  Set to 0 to
            disable and reproduce the raw Eq. 14 behaviour.
        """
        if epsilon is not None and epsilon <= 0:
            raise ValueError("epsilon must be positive when provided")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if truncation_multiplier < 0:
            raise ValueError("truncation_multiplier must be non-negative")
        self._epsilon = epsilon
        self._alpha = alpha
        self._sample_parameters = sample_parameters
        self._accountant = accountant
        self._truncation_multiplier = truncation_multiplier

    @property
    def epsilon(self) -> float | None:
        """Per-attribute privacy parameter (None when learning without noise)."""
        return self._epsilon

    def _counts_for_attribute(
        self,
        dataset: Dataset,
        bucketized: np.ndarray,
        attribute: int,
        parents: tuple[int, ...],
    ) -> tuple[np.ndarray, tuple[int, ...]]:
        """Raw (configuration x value) counts for one attribute."""
        schema = dataset.schema
        cardinality = schema.cardinalities[attribute]
        parent_cards = tuple(schema.bucketized_cardinalities[p] for p in parents)
        num_configs = int(np.prod(parent_cards)) if parents else 1

        config_index = np.zeros(len(dataset), dtype=np.int64)
        for parent, radix in zip(parents, parent_cards):
            config_index = config_index * radix + bucketized[:, parent]
        values = dataset.data[:, attribute]
        flat = config_index * cardinality + values
        counts = np.bincount(flat, minlength=num_configs * cardinality)
        return counts.reshape(num_configs, cardinality).astype(np.float64), parent_cards

    def learn(
        self,
        dataset: Dataset,
        structure: DependencyStructure,
        rng: np.random.Generator | None = None,
    ) -> list[ConditionalParameters]:
        """Learn one conditional table per attribute from the parameter split DP.

        ``rng`` is only consumed when randomness is actually needed (Laplace
        noise on the counts or posterior sampling of the tables), and is then
        required explicitly — there is no silent fixed-seed fallback.
        Deterministic (non-DP, posterior-mean) learning accepts ``rng=None``.
        """
        if len(dataset) == 0:
            raise ValueError("cannot learn parameters from an empty dataset")
        if structure.num_attributes != dataset.num_attributes:
            raise ValueError("structure and dataset disagree on the number of attributes")
        generator = rng
        if generator is None and (self._epsilon is not None or self._sample_parameters):
            raise ValueError(
                "parameter learning with DP noise or posterior sampling requires "
                "an explicit rng; pass the pipeline's generator to learn()"
            )
        bucketized = dataset.bucketized()

        tables: list[ConditionalParameters] = []
        for attribute in range(dataset.num_attributes):
            parents = structure.parents[attribute]
            counts, parent_cards = self._counts_for_attribute(
                dataset, bucketized, attribute, parents
            )
            if self._epsilon is not None:
                noise = generator.laplace(0.0, 1.0 / self._epsilon, size=counts.shape)
                counts = np.maximum(0.0, counts + noise)
                threshold = self._truncation_multiplier / self._epsilon
                if threshold > 0:
                    counts = np.where(counts >= threshold, counts, 0.0)

            # Marginal-proportional Dirichlet prior (post-processing of the
            # already-noisy counts, so no extra privacy cost).
            marginal = counts.sum(axis=0)
            total = marginal.sum()
            if total > 0:
                marginal = marginal / total
            else:
                marginal = np.full(counts.shape[1], 1.0 / counts.shape[1])
            prior = self._alpha * np.maximum(marginal, 1e-12)

            posterior = counts + prior[None, :]
            if self._sample_parameters:
                table = sample_dirichlet_rows(generator, posterior)
            else:
                table = posterior / posterior.sum(axis=1, keepdims=True)
            tables.append(
                ConditionalParameters(
                    attribute_index=attribute,
                    parents=parents,
                    parent_cardinalities=parent_cards,
                    table=table,
                    counts=counts,
                    prior=prior,
                )
            )

        if self._epsilon is not None and self._accountant is not None:
            # One ε-DP count release per attribute (L1 sensitivity 1 each).
            self._accountant.spend(
                "parameters/counts",
                self._epsilon,
                0.0,
                count=dataset.num_attributes,
                scope="parameter-data",
            )
        return tables
