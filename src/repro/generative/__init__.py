"""Generative models: the seed-based Bayesian-network synthesizer and baselines.

This package implements Section 3 of the paper:

* :mod:`repro.generative.structure` — dependency-structure learning via greedy
  Correlation-based Feature Selection, with a differentially-private variant;
* :mod:`repro.generative.parameters` — Dirichlet-multinomial conditional
  probability tables, with differentially-private counts;
* :mod:`repro.generative.bayesian_network` — the seed-based synthesizer that
  copies ``m - ω`` attributes from the seed and re-samples the remaining ω;
* :mod:`repro.generative.marginal` — the independent-marginals baseline;
* :mod:`repro.generative.builder` — an end-to-end fitting helper that trains
  the DP model from the DT / DP splits and tracks the privacy budget.
"""

from repro.generative.base import GenerativeModel, SeedBasedGenerativeModel
from repro.generative.bayesian_network import BayesianNetworkSynthesizer
from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network, fit_marginal_model
from repro.generative.marginal import MarginalSynthesizer
from repro.generative.parameters import (
    ConditionalParameters,
    ParameterLearner,
    sample_dirichlet_rows,
)
from repro.generative.structure import (
    DependencyStructure,
    StructureLearner,
    StructureLearningConfig,
)

__all__ = [
    "GenerativeModel",
    "SeedBasedGenerativeModel",
    "DependencyStructure",
    "StructureLearner",
    "StructureLearningConfig",
    "ConditionalParameters",
    "ParameterLearner",
    "sample_dirichlet_rows",
    "BayesianNetworkSynthesizer",
    "MarginalSynthesizer",
    "GenerativeModelSpec",
    "fit_bayesian_network",
    "fit_marginal_model",
]
