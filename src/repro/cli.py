"""Command-line synthetic-data generator (the Python equivalent of Section 5's tool).

The paper ships a C++ tool that takes a CSV dataset, metadata files and a
config file, and emits a synthetic dataset.  This module provides the same
workflow:

    # write a demo input dataset + metadata to ./demo/
    python -m repro.cli sample-data --output-dir demo --records 40000

    # generate 1000 plausibly-deniable synthetic records from it
    python -m repro.cli generate \
        --input demo/acs.csv --metadata demo/metadata.json \
        --config demo/config.json --output demo/synthetic.csv --records 1000

    # or serve the fitted model to many tenants over HTTP (see the README's
    # "Serving synthetics" section for the API)
    python -m repro.cli serve \
        --input demo/acs.csv --metadata demo/metadata.json \
        --config demo/config.json --port 8765

The config file is a JSON object with the privacy-test parameters (``k``,
``gamma``, ``epsilon0``, ``max_plausible``, ``max_check_plausible``), the
generative-model parameters (``omega``, ``total_epsilon``), the data-split
fractions, the synthesis ``batch_size`` (how many candidates Mechanism 1
pushes through the vectorized batch path at once; ``null``/1 selects the
single-record reference loop) and the parallel-engine knobs (``workers``,
``chunk_size`` — see the README's "Scaling out" section); any omitted key
falls back to the defaults below.

Scaling ``k``: the privacy test releases a candidate only if at least ``k``
seed records could plausibly have generated it, so the workable ``k`` grows
with the seed-split size.  The paper uses k = 50 against ~1.2M seed records;
at the demo scale of this CLI (tens of thousands of records) k = 50 rejects
essentially every candidate, so the default here is k = 10.  Raise it toward
the paper's setting as the input dataset grows (roughly: keep
``k / seed_records`` at or below ~1e-3).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.config import GenerationConfig
from repro.core.pipeline import SynthesisPipeline
from repro.core.run_store import RunStore
from repro.datasets.acs import load_acs
from repro.datasets.dataset import Dataset
from repro.datasets.metadata import read_metadata, write_metadata
from repro.generative.builder import GenerativeModelSpec
from repro.generative.structure import StructureLearningConfig
from repro.privacy.approximate import ApproximateTestConfig
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

__all__ = ["build_config", "main"]

_DEFAULT_CONFIG = {
    # The paper's k=50 assumes ~1.2M seed records; at demo scale it yields a
    # zero pass rate (nothing released).  See "Scaling k" in the module
    # docstring.
    "k": 10,
    "gamma": 4.0,
    "epsilon0": 1.0,
    "omega": 9,
    "total_epsilon": 1.0,
    "seed_fraction": 0.55,
    "structure_fraction": 0.175,
    "parameter_fraction": 0.175,
    "max_plausible": None,
    "max_check_plausible": None,
    "max_parent_cost": 300,
    "max_table_cells": None,
    "batch_size": 256,
    # Workers of the chunk-dispatching synthesis engine; null keeps the
    # serial single-stream path (see --workers).
    "workers": None,
    "chunk_size": 512,
    # Crash re-executions allowed per engine chunk before a job fails
    # (supervised worker pools only; retries are bit-identical).
    "max_chunk_retries": 2,
    # Bounded-latency approximate privacy testing: null = exact scan; true
    # enables the sampling test with its defaults; an object overrides
    # individual ApproximateTestConfig fields (release decisions stay
    # bit-identical to exact either way).
    "approximate": None,
    "rng_seed": 0,
}


def build_config(options: dict, num_attributes: int) -> GenerationConfig:
    """Translate a config-file dictionary into a :class:`GenerationConfig`."""
    unknown = set(options) - set(_DEFAULT_CONFIG)
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    merged = {**_DEFAULT_CONFIG, **options}
    omega = merged["omega"]
    if isinstance(omega, list):
        omega = tuple(int(value) for value in omega)
    privacy = PlausibleDeniabilityParams(
        k=int(merged["k"]),
        gamma=float(merged["gamma"]),
        epsilon0=float(merged["epsilon0"]) if merged["epsilon0"] is not None else None,
        max_plausible=merged["max_plausible"],
        max_check_plausible=merged["max_check_plausible"],
    )
    structure = StructureLearningConfig(
        max_parent_cost=int(merged["max_parent_cost"]),
        max_table_cells=merged["max_table_cells"],
    )
    if merged["total_epsilon"] is None:
        model = GenerativeModelSpec(
            omega=omega, epsilon_structure=None, epsilon_parameters=None, structure=structure
        )
    else:
        model = GenerativeModelSpec.with_total_epsilon(
            float(merged["total_epsilon"]),
            num_attributes=num_attributes,
            omega=omega,
            structure=structure,
        )
    batch_size = merged["batch_size"]
    workers = merged["workers"]
    approximate = merged["approximate"]
    if approximate is None or approximate is False:
        approximate = None
    elif approximate is True:
        approximate = ApproximateTestConfig()
    elif isinstance(approximate, dict):
        approximate = ApproximateTestConfig(**approximate)
    else:
        raise ValueError(
            "'approximate' must be null, true, or an object of "
            "ApproximateTestConfig fields"
        )
    return GenerationConfig(
        privacy=privacy,
        model=model,
        seed_fraction=float(merged["seed_fraction"]),
        structure_fraction=float(merged["structure_fraction"]),
        parameter_fraction=float(merged["parameter_fraction"]),
        batch_size=int(batch_size) if batch_size is not None else None,
        num_workers=int(workers) if workers is not None else None,
        chunk_size=int(merged["chunk_size"]),
        max_chunk_retries=int(merged["max_chunk_retries"]),
        approximate=approximate,
    )


def _command_sample_data(args: argparse.Namespace) -> int:
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    dataset = load_acs(num_records=args.records, seed=args.seed)
    dataset.to_csv(output_dir / "acs.csv")
    write_metadata(dataset.schema, output_dir / "metadata.json")
    (output_dir / "config.json").write_text(json.dumps(_DEFAULT_CONFIG, indent=2) + "\n")
    print(f"wrote {len(dataset)} records, metadata and a default config to {output_dir}/")
    return 0


def _release_warning(
    num_released: int, num_requested: int, k: int, num_seed_records: int
) -> str | None:
    """A diagnostic for runs whose privacy test rejected every candidate.

    Returns ``None`` when at least one record was released.
    """
    if num_released > 0 or num_requested == 0:
        return None
    return (
        f"warning: the privacy test released 0 of the {num_requested} requested "
        f"records.  The plausible-seeds threshold k={k} is likely too strict for "
        f"the {num_seed_records} available seed records (the paper's k=50 assumes "
        "~1.2M seeds).  Lower k in the config file, provide more input records, "
        "or relax gamma."
    )


def _command_generate(args: argparse.Namespace) -> int:
    schema = read_metadata(args.metadata)
    dataset = Dataset.from_csv(schema, args.input)
    options = json.loads(Path(args.config).read_text()) if args.config else {}
    config = build_config(options, num_attributes=len(schema))
    rng_seed = int(options.get("rng_seed", _DEFAULT_CONFIG["rng_seed"]))
    if args.run_id and not args.run_store:
        raise SystemExit("--run-id requires --run-store")
    run_store = RunStore(args.run_store) if args.run_store else None

    pipeline = SynthesisPipeline(
        dataset, config, rng=np.random.default_rng(rng_seed), run_store=run_store
    )
    pipeline.fit()
    report = pipeline.generate(
        num_records=args.records,
        batch_size=args.batch_size,
        num_workers=args.workers,
        run_id=args.run_id,
    )
    released = report.released_dataset()
    released.to_csv(args.output)

    model_epsilon, model_delta = pipeline.model_privacy_guarantee()
    print(f"input records:      {len(dataset)}")
    print(f"candidates tried:   {report.num_attempts}")
    print(f"records released:   {len(released)}  (pass rate {report.pass_rate:.1%})")
    print(f"model learning DP:  ({model_epsilon:.3f}, {model_delta:.2e})")
    if config.privacy.epsilon0 is not None:
        epsilon, delta, t = pipeline.release_privacy_guarantee()
        print(f"per-record release: ({epsilon:.3f}, {delta:.2e})-DP (Theorem 1, t={t})")
    print(f"output written to:  {args.output}")
    warning = _release_warning(
        len(released), args.records, config.privacy.k, len(pipeline.splits.seeds)
    )
    if warning is not None:
        print(warning, file=sys.stderr)
    return 0


def _serve_dataset_and_config(args: argparse.Namespace):
    """Resolve the dataset + config a ``repro serve`` invocation publishes."""
    if args.scenario:
        if args.input or args.metadata or args.config:
            raise SystemExit(
                "--scenario and --input/--metadata/--config are mutually "
                "exclusive (a scenario carries its own config)"
            )
        from repro.testing.scenarios import get_scenario

        scenario = get_scenario(args.scenario)
        return scenario.dataset(args.seed), scenario.config(), args.scenario
    if not args.input or not args.metadata:
        raise SystemExit("serve needs either --scenario or both --input and --metadata")
    schema = read_metadata(args.metadata)
    dataset = Dataset.from_csv(schema, args.input)
    options = json.loads(Path(args.config).read_text()) if args.config else {}
    config = build_config(options, num_attributes=len(schema))
    return dataset, config, Path(args.input).stem


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import ModelRegistry, ServiceApp, SessionBudget, build_server

    dataset, config, default_name = _serve_dataset_and_config(args)
    run_store = RunStore(args.run_store) if args.run_store else None
    default_budget = SessionBudget(
        epsilon=args.budget_epsilon,
        delta=args.budget_delta,
        max_rows=args.budget_max_rows,
        min_k=args.budget_min_k,
        accuracy=args.budget_accuracy,
    )
    app = ServiceApp(
        ModelRegistry(run_store=run_store),
        num_workers=args.workers if args.workers is not None else 1,
        default_budget=default_budget,
        audit_log=args.audit_log,
        audit_fsync=args.audit_fsync,
        journal=args.journal,
        store_max_bytes=args.store_max_bytes,
        max_queue_depth=args.max_queue_depth,
        deadline_ms=args.deadline_ms,
        engines_per_model=args.engines_per_model,
        worker_budget=args.worker_budget,
        drain_timeout=args.drain_timeout,
        telemetry=args.metrics or args.trace_log is not None,
        trace_log=args.trace_log,
    )
    name = args.model_name or default_name
    print(f"fitting and publishing model {name!r} ({len(dataset)} records)...")
    info = app.publish_model(name, dataset, config, seed=args.seed)
    print(f"model {info['model_id'][:16]}…  k={info['k']}  "
          f"per-row cost (ε={info['per_row_cost']['epsilon']:.4g}, "
          f"δ={info['per_row_cost']['delta']:.3g})")
    server = build_server(app, host=args.host, port=args.port, quiet=args.quiet)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}  (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        app.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.cli``."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    # `lint` owns its whole argument vector (argparse.REMAINDER mishandles
    # option-like leading tokens), so hand it off before parsing anything.
    if arguments and arguments[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(arguments[1:])
    argv = arguments
    parser = argparse.ArgumentParser(
        prog="repro", description="Plausibly-deniable synthetic data generator"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sample = subparsers.add_parser(
        "sample-data", help="write a demo ACS-like dataset, metadata and config"
    )
    sample.add_argument("--output-dir", default="demo", help="directory to write into")
    sample.add_argument("--records", type=int, default=40_000, help="raw records to sample")
    sample.add_argument("--seed", type=int, default=0, help="RNG seed for the sample")
    sample.set_defaults(handler=_command_sample_data)

    generate = subparsers.add_parser("generate", help="generate synthetic records")
    generate.add_argument("--input", required=True, help="input CSV dataset")
    generate.add_argument("--metadata", required=True, help="JSON metadata describing the schema")
    generate.add_argument("--config", default=None, help="JSON config file (optional)")
    generate.add_argument("--output", required=True, help="output CSV for released synthetics")
    generate.add_argument("--records", type=int, default=1_000, help="records to release")
    generate.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="candidates per vectorized synthesis batch "
        "(overrides the config; 1 selects the single-record reference loop)",
    )
    generate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes of the parallel synthesis engine (overrides "
        "the config's 'workers'; 1 runs the chunked loop in-process, omit "
        "for the serial single-stream path)",
    )
    generate.add_argument(
        "--run-store",
        default=None,
        help="directory of the experiment artifact store; caches the fitted "
        "model across invocations and holds engine run checkpoints",
    )
    generate.add_argument(
        "--run-id",
        default=None,
        help="checkpoint id for the synthesis run (requires --run-store); "
        "re-running with the same id and parameters resumes from the "
        "completed chunks",
    )
    generate.set_defaults(handler=_command_generate)

    serve = subparsers.add_parser(
        "serve",
        help="serve plausibly-deniable synthetics over a budgeted JSON/HTTP API",
    )
    serve.add_argument("--input", default=None, help="input CSV dataset to publish")
    serve.add_argument("--metadata", default=None, help="JSON metadata for --input")
    serve.add_argument("--config", default=None, help="JSON config file (optional)")
    serve.add_argument(
        "--scenario",
        default=None,
        help="publish a registered conformance scenario instead of a CSV "
        "(e.g. toy-correlated; see repro.testing.scenarios)",
    )
    serve.add_argument("--model-name", default=None, help="published model name")
    serve.add_argument("--seed", type=int, default=0, help="RNG seed of the model fit")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="engine worker processes per pooled engine (default: in-process)",
    )
    serve.add_argument(
        "--engines-per-model", type=int, default=1,
        help="bound on pooled synthesis engines (and scheduler dispatchers) "
        "per model; >1 lets a hot model's overflow folds run in parallel",
    )
    serve.add_argument(
        "--worker-budget", type=int, default=None,
        help="global bound on reserved engine worker processes across all "
        "models; idle engines are LRU-reaped to stay under it (omit = "
        "unbounded)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds shutdown waits for in-flight folded batches to finish "
        "before failing still-queued requests",
    )
    serve.add_argument(
        "--run-store",
        default=None,
        help="artifact store directory: caches the published fit across restarts",
    )
    serve.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        help="size bound for the artifact store; LRU-gc'd after each publish "
        "with published models pinned",
    )
    serve.add_argument(
        "--audit-log",
        default=None,
        help="append every budget event (reserve/commit/refusal) to this "
        "JSON-lines file",
    )
    serve.add_argument(
        "--audit-fsync", action="store_true",
        help="fsync every audit-log and journal line (crash-safe mode)",
    )
    serve.add_argument(
        "--journal",
        default=None,
        help="append-only JSON-lines budget journal, replayed on startup so "
        "session budgets and idempotency records survive restarts",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=None,
        help="bound on undispatched queued requests; past it /generate is "
        "refused with 503 + Retry-After (omit = unbounded)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request dispatch deadline in milliseconds; a request still "
        "queued past it fails with 504 and its reservation is refunded",
    )
    serve.add_argument(
        "--budget-epsilon", type=float, default=None,
        help="default per-session ε release budget (omit = uncapped)",
    )
    serve.add_argument(
        "--budget-delta", type=float, default=None,
        help="default per-session δ release budget (omit = uncapped)",
    )
    serve.add_argument(
        "--budget-max-rows", type=int, default=None,
        help="default per-session released-row cap (omit = uncapped)",
    )
    serve.add_argument(
        "--budget-min-k", type=int, default=1,
        help="default per-session k-deniability floor",
    )
    serve.add_argument(
        "--budget-accuracy", choices=("exact", "approximate"), default="exact",
        help="default per-session accuracy contract for the privacy test: "
        "'approximate' runs the bounded-latency sampling test (release "
        "decisions stay bit-identical to exact)",
    )
    serve.add_argument(
        "--metrics", dest="metrics", action="store_true", default=True,
        help="expose the telemetry endpoints GET /metrics (Prometheus text) "
        "and GET /trace/<request_id> (span tree); on by default",
    )
    serve.add_argument(
        "--no-metrics", dest="metrics", action="store_false",
        help="disable telemetry entirely (no tracer, no metrics registry)",
    )
    serve.add_argument(
        "--trace-log", default=None, metavar="PATH",
        help="append every finished trace span to this JSON-lines file "
        "(torn-tail tolerant; implies telemetry on)",
    )
    serve.add_argument(
        "--quiet", action="store_true", default=True,
        help=argparse.SUPPRESS,
    )
    serve.add_argument(
        "--verbose", dest="quiet", action="store_false",
        help="log each HTTP request to stderr",
    )
    serve.set_defaults(handler=_command_serve)

    subparsers.add_parser(
        "lint",
        help="statically check RNG hygiene, privacy-spend accounting, lock "
        "discipline and determinism invariants (see `repro lint --help`)",
        add_help=False,
    )

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
