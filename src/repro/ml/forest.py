"""Random-forest classifier: bagged decision trees with random feature subsets."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated decision trees with per-split feature subsampling."""

    def __init__(
        self,
        num_trees: int = 20,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        random_state: int = 0,
    ):
        if num_trees < 1:
            raise ValueError("num_trees must be at least 1")
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._trees: list[DecisionTreeClassifier] = []
        self._num_classes = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForestClassifier":
        """Fit ``num_trees`` trees on bootstrap resamples of the training data."""
        x, y = self._validate_training_data(features, labels)
        x = x.astype(np.int64, copy=False)
        y = y.astype(np.int64, copy=False)
        self._num_classes = int(y.max()) + 1
        rng = np.random.default_rng(self.random_state)
        self._trees = []
        for index in range(self.num_trees):
            bootstrap = rng.integers(0, len(y), size=len(y))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=self.random_state + index + 1,
            )
            tree.fit(x[bootstrap], y[bootstrap])
            self._trees.append(tree)
        return self

    def predict_votes(self, features: np.ndarray) -> np.ndarray:
        """Per-class vote counts, shape (rows, num_classes)."""
        if not self._trees:
            raise RuntimeError("the forest must be fitted before predicting")
        x = np.asarray(features, dtype=np.int64)
        votes = np.zeros((x.shape[0], self._num_classes), dtype=np.int64)
        for tree in self._trees:
            predictions = tree.predict(x)
            votes[np.arange(x.shape[0]), predictions] += 1
        return votes

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Majority vote over the ensemble."""
        votes = self.predict_votes(features)
        return np.argmax(votes, axis=1).astype(np.int64)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Vote fractions per class (a rough probability estimate)."""
        votes = self.predict_votes(features)
        return votes / max(1, self.num_trees)
