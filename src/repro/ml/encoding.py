"""Feature encoding for the ML evaluation.

Two encodings are used:

* the tree-based classifiers (CART, random forest, AdaBoostM1) consume the
  integer-encoded attribute matrix directly;
* the linear classifiers (logistic regression, SVM, and their DP-ERM variants)
  follow the preprocessing of Chaudhuri et al. that the paper applies in
  Section 6.3: every categorical attribute becomes a block of binary
  indicator columns, numerical attributes are scaled to [0, 1], and every row
  is normalized so that its L2 norm is at most 1.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.schema import AttributeType

__all__ = [
    "attribute_features",
    "one_hot_encode",
    "normalize_rows",
    "prepare_erm_data",
]


def attribute_features(
    dataset: Dataset, target_attribute: str | int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Split a dataset into (features, labels, target_index).

    Features are the integer-encoded columns of every attribute except the
    target; labels are the target column.  This is the input format for the
    tree-based classifiers.
    """
    target_index = (
        dataset.schema.index_of(target_attribute)
        if isinstance(target_attribute, str)
        else int(target_attribute)
    )
    columns = [col for col in range(dataset.num_attributes) if col != target_index]
    features = dataset.data[:, columns]
    labels = dataset.data[:, target_index]
    return features, labels, target_index


def one_hot_encode(
    dataset: Dataset, exclude: str | int | None = None
) -> np.ndarray:
    """One-hot / scaled encoding of a dataset for linear classifiers.

    Categorical attributes expand into ``cardinality`` indicator columns;
    numerical attributes become a single column scaled into [0, 1].  The
    ``exclude`` attribute (typically the classification target) is skipped.
    """
    exclude_index = None
    if exclude is not None:
        exclude_index = (
            dataset.schema.index_of(exclude) if isinstance(exclude, str) else int(exclude)
        )
    blocks: list[np.ndarray] = []
    for index, attribute in enumerate(dataset.schema):
        if index == exclude_index:
            continue
        column = dataset.data[:, index]
        if attribute.attribute_type is AttributeType.NUMERICAL:
            denominator = max(1, attribute.cardinality - 1)
            blocks.append((column / denominator).reshape(-1, 1))
        else:
            block = np.zeros((len(dataset), attribute.cardinality), dtype=np.float64)
            block[np.arange(len(dataset)), column] = 1.0
            blocks.append(block)
    if not blocks:
        return np.empty((len(dataset), 0), dtype=np.float64)
    return np.hstack(blocks)


def normalize_rows(features: np.ndarray, max_norm: float = 1.0) -> np.ndarray:
    """Scale each row so its L2 norm is at most ``max_norm`` (Chaudhuri et al.)."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    matrix = np.asarray(features, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("features must be a 2-D matrix")
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    scale = np.maximum(1.0, norms / max_norm)
    return matrix / scale


def prepare_erm_data(
    dataset: Dataset, target_attribute: str | int
) -> tuple[np.ndarray, np.ndarray]:
    """Build the (features, ±1 labels) pair used by the (DP-)ERM classifiers.

    The target attribute must be binary; its first value maps to -1 and its
    second value to +1.
    """
    target_index = (
        dataset.schema.index_of(target_attribute)
        if isinstance(target_attribute, str)
        else int(target_attribute)
    )
    target = dataset.schema[target_index]
    if target.cardinality != 2:
        raise ValueError(
            f"ERM classifiers require a binary target; {target.name!r} has "
            f"{target.cardinality} values"
        )
    features = normalize_rows(one_hot_encode(dataset, exclude=target_index))
    labels = np.where(dataset.data[:, target_index] == 1, 1.0, -1.0)
    return features, labels
