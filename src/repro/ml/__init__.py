"""Machine-learning substrate used by the utility evaluation (Section 6.3-6.4).

The paper measures the utility of synthetic data by training standard
classifiers (classification tree, random forest, AdaBoostM1, logistic
regression, linear SVM) on real vs. synthetic data and comparing accuracy,
agreement rate and a real-vs-synthetic distinguishing game; it also compares
against the differentially-private empirical-risk-minimization classifiers of
Chaudhuri et al. (output and objective perturbation).

scikit-learn is not available in this environment, so the classifiers are
implemented from scratch on numpy.  They are measurement instruments, not the
paper's contribution; the implementations favour clarity over speed while
remaining fast enough for the benchmark workloads.
"""

from repro.ml.adaboost import AdaBoostM1Classifier
from repro.ml.base import Classifier
from repro.ml.dp_erm import (
    DPTrainingConfig,
    objective_perturbation,
    output_perturbation,
)
from repro.ml.encoding import (
    attribute_features,
    normalize_rows,
    one_hot_encode,
    prepare_erm_data,
)
from repro.ml.evaluation import (
    ClassifierEvaluation,
    agreement_rate,
    distinguishing_game,
    evaluate_classifier,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LinearSVMClassifier, LogisticRegressionClassifier
from repro.ml.metrics import accuracy, confusion_matrix, error_rate
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "Classifier",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "AdaBoostM1Classifier",
    "LogisticRegressionClassifier",
    "LinearSVMClassifier",
    "DPTrainingConfig",
    "output_perturbation",
    "objective_perturbation",
    "accuracy",
    "error_rate",
    "confusion_matrix",
    "agreement_rate",
    "evaluate_classifier",
    "ClassifierEvaluation",
    "distinguishing_game",
    "one_hot_encode",
    "normalize_rows",
    "attribute_features",
    "prepare_erm_data",
]
