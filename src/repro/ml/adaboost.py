"""AdaBoostM1 over shallow decision trees (Freund & Schapire's discrete boosting)."""

from __future__ import annotations

import math

import numpy as np

from repro.ml.base import Classifier
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["AdaBoostM1Classifier"]


class AdaBoostM1Classifier(Classifier):
    """AdaBoost.M1: re-weighted shallow trees combined by weighted majority vote."""

    def __init__(
        self,
        num_rounds: int = 30,
        base_max_depth: int = 3,
        random_state: int = 0,
    ):
        if num_rounds < 1:
            raise ValueError("num_rounds must be at least 1")
        if base_max_depth < 1:
            raise ValueError("base_max_depth must be at least 1")
        self.num_rounds = num_rounds
        self.base_max_depth = base_max_depth
        self.random_state = random_state
        self._learners: list[DecisionTreeClassifier] = []
        self._learner_weights: list[float] = []
        self._num_classes = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "AdaBoostM1Classifier":
        """Run up to ``num_rounds`` boosting iterations."""
        x, y = self._validate_training_data(features, labels)
        x = x.astype(np.int64, copy=False)
        y = y.astype(np.int64, copy=False)
        self._num_classes = int(y.max()) + 1
        n = len(y)
        weights = np.full(n, 1.0 / n)
        self._learners = []
        self._learner_weights = []

        for round_index in range(self.num_rounds):
            learner = DecisionTreeClassifier(
                max_depth=self.base_max_depth,
                random_state=self.random_state + round_index,
            )
            learner.fit(x, y, sample_weight=weights)
            predictions = learner.predict(x)
            mistakes = predictions != y
            error = float(np.sum(weights[mistakes]))

            # AdaBoost.M1 stops when the weak learner is no better than chance
            # (for the multi-class case, worse than 1/2 error) or is perfect.
            if error >= 0.5:
                if not self._learners:
                    # Keep at least one learner so predict() works.
                    self._learners.append(learner)
                    self._learner_weights.append(1.0)
                break
            if error <= 1e-12:
                self._learners.append(learner)
                self._learner_weights.append(10.0)  # effectively infinite confidence
                break

            beta = error / (1.0 - error)
            alpha = math.log(1.0 / beta)
            self._learners.append(learner)
            self._learner_weights.append(alpha)

            # Down-weight correctly classified samples and renormalize.
            weights = weights * np.where(mistakes, 1.0, beta)
            weights = weights / weights.sum()
        return self

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Weighted vote per class, shape (rows, num_classes)."""
        if not self._learners:
            raise RuntimeError("the booster must be fitted before predicting")
        x = np.asarray(features, dtype=np.int64)
        scores = np.zeros((x.shape[0], self._num_classes), dtype=np.float64)
        for learner, weight in zip(self._learners, self._learner_weights):
            predictions = learner.predict(x)
            scores[np.arange(x.shape[0]), predictions] += weight
        return scores

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Weighted-majority-vote prediction."""
        return np.argmax(self.decision_scores(features), axis=1).astype(np.int64)

    @property
    def num_learners(self) -> int:
        """Number of weak learners actually kept after fitting."""
        return len(self._learners)
