"""CART-style decision-tree classifier (the paper's "Classification Tree").

Works directly on integer-encoded attribute matrices.  Splits are of the form
``feature <= threshold``; candidate thresholds are every observed value of the
feature, found efficiently with per-value class-weight histograms (attribute
cardinalities are small in the ACS schema).  Supports sample weights, which is
what AdaBoostM1 needs, and per-node random feature subsets, which is what the
random forest needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Classifier

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """One node of the fitted tree (leaf when ``feature`` is None)."""

    prediction: int
    feature: int | None = None
    threshold: int | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(class_weights: np.ndarray) -> float:
    """Weighted Gini impurity of a class-weight vector."""
    total = class_weights.sum()
    if total <= 0:
        return 0.0
    proportions = class_weights / total
    return float(1.0 - np.sum(proportions**2))


class DecisionTreeClassifier(Classifier):
    """Binary-split decision tree with Gini impurity."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int = 0,
    ):
        """Create a decision tree.

        Parameters
        ----------
        max_depth:
            Maximum tree depth (the root is depth 0).
        min_samples_split:
            Minimum number of samples required to consider splitting a node.
        min_samples_leaf:
            Minimum number of samples each child must receive.
        max_features:
            Number of features examined per split: an int, ``"sqrt"``, or
            ``None`` for all features.  Randomized subsets draw from a
            stream seeded by ``random_state``.
        random_state:
            Seed for the per-node feature subsampling.
        """
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: _Node | None = None
        self._num_classes = 0
        self._num_features = 0

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _features_per_split(self) -> int:
        if self.max_features is None:
            return self._num_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self._num_features)))
        count = int(self.max_features)
        if count < 1:
            raise ValueError("max_features must be at least 1")
        return min(count, self._num_features)

    def _best_split(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
        candidate_features: np.ndarray,
    ) -> tuple[int, int, float] | None:
        """Best (feature, threshold, impurity decrease) among the candidates."""
        total_weight = weights.sum()
        class_weights = np.bincount(labels, weights=weights, minlength=self._num_classes)
        parent_impurity = _gini(class_weights)
        best: tuple[int, int, float] | None = None

        for feature in candidate_features:
            column = features[:, feature]
            max_value = int(column.max())
            if max_value == int(column.min()):
                continue
            # histogram[v, c] = total weight of samples with column == v, label == c
            flat = column * self._num_classes + labels
            histogram = np.bincount(
                flat, weights=weights, minlength=(max_value + 1) * self._num_classes
            ).reshape(max_value + 1, self._num_classes)
            sample_counts = np.bincount(column, minlength=max_value + 1)

            left_class = np.cumsum(histogram, axis=0)[:-1]
            left_count = np.cumsum(sample_counts)[:-1]
            right_class = class_weights - left_class
            right_count = len(labels) - left_count
            left_weight = left_class.sum(axis=1)
            right_weight = right_class.sum(axis=1)

            valid = (left_count >= self.min_samples_leaf) & (
                right_count >= self.min_samples_leaf
            )
            if not np.any(valid):
                continue

            with np.errstate(divide="ignore", invalid="ignore"):
                left_gini = 1.0 - np.sum(
                    (left_class / np.maximum(left_weight[:, None], 1e-12)) ** 2, axis=1
                )
                right_gini = 1.0 - np.sum(
                    (right_class / np.maximum(right_weight[:, None], 1e-12)) ** 2, axis=1
                )
            children_impurity = (
                left_weight * left_gini + right_weight * right_gini
            ) / max(total_weight, 1e-12)
            decrease = parent_impurity - children_impurity
            decrease[~valid] = -np.inf

            threshold = int(np.argmax(decrease))
            gain = float(decrease[threshold])
            if gain > 1e-12 and (best is None or gain > best[2]):
                best = (int(feature), threshold, gain)
        return best

    def _build(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
        depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        class_weights = np.bincount(labels, weights=weights, minlength=self._num_classes)
        prediction = int(np.argmax(class_weights))
        node = _Node(prediction=prediction)

        if (
            depth >= self.max_depth
            or len(labels) < self.min_samples_split
            or np.count_nonzero(class_weights) <= 1
        ):
            return node

        num_candidates = self._features_per_split()
        if num_candidates < self._num_features:
            candidate_features = rng.choice(
                self._num_features, size=num_candidates, replace=False
            )
        else:
            candidate_features = np.arange(self._num_features)

        split = self._best_split(features, labels, weights, candidate_features)
        if split is None:
            return node

        feature, threshold, _ = split
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(
            features[mask], labels[mask], weights[mask], depth + 1, rng
        )
        node.right = self._build(
            features[~mask], labels[~mask], weights[~mask], depth + 1, rng
        )
        return node

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTreeClassifier":
        """Fit the tree; ``sample_weight`` enables boosting-style reweighting."""
        x, y = self._validate_training_data(features, labels)
        x = x.astype(np.int64, copy=False)
        y = y.astype(np.int64, copy=False)
        if y.min() < 0:
            raise ValueError("labels must be non-negative integers")
        weights = (
            np.ones(len(y), dtype=np.float64)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        if weights.shape != y.shape:
            raise ValueError("sample_weight must have one entry per training row")
        if np.any(weights < 0):
            raise ValueError("sample weights must be non-negative")
        self._num_classes = int(y.max()) + 1
        self._num_features = x.shape[1]
        rng = np.random.default_rng(self.random_state)
        self._root = self._build(x, y, weights, depth=0, rng=rng)
        return self

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict labels for every row of ``features``."""
        if self._root is None:
            raise RuntimeError("the tree must be fitted before predicting")
        x = np.asarray(features, dtype=np.int64)
        if x.ndim != 2 or x.shape[1] != self._num_features:
            raise ValueError(
                f"features must be a 2-D matrix with {self._num_features} columns"
            )
        predictions = np.empty(x.shape[0], dtype=np.int64)
        self._predict_into(self._root, x, np.arange(x.shape[0]), predictions)
        return predictions

    def _predict_into(
        self, node: _Node, features: np.ndarray, indices: np.ndarray, out: np.ndarray
    ) -> None:
        if indices.size == 0:
            return
        if node.is_leaf:
            out[indices] = node.prediction
            return
        assert node.left is not None and node.right is not None
        mask = features[indices, node.feature] <= node.threshold
        self._predict_into(node.left, features, indices[mask], out)
        self._predict_into(node.right, features, indices[~mask], out)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        if self._root is None:
            raise RuntimeError("the tree must be fitted first")

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)

    def num_nodes(self) -> int:
        """Total number of nodes in the fitted tree."""
        if self._root is None:
            raise RuntimeError("the tree must be fitted first")

        def _count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return 1 + _count(node.left) + _count(node.right)

        return _count(self._root)
