"""Basic classification metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "error_rate", "confusion_matrix"]


def _validate(predictions: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    preds = np.asarray(predictions)
    targets = np.asarray(labels)
    if preds.shape != targets.shape:
        raise ValueError(
            f"predictions and labels must have the same shape, "
            f"got {preds.shape} and {targets.shape}"
        )
    if preds.ndim != 1:
        raise ValueError("predictions and labels must be 1-D vectors")
    return preds, targets


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions equal to the true label."""
    preds, targets = _validate(predictions, labels)
    if targets.size == 0:
        return 0.0
    return float(np.mean(preds == targets))


def error_rate(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of incorrect predictions (1 - accuracy)."""
    return 1.0 - accuracy(predictions, labels)


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """Confusion matrix C with ``C[true, predicted]`` counts."""
    preds, targets = _validate(predictions, labels)
    if num_classes is None:
        num_classes = int(max(preds.max(initial=0), targets.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true_label, predicted in zip(targets, preds):
        matrix[int(true_label), int(predicted)] += 1
    return matrix
