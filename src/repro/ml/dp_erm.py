"""Differentially-private empirical risk minimization (Chaudhuri et al., JMLR 2011).

Table 4 of the paper compares classifiers trained on its synthetic data
against ε-differentially-private logistic regression and SVM classifiers
trained directly on the real data with the two mechanisms of Chaudhuri,
Monteleoni and Sarwate:

* **output perturbation**: train the regularized ERM classifier normally, then
  add a noise vector whose norm follows a Gamma(d, 2/(n λ ε)) distribution and
  whose direction is uniform;
* **objective perturbation**: add a random linear term (b·w)/n to the training
  objective — with b's norm drawn from Gamma(d, 2/ε') — plus, when the budget
  is too small for the regularization, an extra (Δ/2)||w||² term.

Both require the loss to be convex and differentiable with bounded derivatives
and the feature vectors to have norm at most 1 (see
:func:`repro.ml.encoding.prepare_erm_data`).  The loss-curvature constant c is
1/4 for logistic regression and 1/(2h) for the Huberized hinge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ml.linear import (
    LinearSVMClassifier,
    LogisticRegressionClassifier,
    _LinearERMClassifier,
)

__all__ = ["DPTrainingConfig", "output_perturbation", "objective_perturbation"]


@dataclass
class DPTrainingConfig:
    """Configuration of a DP-ERM training run.

    Parameters
    ----------
    epsilon:
        The differential-privacy budget ε.
    regularization:
        The ERM regularization constant λ.
    loss:
        ``"logistic"`` or ``"svm"`` (Huberized hinge).
    huber_h:
        Huber parameter of the SVM loss.
    learning_rate, num_iterations:
        Optimizer settings forwarded to the underlying trainer.
    """

    epsilon: float = 1.0
    regularization: float = 1e-4
    loss: str = "logistic"
    huber_h: float = 0.5
    learning_rate: float = 1.0
    num_iterations: int = 300

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.regularization <= 0:
            raise ValueError("regularization must be positive for DP-ERM")
        if self.loss not in ("logistic", "svm"):
            raise ValueError("loss must be 'logistic' or 'svm'")
        if self.huber_h <= 0:
            raise ValueError("huber_h must be positive")

    def make_classifier(self) -> _LinearERMClassifier:
        """Instantiate the (non-private) trainer matching this configuration."""
        if self.loss == "logistic":
            return LogisticRegressionClassifier(
                regularization=self.regularization,
                learning_rate=self.learning_rate,
                num_iterations=self.num_iterations,
                fit_intercept=False,
            )
        return LinearSVMClassifier(
            regularization=self.regularization,
            learning_rate=self.learning_rate,
            num_iterations=self.num_iterations,
            fit_intercept=False,
            huber_h=self.huber_h,
        )

    @property
    def curvature_constant(self) -> float:
        """Upper bound c on the second derivative of the loss."""
        if self.loss == "logistic":
            return 0.25
        return 1.0 / (2.0 * self.huber_h)


def _sample_gamma_noise(
    dimension: int, scale: float, rng: np.random.Generator
) -> np.ndarray:
    """A vector with uniform direction and Gamma(dimension, scale) norm."""
    direction = rng.normal(size=dimension)
    norm = np.linalg.norm(direction)
    if norm == 0:
        direction = np.ones(dimension)
        norm = math.sqrt(dimension)
    direction = direction / norm
    magnitude = rng.gamma(shape=dimension, scale=scale)
    return direction * magnitude


def _validate_erm_inputs(features: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64)
    if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
        raise ValueError("features must be (n, d) and labels (n,) with matching n")
    if x.shape[0] == 0:
        raise ValueError("cannot train on an empty dataset")
    if not set(np.unique(y)).issubset({-1.0, 1.0}):
        raise ValueError("labels must be in {-1, +1}; use prepare_erm_data()")
    max_norm = float(np.max(np.linalg.norm(x, axis=1))) if x.size else 0.0
    if max_norm > 1.0 + 1e-6:
        raise ValueError("feature rows must have L2 norm at most 1; use normalize_rows()")
    return x, y


def output_perturbation(
    features: np.ndarray,
    labels: np.ndarray,
    config: DPTrainingConfig,
    rng: np.random.Generator | None = None,
) -> _LinearERMClassifier:
    """Algorithm 1 of Chaudhuri et al.: train, then add noise to the weights.

    The noise magnitude follows Gamma(d, 2/(n λ ε)); the released classifier is
    ε-differentially private.
    """
    x, y = _validate_erm_inputs(features, labels)
    if rng is None:
        raise ValueError("output_perturbation requires an explicit rng")
    generator = rng
    classifier = config.make_classifier()
    weights = classifier.train_weights(x, y)
    scale = 2.0 / (x.shape[0] * config.regularization * config.epsilon)
    noisy_weights = weights + _sample_gamma_noise(x.shape[1], scale, generator)
    classifier.set_weights(noisy_weights, classes=np.array([-1.0, 1.0]))
    return classifier


def objective_perturbation(
    features: np.ndarray,
    labels: np.ndarray,
    config: DPTrainingConfig,
    rng: np.random.Generator | None = None,
) -> _LinearERMClassifier:
    """Algorithm 2 of Chaudhuri et al.: perturb the training objective.

    A random linear term (b·w)/n is added to the objective with ||b|| drawn
    from Gamma(d, 2/ε'), where ε' = ε - 2 ln(1 + c/(nλ)).  When that correction
    exhausts the budget (ε' <= ε/2... i.e. non-positive), an extra ridge term Δ
    is added instead and ε' = ε/2.
    """
    x, y = _validate_erm_inputs(features, labels)
    if rng is None:
        raise ValueError("objective_perturbation requires an explicit rng")
    generator = rng
    n, dimension = x.shape
    c = config.curvature_constant
    epsilon_prime = config.epsilon - 2.0 * math.log(1.0 + c / (n * config.regularization))
    extra_regularization = 0.0
    if epsilon_prime <= 0.0:
        extra_regularization = c / (n * (math.exp(config.epsilon / 4.0) - 1.0))
        extra_regularization -= config.regularization
        extra_regularization = max(0.0, extra_regularization)
        epsilon_prime = config.epsilon / 2.0

    noise = _sample_gamma_noise(dimension, 2.0 / epsilon_prime, generator)
    classifier = config.make_classifier()
    weights = classifier.train_weights(
        x, y, extra_linear_term=noise, extra_regularization=extra_regularization
    )
    classifier.set_weights(weights, classes=np.array([-1.0, 1.0]))
    return classifier
