"""Regularized linear classifiers: logistic regression and a linear SVM.

Both minimize an L2-regularized empirical risk

    J(w) = (1/n) sum_i loss(y_i w·x_i) + (λ/2) ||w||² ,

with labels y in {-1, +1} and features expected to have L2 norm at most 1 (the
Chaudhuri et al. preprocessing, see :func:`repro.ml.encoding.prepare_erm_data`).
The SVM uses the Huberized hinge loss, which is the differentiable surrogate
required by the objective-perturbation DP-ERM mechanism and a perfectly fine
loss for the non-private baseline too.

Training is plain full-batch gradient descent; the problems are strongly
convex so this converges reliably and keeps the implementation transparent.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier

__all__ = [
    "LogisticRegressionClassifier",
    "LinearSVMClassifier",
    "logistic_loss_gradient",
    "huber_hinge_loss_gradient",
]


def logistic_loss_gradient(margins: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample logistic loss and its derivative with respect to the margin."""
    losses = np.logaddexp(0.0, -margins)
    derivatives = -1.0 / (1.0 + np.exp(margins))
    return losses, derivatives


def huber_hinge_loss_gradient(
    margins: np.ndarray, huber_h: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample Huberized hinge loss and derivative (Chaudhuri et al., Eq. 7).

    The loss is 0 for margin > 1 + h, quadratic in the band |1 - margin| <= h,
    and linear (1 - margin) below 1 - h.
    """
    if huber_h <= 0:
        raise ValueError("huber_h must be positive")
    losses = np.zeros_like(margins)
    derivatives = np.zeros_like(margins)
    below = margins < 1.0 - huber_h
    band = (margins >= 1.0 - huber_h) & (margins <= 1.0 + huber_h)
    losses[below] = 1.0 - margins[below]
    derivatives[below] = -1.0
    losses[band] = (1.0 + huber_h - margins[band]) ** 2 / (4.0 * huber_h)
    derivatives[band] = -(1.0 + huber_h - margins[band]) / (2.0 * huber_h)
    return losses, derivatives


class _LinearERMClassifier(Classifier):
    """Shared machinery of the two linear classifiers."""

    def __init__(
        self,
        regularization: float = 1e-4,
        learning_rate: float = 1.0,
        num_iterations: int = 300,
        fit_intercept: bool = True,
    ):
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if num_iterations < 1:
            raise ValueError("num_iterations must be at least 1")
        self.regularization = regularization
        self.learning_rate = learning_rate
        self.num_iterations = num_iterations
        self.fit_intercept = fit_intercept
        self.weights: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    # Subclasses provide the loss.
    def _loss_gradient(self, margins: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _augment(self, features: np.ndarray) -> np.ndarray:
        matrix = np.asarray(features, dtype=np.float64)
        if not self.fit_intercept:
            return matrix
        return np.hstack([matrix, np.ones((matrix.shape[0], 1))])

    def _signed_labels(self, labels: np.ndarray) -> np.ndarray:
        classes = np.unique(labels)
        if classes.size != 2:
            raise ValueError(
                f"linear classifiers require exactly two classes, got {classes.size}"
            )
        self._classes = classes
        return np.where(labels == classes[1], 1.0, -1.0)

    def objective(self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
        """Regularized empirical risk J(w) (labels already in {-1, +1})."""
        margins = labels * (features @ weights)
        losses, _ = self._loss_gradient(margins)
        return float(np.mean(losses) + 0.5 * self.regularization * np.dot(weights, weights))

    def _gradient(
        self, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        margins = labels * (features @ weights)
        _, derivatives = self._loss_gradient(margins)
        data_gradient = features.T @ (derivatives * labels) / len(labels)
        return data_gradient + self.regularization * weights

    def train_weights(
        self,
        features: np.ndarray,
        signed_labels: np.ndarray,
        extra_linear_term: np.ndarray | None = None,
        extra_regularization: float = 0.0,
    ) -> np.ndarray:
        """Gradient-descent minimization, optionally with a perturbed objective.

        ``extra_linear_term`` adds (b·w)/n to the objective and
        ``extra_regularization`` adds (Δ/2)||w||², which is exactly the form
        needed by the objective-perturbation DP-ERM mechanism.
        """
        matrix = np.asarray(features, dtype=np.float64)
        n = matrix.shape[0]
        weights = np.zeros(matrix.shape[1], dtype=np.float64)
        # Scale the step with the objective's curvature (loss curvature is at
        # most ~1 for unit-norm features) so gradient descent stays stable even
        # for very strong regularization or large objective-perturbation terms.
        curvature = 1.0 + self.regularization + max(0.0, extra_regularization)
        step = self.learning_rate / curvature
        for _ in range(self.num_iterations):
            gradient = self._gradient(weights, matrix, signed_labels)
            if extra_linear_term is not None:
                gradient = gradient + extra_linear_term / n
            if extra_regularization:
                gradient = gradient + extra_regularization * weights
            weights = weights - step * gradient
        return weights

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "_LinearERMClassifier":
        """Fit on a (features, labels) pair with two classes."""
        x, y = self._validate_training_data(features, labels)
        signed = self._signed_labels(y)
        augmented = self._augment(x)
        self.weights = self.train_weights(augmented, signed)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance-like score w·x for every row."""
        if self.weights is None:
            raise RuntimeError("the classifier must be fitted before predicting")
        return self._augment(features) @ self.weights

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels (the original label values passed to fit)."""
        if self._classes is None:
            raise RuntimeError("the classifier must be fitted before predicting")
        scores = self.decision_function(features)
        return np.where(scores >= 0, self._classes[1], self._classes[0])

    def set_weights(self, weights: np.ndarray, classes: np.ndarray) -> None:
        """Install externally computed weights (used by the DP-ERM mechanisms)."""
        self.weights = np.asarray(weights, dtype=np.float64)
        self._classes = np.asarray(classes)


class LogisticRegressionClassifier(_LinearERMClassifier):
    """L2-regularized logistic regression."""

    def _loss_gradient(self, margins: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return logistic_loss_gradient(margins)


class LinearSVMClassifier(_LinearERMClassifier):
    """L2-regularized linear SVM with the Huberized hinge loss."""

    def __init__(
        self,
        regularization: float = 1e-4,
        learning_rate: float = 1.0,
        num_iterations: int = 300,
        fit_intercept: bool = True,
        huber_h: float = 0.5,
    ):
        super().__init__(regularization, learning_rate, num_iterations, fit_intercept)
        if huber_h <= 0:
            raise ValueError("huber_h must be positive")
        self.huber_h = huber_h

    def _loss_gradient(self, margins: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return huber_hinge_loss_gradient(margins, self.huber_h)
