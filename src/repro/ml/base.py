"""Common classifier interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Classifier"]


class Classifier(ABC):
    """A supervised classifier over integer-encoded feature matrices.

    All classifiers in this package share the fit/predict interface and accept
    integer class labels.  The feature matrix convention matches the datasets
    package: rows are records, columns are (encoded) attributes.
    """

    @abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "Classifier":
        """Train on a feature matrix and label vector; returns ``self``."""

    @abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict a label for every row of ``features``."""

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on a labelled evaluation set."""
        predictions = self.predict(features)
        targets = np.asarray(labels)
        if predictions.shape != targets.shape:
            raise ValueError("predictions and labels must have the same shape")
        if targets.size == 0:
            return 0.0
        return float(np.mean(predictions == targets))

    @staticmethod
    def _validate_training_data(
        features: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shared shape validation for fit() implementations."""
        x = np.asarray(features)
        y = np.asarray(labels)
        if x.ndim != 2:
            raise ValueError(f"features must be a 2-D matrix, got shape {x.shape}")
        if y.ndim != 1:
            raise ValueError(f"labels must be a 1-D vector, got shape {y.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        if x.shape[0] == 0:
            raise ValueError("cannot train on an empty dataset")
        return x, y
