"""Classifier evaluation helpers: accuracy, agreement rate, distinguishing game.

Three measurements appear in the paper's ML evaluation:

* **accuracy** of a classifier trained on some (real or synthetic) dataset,
  evaluated on held-out *real* records (Tables 3-4);
* **agreement rate** between a classifier trained on a candidate dataset and
  one trained on real data: the fraction of evaluation records on which the
  two classifiers predict the same label, regardless of correctness (Table 3);
* the **distinguishing game** (Table 5): a classifier is trained to tell real
  records from synthetic ones; low test accuracy means the synthetics "pass
  off" as real.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import Dataset
from repro.ml.base import Classifier
from repro.ml.encoding import attribute_features
from repro.ml.metrics import accuracy

__all__ = [
    "ClassifierEvaluation",
    "evaluate_classifier",
    "agreement_rate",
    "distinguishing_game",
]


@dataclass(frozen=True)
class ClassifierEvaluation:
    """Accuracy and (optional) agreement rate of one trained classifier."""

    name: str
    train_dataset: str
    accuracy: float
    agreement_rate: float | None = None


def evaluate_classifier(
    classifier: Classifier,
    train: Dataset,
    test: Dataset,
    target_attribute: str | int,
) -> float:
    """Train on ``train`` and return accuracy on ``test`` for the given target."""
    train_features, train_labels, _ = attribute_features(train, target_attribute)
    test_features, test_labels, _ = attribute_features(test, target_attribute)
    classifier.fit(train_features, train_labels)
    return accuracy(classifier.predict(test_features), test_labels)


def agreement_rate(
    first: Classifier, second: Classifier, test: Dataset, target_attribute: str | int
) -> float:
    """Fraction of test records on which two fitted classifiers agree."""
    features, _, _ = attribute_features(test, target_attribute)
    predictions_first = first.predict(features)
    predictions_second = second.predict(features)
    if predictions_first.size == 0:
        return 0.0
    return float(np.mean(predictions_first == predictions_second))


def distinguishing_game(
    classifier: Classifier,
    real: Dataset,
    synthetic: Dataset,
    train_size_per_class: int,
    test_size_per_class: int,
    rng: np.random.Generator | None = None,
) -> float:
    """The real-vs-synthetic distinguishing game of Section 6.4.

    ``train_size_per_class`` records are drawn from each dataset to train a
    binary classifier (label 0 = real, 1 = synthetic), and its accuracy is
    evaluated on a disjoint 50/50 mix of ``test_size_per_class`` records per
    class.  An accuracy of 0.5 means the synthetics are indistinguishable from
    real records for this adversary.
    """
    if train_size_per_class < 1 or test_size_per_class < 1:
        raise ValueError("train and test sizes must be positive")
    needed = train_size_per_class + test_size_per_class
    if len(real) < needed or len(synthetic) < needed:
        raise ValueError(
            f"need at least {needed} records per dataset, "
            f"got {len(real)} real and {len(synthetic)} synthetic"
        )
    if rng is None:
        raise ValueError("distinguishing_game requires an explicit rng")
    generator = rng

    real_indices = generator.permutation(len(real))[:needed]
    synthetic_indices = generator.permutation(len(synthetic))[:needed]

    real_train = real.data[real_indices[:train_size_per_class]]
    real_test = real.data[real_indices[train_size_per_class:]]
    synthetic_train = synthetic.data[synthetic_indices[:train_size_per_class]]
    synthetic_test = synthetic.data[synthetic_indices[train_size_per_class:]]

    train_features = np.vstack([real_train, synthetic_train])
    train_labels = np.concatenate(
        [np.zeros(len(real_train), dtype=np.int64), np.ones(len(synthetic_train), dtype=np.int64)]
    )
    test_features = np.vstack([real_test, synthetic_test])
    test_labels = np.concatenate(
        [np.zeros(len(real_test), dtype=np.int64), np.ones(len(synthetic_test), dtype=np.int64)]
    )

    shuffle = generator.permutation(len(train_labels))
    classifier.fit(train_features[shuffle], train_labels[shuffle])
    return accuracy(classifier.predict(test_features), test_labels)
