"""Tests for the distribution-distance metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.distance import (
    jensen_shannon_divergence,
    pairwise_attribute_distances,
    single_attribute_distances,
    total_variation_distance,
)


def _random_distribution(draw_values):
    weights = np.array(draw_values, dtype=np.float64) + 1e-9
    return weights / weights.sum()


distributions = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=12
).map(_random_distribution)


class TestTotalVariationDistance:
    def test_identical_distributions(self):
        p = np.array([0.25, 0.75])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_supports_give_one(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_known_value(self):
        assert total_variation_distance(
            np.array([0.5, 0.5]), np.array([0.75, 0.25])
        ) == pytest.approx(0.25)

    def test_rejects_mismatched_support(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.0]), np.array([0.5, 0.5]))

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([0.5, 0.4]), np.array([0.5, 0.5]))

    @given(distributions, distributions)
    @settings(max_examples=60)
    def test_axioms(self, p, q):
        if p.size != q.size:
            return
        distance = total_variation_distance(p, q)
        assert 0.0 <= distance <= 1.0
        assert distance == pytest.approx(total_variation_distance(q, p))
        assert total_variation_distance(p, p) == pytest.approx(0.0)

    @given(distributions, distributions, distributions)
    @settings(max_examples=40)
    def test_triangle_inequality(self, p, q, r):
        sizes = {p.size, q.size, r.size}
        if len(sizes) != 1:
            return
        assert total_variation_distance(p, r) <= (
            total_variation_distance(p, q) + total_variation_distance(q, r) + 1e-9
        )


class TestJensenShannon:
    def test_identical_distributions(self):
        p = np.array([0.3, 0.7])
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_supports_give_one_bit(self):
        assert jensen_shannon_divergence(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    @given(distributions, distributions)
    @settings(max_examples=40)
    def test_bounded_and_symmetric(self, p, q):
        if p.size != q.size:
            return
        value = jensen_shannon_divergence(p, q)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(jensen_shannon_divergence(q, p))


class TestDatasetDistances:
    def test_single_attribute_distances_of_identical_data(self, toy_dataset):
        cards = toy_dataset.schema.cardinalities
        distances = single_attribute_distances(toy_dataset.data, toy_dataset.data, cards)
        assert len(distances) == toy_dataset.num_attributes
        assert all(d == pytest.approx(0.0) for d in distances)

    def test_pairwise_distances_of_identical_data(self, toy_dataset):
        cards = toy_dataset.schema.cardinalities
        distances = pairwise_attribute_distances(toy_dataset.data, toy_dataset.data, cards)
        m = toy_dataset.num_attributes
        assert len(distances) == m * (m - 1) // 2
        assert all(d == pytest.approx(0.0) for d in distances.values())

    def test_shuffled_column_breaks_pairwise_but_not_single(self, toy_dataset, rng):
        cards = toy_dataset.schema.cardinalities
        shuffled = toy_dataset.data.copy()
        rng.shuffle(shuffled[:, 2])  # break the age-size correlation
        single = single_attribute_distances(toy_dataset.data, shuffled, cards)
        pairs = pairwise_attribute_distances(toy_dataset.data, shuffled, cards)
        assert max(single) == pytest.approx(0.0, abs=1e-9)
        assert pairs[(0, 2)] > 0.1

    def test_mismatched_attribute_counts_rejected(self, toy_dataset):
        with pytest.raises(ValueError):
            single_attribute_distances(
                toy_dataset.data, toy_dataset.data[:, :2], toy_dataset.schema.cardinalities
            )

    def test_cardinality_list_must_match(self, toy_dataset):
        with pytest.raises(ValueError):
            pairwise_attribute_distances(toy_dataset.data, toy_dataset.data, [2, 2])
