"""Tests for the one-pass pairwise-statistics engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.contingency import joint_counts, marginal_counts
from repro.stats.entropy import entropy, entropy_from_counts, joint_entropy
from repro.stats.pairwise import (
    CrossPairwiseStats,
    PairwiseStats,
    block_entropy,
    pairwise_entropies,
    scipy_available,
)

METHODS = ["dense", "sparse", "bincount"]


def _random_matrix(cards, num_records, seed):
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [rng.integers(0, card, size=num_records) for card in cards]
    )


CARDS = (5, 3, 7, 2, 4)


@pytest.fixture(scope="module")
def matrix():
    return _random_matrix(CARDS, 3000, seed=0)


class TestGram:
    @pytest.mark.parametrize("method", METHODS)
    def test_blocks_match_per_pair_contingency_tables(self, matrix, method):
        stats = PairwiseStats.from_matrix(matrix, CARDS, method=method)
        m = len(CARDS)
        for i in range(m):
            assert np.array_equal(
                stats.marginal(i), marginal_counts(matrix[:, i], CARDS[i])
            )
            for j in range(m):
                if i == j:
                    continue
                expected = joint_counts(matrix[:, i], matrix[:, j], CARDS[i], CARDS[j])
                assert np.array_equal(stats.table(i, j), expected)

    @pytest.mark.parametrize("method", ["sparse", "bincount"])
    def test_all_backends_are_bit_identical(self, matrix, method):
        dense = PairwiseStats.from_matrix(matrix, CARDS, method="dense", chunk_size=137)
        other = PairwiseStats.from_matrix(matrix, CARDS, method=method, chunk_size=211)
        assert np.array_equal(dense.gram, other.gram)

    def test_auto_method_matches_explicit(self, matrix):
        auto = PairwiseStats.from_matrix(matrix, CARDS)
        explicit = PairwiseStats.from_matrix(matrix, CARDS, method="dense")
        assert np.array_equal(auto.gram, explicit.gram)

    def test_diagonal_block_is_diagonal_marginal(self, matrix):
        stats = PairwiseStats.from_matrix(matrix, CARDS)
        block = stats.table(2, 2)
        assert np.array_equal(block, np.diag(stats.marginal(2)))

    def test_gram_is_symmetric_with_total_row_sums(self, matrix):
        stats = PairwiseStats.from_matrix(matrix, CARDS)
        assert np.array_equal(stats.gram, stats.gram.T)
        # every one-hot row has one entry per attribute, so each Gram row sums
        # to (occurrences of that value) x (number of attributes)
        m = len(CARDS)
        for i in range(m):
            rows = stats.gram[stats.offsets[i] : stats.offsets[i + 1]]
            assert np.array_equal(rows.sum(axis=1), stats.marginal(i) * m)

    def test_scipy_availability_flag(self):
        assert isinstance(scipy_available(), bool)

    def test_empty_matrix(self):
        stats = PairwiseStats.from_matrix(
            np.empty((0, 2), dtype=np.int64), (3, 2), method="bincount"
        )
        assert stats.num_records == 0
        assert np.array_equal(stats.gram, np.zeros((5, 5), dtype=np.int64))
        assert np.array_equal(stats.entropies(), np.zeros((2, 2)))


class TestCross:
    @pytest.mark.parametrize("method", METHODS)
    def test_cross_blocks_match_per_pair_tables(self, matrix, method):
        left_cards, right_cards = CARDS[:3], CARDS[3:]
        left, right = matrix[:, :3], matrix[:, 3:]
        cross = CrossPairwiseStats.from_matrices(
            left, left_cards, right, right_cards, method=method
        )
        for i in range(3):
            for j in range(2):
                expected = joint_counts(
                    left[:, i], right[:, j], left_cards[i], right_cards[j]
                )
                assert np.array_equal(cross.table(i, j), expected)

    def test_self_cross_equals_square_gram(self, matrix):
        square = PairwiseStats.from_matrix(matrix, CARDS, method="dense")
        cross = CrossPairwiseStats.from_matrices(
            matrix, CARDS, matrix, CARDS, method="dense"
        )
        assert np.array_equal(square.gram, cross.gram)

    @pytest.mark.parametrize("method", METHODS)
    def test_same_array_with_different_partitions_not_aliased(self, method):
        # Regression: passing the *same* int64 array for both sides with
        # different cardinality partitions that happen to sum to the same
        # total must not reuse the left one-hot (A's offsets) for B.
        data = np.array([[0, 1], [1, 0], [1, 1], [0, 0]], dtype=np.int64)
        cross = CrossPairwiseStats.from_matrices(
            data, (2, 3), data, (3, 2), method=method
        )
        expected = CrossPairwiseStats.from_matrices(
            data, (2, 3), data.copy(), (3, 2), method=method
        )
        assert np.array_equal(cross.gram, expected.gram)
        assert np.array_equal(
            cross.table(0, 1), joint_counts(data[:, 0], data[:, 1], 2, 2)
        )

    def test_mismatched_record_counts_rejected(self, matrix):
        with pytest.raises(ValueError, match="same records"):
            CrossPairwiseStats.from_matrices(
                matrix, CARDS, matrix[:100], CARDS, method="dense"
            )


class TestValidation:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            PairwiseStats.from_matrix(np.zeros(4, dtype=np.int64), (2,))

    def test_rejects_cardinality_mismatch(self):
        with pytest.raises(ValueError, match="cardinalities"):
            PairwiseStats.from_matrix(np.zeros((3, 2), dtype=np.int64), (2,))

    def test_rejects_out_of_range_codes(self):
        bad = np.array([[0, 5]])
        with pytest.raises(ValueError, match="outside"):
            PairwiseStats.from_matrix(bad, (2, 3))

    def test_rejects_negative_codes(self):
        bad = np.array([[-1, 0]])
        with pytest.raises(ValueError, match="outside"):
            PairwiseStats.from_matrix(bad, (2, 3))

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            PairwiseStats.from_matrix(np.zeros((3, 1), dtype=np.int64), (2,), chunk_size=0)

    def test_rejects_bad_cardinality(self):
        with pytest.raises(ValueError, match="cardinality"):
            PairwiseStats.from_matrix(np.zeros((3, 1), dtype=np.int64), (0,))

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            PairwiseStats.from_matrix(np.zeros((3, 1), dtype=np.int64), (2,), method="magic")


class TestEntropies:
    @pytest.mark.parametrize("method", METHODS)
    def test_matches_loop_reference(self, matrix, method):
        entropies = pairwise_entropies(matrix, CARDS, method=method)
        m = len(CARDS)
        for i in range(m):
            assert entropies[i, i] == pytest.approx(
                entropy(matrix[:, i], CARDS[i]), abs=1e-12
            )
            for j in range(m):
                if i != j:
                    expected = joint_entropy(
                        matrix[:, i], matrix[:, j], CARDS[i], CARDS[j]
                    )
                    assert entropies[i, j] == pytest.approx(expected, abs=1e-12)

    def test_symmetric_and_non_negative(self, matrix):
        entropies = pairwise_entropies(matrix, CARDS)
        assert np.allclose(entropies, entropies.T)
        assert np.all(entropies >= 0)

    def test_exact_entropies_are_bit_identical_to_the_scalar_pipeline(self, matrix):
        stats = PairwiseStats.from_matrix(matrix, CARDS)
        exact = stats.exact_entropies()
        m = len(CARDS)
        for i in range(m):
            assert exact[i, i] == entropy(matrix[:, i], CARDS[i])
            for j in range(m):
                if i != j:
                    assert exact[i, j] == joint_entropy(
                        matrix[:, i], matrix[:, j], CARDS[i], CARDS[j]
                    )
        # The batched reduceat variant agrees to float tolerance (not bits).
        assert np.allclose(exact, stats.entropies(), atol=1e-12)

    def test_block_entropy_is_bit_identical_to_entropy_from_counts(self, matrix):
        stats = PairwiseStats.from_matrix(matrix, CARDS)
        for i in range(len(CARDS)):
            for j in range(len(CARDS)):
                block = stats.table(i, j)
                assert block_entropy(block) == entropy_from_counts(block)
        assert block_entropy(np.zeros(4, dtype=np.int64)) == 0.0

    @given(seed=st.integers(0, 10_000), num_records=st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_property_joint_entropy_bounds(self, seed, num_records):
        cards = (3, 4)
        data = _random_matrix(cards, num_records, seed)
        entropies = pairwise_entropies(data, cards, method="bincount")
        h_x, h_y, h_xy = entropies[0, 0], entropies[1, 1], entropies[0, 1]
        assert h_xy <= h_x + h_y + 1e-9
        assert h_xy >= max(h_x, h_y) - 1e-9
