"""Tests for count tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats.contingency import (
    contingency_table,
    joint_counts,
    joint_distribution,
    marginal_counts,
    marginal_distribution,
    pairwise_joint_distribution,
)


class TestMarginalCounts:
    def test_basic_histogram(self):
        counts = marginal_counts(np.array([0, 1, 1, 2]), cardinality=4)
        assert counts.tolist() == [1, 2, 1, 0]

    def test_infers_cardinality(self):
        assert marginal_counts(np.array([0, 3])).tolist() == [1, 0, 0, 1]

    def test_rejects_values_beyond_cardinality(self):
        with pytest.raises(ValueError):
            marginal_counts(np.array([5]), cardinality=3)

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            marginal_counts(np.array([-1]))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            marginal_counts(np.zeros((2, 2)))

    def test_distribution_sums_to_one(self):
        distribution = marginal_distribution(np.array([0, 0, 1, 2]), cardinality=3)
        assert distribution.sum() == pytest.approx(1.0)
        assert distribution.tolist() == [0.5, 0.25, 0.25]

    def test_distribution_empty_raises(self):
        with pytest.raises(ValueError):
            marginal_distribution(np.array([], dtype=np.int64), cardinality=3)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=50))
    def test_counts_sum_to_number_of_records(self, values):
        counts = marginal_counts(np.array(values), cardinality=6)
        assert counts.sum() == len(values)


class TestJointCounts:
    def test_basic_table(self):
        first = np.array([0, 0, 1])
        second = np.array([1, 0, 1])
        table = joint_counts(first, second, 2, 2)
        assert table.tolist() == [[1, 1], [0, 1]]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            joint_counts(np.array([0]), np.array([0, 1]))

    def test_joint_distribution_sums_to_one(self):
        dist = joint_distribution(np.array([0, 1, 1]), np.array([0, 0, 1]), 2, 2)
        assert dist.sum() == pytest.approx(1.0)

    def test_marginalizing_joint_recovers_marginals(self):
        rng = np.random.default_rng(0)
        first = rng.integers(0, 4, size=200)
        second = rng.integers(0, 3, size=200)
        joint = joint_counts(first, second, 4, 3)
        assert np.array_equal(joint.sum(axis=1), marginal_counts(first, 4))
        assert np.array_equal(joint.sum(axis=0), marginal_counts(second, 3))


class TestMatrixHelpers:
    def test_pairwise_joint_distribution(self, toy_dataset):
        dist = pairwise_joint_distribution(
            toy_dataset.data, 1, 2, toy_dataset.schema.cardinalities
        )
        assert dist.shape == (3, 2)
        assert dist.sum() == pytest.approx(1.0)

    def test_contingency_table_shape_and_total(self, toy_dataset):
        cards = toy_dataset.schema.cardinalities
        table = contingency_table(toy_dataset.data, [1, 2, 3], cards)
        assert table.shape == (3, 2, 2)
        assert table.sum() == len(toy_dataset)

    def test_contingency_table_requires_columns(self, toy_dataset):
        with pytest.raises(ValueError):
            contingency_table(toy_dataset.data, [], toy_dataset.schema.cardinalities)

    def test_contingency_table_requires_2d_matrix(self):
        with pytest.raises(ValueError):
            contingency_table(np.array([1, 2, 3]), [0], [4])
