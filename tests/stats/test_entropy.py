"""Tests for entropy, mutual information, symmetrical uncertainty and Lemma 1."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.entropy import (
    conditional_entropy,
    entropy,
    entropy_from_counts,
    entropy_from_distribution,
    entropy_sensitivity_bound,
    joint_entropy,
    mutual_information,
    symmetrical_uncertainty,
    symmetrical_uncertainty_from_entropies,
)


class TestEntropy:
    def test_uniform_distribution_has_log_cardinality_bits(self):
        assert entropy_from_distribution(np.full(8, 1 / 8)) == pytest.approx(3.0)

    def test_deterministic_distribution_has_zero_entropy(self):
        assert entropy_from_distribution(np.array([1.0, 0.0, 0.0])) == 0.0

    def test_empty_distribution(self):
        assert entropy_from_distribution(np.array([])) == 0.0

    def test_rejects_negative_probabilities(self):
        with pytest.raises(ValueError):
            entropy_from_distribution(np.array([1.2, -0.2]))

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            entropy_from_distribution(np.array([0.5, 0.2]))

    def test_entropy_from_counts(self):
        assert entropy_from_counts(np.array([5, 5])) == pytest.approx(1.0)
        assert entropy_from_counts(np.array([0, 0])) == 0.0

    def test_entropy_of_column(self):
        values = np.array([0, 0, 1, 1])
        assert entropy(values, 2) == pytest.approx(1.0)

    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=80),
    )
    @settings(max_examples=40)
    def test_entropy_bounds(self, values):
        column = np.array(values)
        h = entropy(column, 5)
        assert 0.0 <= h <= math.log2(5) + 1e-9


class TestJointAndConditional:
    def test_joint_entropy_of_independent_uniform(self, rng):
        first = rng.integers(0, 2, size=4000)
        second = rng.integers(0, 2, size=4000)
        assert joint_entropy(first, second, 2, 2) == pytest.approx(2.0, abs=0.05)

    def test_joint_entropy_of_identical_variables(self, rng):
        values = rng.integers(0, 4, size=2000)
        assert joint_entropy(values, values, 4, 4) == pytest.approx(entropy(values, 4))

    def test_conditional_entropy_of_identical_is_zero(self, rng):
        values = rng.integers(0, 4, size=1000)
        assert conditional_entropy(values, values, 4, 4) == pytest.approx(0.0, abs=1e-9)

    def test_conditional_entropy_is_at_most_marginal(self, rng):
        first = rng.integers(0, 5, size=1000)
        second = rng.integers(0, 3, size=1000)
        assert conditional_entropy(first, second, 5, 3) <= entropy(first, 5) + 1e-9


class TestMutualInformation:
    def test_independent_variables_have_near_zero_mi(self, rng):
        first = rng.integers(0, 3, size=5000)
        second = rng.integers(0, 3, size=5000)
        assert mutual_information(first, second, 3, 3) < 0.01

    def test_identical_variables_have_mi_equal_to_entropy(self, rng):
        values = rng.integers(0, 4, size=2000)
        assert mutual_information(values, values, 4, 4) == pytest.approx(entropy(values, 4))

    def test_mi_is_symmetric(self, rng):
        first = rng.integers(0, 4, size=1000)
        second = (first + rng.integers(0, 2, size=1000)) % 4
        assert mutual_information(first, second, 4, 4) == pytest.approx(
            mutual_information(second, first, 4, 4)
        )


class TestSymmetricalUncertainty:
    def test_identical_variables_give_one(self, rng):
        values = rng.integers(0, 4, size=2000)
        assert symmetrical_uncertainty(values, values, 4, 4) == pytest.approx(1.0, abs=1e-6)

    def test_independent_variables_give_near_zero(self, rng):
        first = rng.integers(0, 4, size=5000)
        second = rng.integers(0, 4, size=5000)
        assert symmetrical_uncertainty(first, second, 4, 4) < 0.02

    def test_clamped_to_unit_interval_with_noisy_entropies(self):
        # Noisy entropy values can make the raw formula leave [0, 1]; the
        # helper must clamp (this is what the DP structure learner relies on).
        assert symmetrical_uncertainty_from_entropies(1.0, 1.0, 2.5) == 0.0
        assert symmetrical_uncertainty_from_entropies(1.0, 1.0, 0.5) == 1.0

    def test_zero_entropy_denominator(self):
        assert symmetrical_uncertainty_from_entropies(0.0, 0.0, 0.0) == 0.0

    @given(
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.0, max_value=16.0),
    )
    def test_always_in_unit_interval(self, h1, h2, h12):
        value = symmetrical_uncertainty_from_entropies(h1, h2, h12)
        assert 0.0 <= value <= 1.0


class TestSensitivityBound:
    def test_matches_lemma1_formula(self):
        n = 1000
        expected = (2 + 1 / math.log(2) + 2 * math.log2(n)) / n
        assert entropy_sensitivity_bound(n) == pytest.approx(expected)

    def test_decreasing_in_n(self):
        values = [entropy_sensitivity_bound(n) for n in (10, 100, 1000, 10_000)]
        assert values == sorted(values, reverse=True)

    def test_rejects_non_positive_n(self):
        with pytest.raises(ValueError):
            entropy_sensitivity_bound(0)

    def test_empirically_bounds_neighbor_entropy_difference(self, rng):
        # Moving one record between two histogram bins never changes the
        # entropy by more than the Lemma 1 bound.
        n = 500
        for _ in range(20):
            counts = rng.multinomial(n, np.full(6, 1 / 6))
            donors = np.flatnonzero(counts > 0)
            source = int(rng.choice(donors))
            target = int(rng.integers(0, 6))
            neighbor = counts.copy()
            neighbor[source] -= 1
            neighbor[target] += 1
            difference = abs(entropy_from_counts(counts) - entropy_from_counts(neighbor))
            assert difference <= entropy_sensitivity_bound(n) + 1e-12
