"""Tests for parallel generation."""

import numpy as np
import pytest

from repro.core.parallel import ParallelGenerationTask, _run_worker, generate_in_parallel
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams


@pytest.fixture(scope="module")
def params():
    return PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0)


class TestWorker:
    def test_worker_runs_requested_attempts(self, unnoised_model, acs_splits, params):
        task = ParallelGenerationTask(
            model=unnoised_model,
            seed_data=acs_splits.seeds.data,
            schema_attributes=tuple(acs_splits.seeds.schema.attributes),
            params=params,
            num_attempts=7,
            rng_seed=0,
        )
        report = _run_worker(task)
        assert report.num_attempts == 7


class TestGenerateInParallel:
    def test_single_worker_in_process(self, unnoised_model, acs_splits, params):
        report = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, num_attempts=12, num_workers=1
        )
        assert report.num_attempts == 12

    def test_attempts_split_across_workers(self, unnoised_model, acs_splits, params):
        report = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, num_attempts=9, num_workers=2
        )
        assert report.num_attempts == 9

    def test_zero_attempts(self, unnoised_model, acs_splits, params):
        report = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, num_attempts=0, num_workers=2
        )
        assert report.num_attempts == 0

    def test_validation(self, unnoised_model, acs_splits, params):
        with pytest.raises(ValueError):
            generate_in_parallel(unnoised_model, acs_splits.seeds, params, -1)
        with pytest.raises(ValueError):
            generate_in_parallel(unnoised_model, acs_splits.seeds, params, 5, num_workers=0)

    def test_reproducible_for_fixed_base_seed(self, unnoised_model, acs_splits, params):
        first = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, 10, num_workers=1, base_seed=3
        )
        second = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, 10, num_workers=1, base_seed=3
        )
        assert np.array_equal(
            first.all_candidates_dataset().data, second.all_candidates_dataset().data
        )

    def test_adjacent_base_seeds_do_not_share_worker_streams(
        self, unnoised_model, acs_splits, params
    ):
        # Regression: with the old base_seed + worker_index seeding, worker 1
        # of a base_seed=0 run used the same RNG stream as worker 0 of a
        # base_seed=1 run, so their candidate blocks were identical.  Spawned
        # SeedSequence streams never collide.
        first = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, 8, num_workers=2, base_seed=0
        )
        second = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, 8, num_workers=2, base_seed=1
        )
        overlap_block_first = first.all_candidates_dataset().data[4:8]
        overlap_block_second = second.all_candidates_dataset().data[0:4]
        assert not np.array_equal(overlap_block_first, overlap_block_second)

    def test_batched_workers_run_requested_attempts(
        self, unnoised_model, acs_splits, params
    ):
        report = generate_in_parallel(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_attempts=25,
            num_workers=1,
            batch_size=8,
        )
        assert report.num_attempts == 25
