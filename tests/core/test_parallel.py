"""Tests for the one-call parallel generation facade."""

import numpy as np
import pytest

from repro.core.parallel import generate_in_parallel
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams


@pytest.fixture(scope="module")
def params():
    return PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0)


class TestGenerateInParallel:
    def test_single_worker_in_process(self, unnoised_model, acs_splits, params):
        report = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, num_attempts=12, num_workers=1
        )
        assert report.num_attempts == 12

    def test_zero_attempts(self, unnoised_model, acs_splits, params):
        report = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, num_attempts=0, num_workers=1
        )
        assert report.num_attempts == 0

    def test_validation(self, unnoised_model, acs_splits, params):
        with pytest.raises(ValueError):
            generate_in_parallel(unnoised_model, acs_splits.seeds, params, -1)
        with pytest.raises(ValueError):
            generate_in_parallel(unnoised_model, acs_splits.seeds, params, 5, num_workers=0)

    def test_reproducible_for_fixed_base_seed(self, unnoised_model, acs_splits, params):
        first = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, 10, num_workers=1, base_seed=3
        )
        second = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, 10, num_workers=1, base_seed=3
        )
        assert np.array_equal(
            first.all_candidates_dataset().data, second.all_candidates_dataset().data
        )

    def test_adjacent_base_seeds_use_distinct_streams(
        self, unnoised_model, acs_splits, params
    ):
        # Chunk streams are SeedSequence children of the base seed; unlike the
        # original base_seed + worker_index scheme, adjacent base seeds can
        # never share a stream.
        first = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, 8, num_workers=1, base_seed=0,
            chunk_size=4,
        )
        second = generate_in_parallel(
            unnoised_model, acs_splits.seeds, params, 8, num_workers=1, base_seed=1,
            chunk_size=4,
        )
        assert not np.array_equal(
            first.all_candidates_dataset().data[4:8],
            second.all_candidates_dataset().data[0:4],
        )

    def test_batched_path_runs_requested_attempts(
        self, unnoised_model, acs_splits, params
    ):
        report = generate_in_parallel(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_attempts=25,
            num_workers=1,
            batch_size=8,
        )
        assert report.num_attempts == 25
