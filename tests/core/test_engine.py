"""Tests for the shared-memory parallel synthesis engine.

Parity and reproducibility assertions go through the shared conformance
checkers (:mod:`repro.testing.invariants`); this module keeps the
engine-specific lifecycle, progress and checkpointing coverage.
"""

import numpy as np
import pytest

from repro.core.engine import ChunkProgress, SynthesisEngine, chunk_rng
from repro.core.run_store import RunStore, RunStoreCorruptionError
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams
from repro.testing.invariants import (
    assert_reports_identical,
    check_engine_parity,
    report_accounting as _accounting,
)


@pytest.fixture(scope="module")
def params():
    return PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0)


class TestChunkRng:
    def test_matches_spawned_children(self):
        parent = np.random.SeedSequence(42)
        children = parent.spawn(3)
        for index, child in enumerate(children):
            expected = np.random.default_rng(child).integers(2**63, size=4)
            actual = chunk_rng(42, index).integers(2**63, size=4)
            assert np.array_equal(expected, actual)

    def test_streams_differ_across_chunks_and_seeds(self):
        draws = {
            (seed, chunk): tuple(chunk_rng(seed, chunk).integers(2**63, size=4))
            for seed in (0, 1) for chunk in (0, 1)
        }
        assert len(set(draws.values())) == 4


class TestSerialEngine:
    def test_chunk_oracle_equivalence(self, unnoised_model, acs_splits, params):
        # The engine's chunks are exactly mechanism.run_attempts calls on the
        # per-chunk RNG streams — the serial reference loop is the oracle.
        from repro.core.mechanism import SynthesisMechanism

        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, batch_size=8
        ) as engine:
            report = engine.run_attempts(40, base_seed=9)
        mechanism = SynthesisMechanism(unnoised_model, acs_splits.seeds, params)
        oracle = [
            mechanism.run_attempts(size, chunk_rng(9, index), batch_size=8)
            for index, size in enumerate((16, 16, 8))
        ]
        merged = oracle[0].merge(*oracle[1:])
        assert_reports_identical(merged, report)

    def test_run_attempts_counts(self, unnoised_model, acs_splits, params):
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=8
        ) as engine:
            assert engine.run_attempts(0).num_attempts == 0
            assert engine.run_attempts(21).num_attempts == 21

    def test_generate_until_n_stops_within_a_chunk(
        self, unnoised_model, acs_splits, params
    ):
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=32
        ) as engine:
            report = engine.generate(10, base_seed=3, max_attempts=5000)
        assert report.num_released == 10
        # Truncation at the Nth release: the final recorded attempt is it.
        assert report.attempts[-1].released
        assert report.num_attempts <= 2 * engine.chunk_size

    def test_generate_respects_attempt_budget(self, unnoised_model, acs_splits):
        # k equal to the whole seed split: a candidate passes only if every
        # seed record shares its probability bucket, which the zero-probability
        # non-matching records make impossible — the budget must stop the run.
        strict = PlausibleDeniabilityParams(k=len(acs_splits.seeds), gamma=4.0)
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, strict, chunk_size=16
        ) as engine:
            report = engine.generate(5, base_seed=1, max_attempts=64)
        assert report.num_attempts == 64
        assert report.num_released < 5

    def test_progress_events_stream(self, unnoised_model, acs_splits, params):
        events: list[ChunkProgress] = []
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16
        ) as engine:
            report = engine.run_attempts(40, base_seed=2, progress=events.append)
        assert [event.chunk_index for event in events] == [0, 1, 2]
        assert [event.chunk_attempts for event in events] == [16, 16, 8]
        assert events[-1].total_attempts == report.num_attempts
        assert events[-1].total_released == report.num_released

    def test_validation(self, unnoised_model, acs_splits, params):
        with pytest.raises(ValueError):
            SynthesisEngine(unnoised_model, acs_splits.seeds, params, num_workers=0)
        with pytest.raises(ValueError):
            SynthesisEngine(unnoised_model, acs_splits.seeds, params, chunk_size=0)
        with pytest.raises(ValueError):
            SynthesisEngine(unnoised_model, acs_splits.seeds, params, batch_size=0)
        with SynthesisEngine(unnoised_model, acs_splits.seeds, params) as engine:
            with pytest.raises(ValueError):
                engine.run_attempts(-1)
            with pytest.raises(ValueError):
                engine.generate(-1)

    def test_closed_engine_rejects_runs(self, unnoised_model, acs_splits, params):
        engine = SynthesisEngine(unnoised_model, acs_splits.seeds, params)
        engine.close()
        with pytest.raises(RuntimeError):
            engine.run_attempts(1)


class TestWorkerPoolParity:
    """Spawn-context multi-worker runs must match the serial reference exactly.

    The comparisons go through :func:`repro.testing.invariants.check_engine_parity`;
    one persistent 2-worker pool is shared by the whole class so the suite
    pays the spawn startup cost once.
    """

    @pytest.fixture(scope="class")
    def pool_engine(self, unnoised_model, acs_splits, params):
        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
        ) as engine:
            yield engine.start()

    def test_run_attempts_parity(self, pool_engine, unnoised_model, acs_splits, params):
        check_engine_parity(
            unnoised_model,
            acs_splits.seeds,
            params,
            base_seed=11,
            num_attempts=60,
            chunk_size=16,
            batch_size=8,
            engines=[pool_engine],
        )

    def test_until_n_released_parity(self, pool_engine, unnoised_model, acs_splits, params):
        serial = check_engine_parity(
            unnoised_model,
            acs_splits.seeds,
            params,
            base_seed=13,
            num_released=12,
            max_attempts=4000,
            chunk_size=16,
            batch_size=8,
            engines=[pool_engine],
        )
        assert serial.num_released == 12

    def test_pool_persists_across_calls(self, pool_engine):
        first = pool_engine.run_attempts(20, base_seed=1)
        second = pool_engine.run_attempts(20, base_seed=1)
        assert_reports_identical(first, second)


class TestCheckpointing:
    def test_resume_skips_completed_chunks(
        self, unnoised_model, acs_splits, params, tmp_path, monkeypatch
    ):
        store = RunStore(tmp_path / "store")
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            original = engine.generate(
                10, base_seed=21, max_attempts=2000, run_id="resume-test"
            )
        assert store.completed_chunks("resume-test")

        # A fresh engine with the same store must replay from the checkpoints
        # without proposing a single new candidate.
        from repro.core import mechanism as mechanism_module

        def _boom(*args, **kwargs):
            raise AssertionError("resumed run must not regenerate chunks")

        monkeypatch.setattr(
            mechanism_module.SynthesisMechanism, "run_attempts", _boom
        )
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            resumed = engine.generate(
                10, base_seed=21, max_attempts=2000, run_id="resume-test"
            )
        assert _accounting(resumed) == _accounting(original)

    def test_partial_resume_completes_the_run(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        store = RunStore(tmp_path / "store")
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            full = engine.run_attempts(48, base_seed=5, run_id="partial")
        # Simulate a crash after the first chunk: drop the later checkpoints.
        run_dir = store.root / "runs" / "partial"
        for index in (1, 2):
            (run_dir / f"chunk_{index:08d}.npz").unlink()
        events = []
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            resumed = engine.run_attempts(
                48, base_seed=5, run_id="partial", progress=events.append
            )
        assert _accounting(resumed) == _accounting(full)
        assert [event.from_checkpoint for event in events] == [True, False, False]

    def test_gap_in_checkpoints_regenerates_from_the_gap(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        # Only the contiguous prefix of checkpoints may be adopted: presets
        # derived from post-gap chunks could stop an until-N pool before the
        # gap is filled.  With chunk 0 missing, everything is regenerated —
        # bit-identically, since chunks are pure functions of their index.
        store = RunStore(tmp_path / "store")
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            full = engine.run_attempts(48, base_seed=5, run_id="gap")
        (store.root / "runs" / "gap" / "chunk_00000000.npz").unlink()
        events = []
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            resumed = engine.run_attempts(
                48, base_seed=5, run_id="gap", progress=events.append
            )
        assert _accounting(resumed) == _accounting(full)
        assert all(not event.from_checkpoint for event in events)

    def test_mismatched_signature_rejected(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        store = RunStore(tmp_path / "store")
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            engine.run_attempts(32, base_seed=5, run_id="sig")
            with pytest.raises(ValueError):
                engine.run_attempts(32, base_seed=6, run_id="sig")

    @pytest.mark.parametrize(
        "kwargs",
        [{"chunk_size": 8}, {"batch_size": 4}],
        ids=["chunk-size", "batch-size"],
    )
    def test_changed_rng_layout_rejects_resume(
        self, unnoised_model, acs_splits, params, tmp_path, kwargs
    ):
        # Chunk and batch sizes are part of a run's RNG layout; resuming a
        # run id under a different grid would splice together incompatible
        # chunk streams, so the signature check must reject it.
        store = RunStore(tmp_path / "store")
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params,
            chunk_size=16, batch_size=8, run_store=store,
        ) as engine:
            engine.run_attempts(32, base_seed=5, run_id="layout")
        changed = {"chunk_size": 16, "batch_size": 8, **kwargs}
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, run_store=store, **changed
        ) as engine:
            with pytest.raises(ValueError, match="different job signature"):
                engine.run_attempts(32, base_seed=5, run_id="layout")

    def test_corrupted_chunk_fails_loudly_on_resume(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        store = RunStore(tmp_path / "store")
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            engine.run_attempts(48, base_seed=5, run_id="corrupt")
        chunk_path = store.root / "runs" / "corrupt" / "chunk_00000001.npz"
        chunk_path.write_bytes(chunk_path.read_bytes()[: 40])
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            with pytest.raises(RunStoreCorruptionError, match="chunk_00000001"):
                engine.run_attempts(48, base_seed=5, run_id="corrupt")

    def test_partial_final_chunk_write_is_ignored(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        # Atomic writes leave a *.tmp file behind only if the process dies
        # mid-write; resume must skip it and regenerate the chunk instead of
        # treating the partial file as a checkpoint.
        store = RunStore(tmp_path / "store")
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            full = engine.run_attempts(48, base_seed=5, run_id="partial-write")
        run_dir = store.root / "runs" / "partial-write"
        final = run_dir / "chunk_00000002.npz"
        (run_dir / "chunk_00000002.npz.tmp").write_bytes(final.read_bytes()[: 40])
        final.unlink()
        assert store.completed_chunks("partial-write") == {0, 1}
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            resumed = engine.run_attempts(48, base_seed=5, run_id="partial-write")
        assert_reports_identical(full, resumed)

    def test_changed_privacy_knobs_reject_resume(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        store = RunStore(tmp_path / "store")
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            engine.run_attempts(32, base_seed=5, run_id="knobs")
        relaxed = PlausibleDeniabilityParams(
            k=params.k, gamma=params.gamma, epsilon0=params.epsilon0,
            max_plausible=params.k,
        )
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, relaxed, chunk_size=16, run_store=store
        ) as engine:
            with pytest.raises(ValueError):
                engine.run_attempts(32, base_seed=5, run_id="knobs")

    def test_changed_seed_split_rejects_resume(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        from repro.datasets.dataset import Dataset

        store = RunStore(tmp_path / "store")
        with SynthesisEngine(
            unnoised_model, acs_splits.seeds, params, chunk_size=16, run_store=store
        ) as engine:
            engine.run_attempts(32, base_seed=5, run_id="data")
        truncated = Dataset(
            acs_splits.seeds.schema, acs_splits.seeds.data[:-1]
        )
        with SynthesisEngine(
            unnoised_model, truncated, params, chunk_size=16, run_store=store
        ) as engine:
            with pytest.raises(ValueError):
                engine.run_attempts(32, base_seed=5, run_id="data")
