"""Tests for synthesis-run bookkeeping."""

import numpy as np
import pytest

from repro.core.results import SynthesisAttempt, SynthesisReport
from repro.privacy.plausible_deniability import PrivacyTestResult


def make_attempt(schema, passed=True, seed_index=0, value=0):
    candidate = np.full(len(schema), value % 2, dtype=np.int64)
    result = PrivacyTestResult(
        passed=passed, plausible_seeds=10, partition_index=1, threshold=5.0, records_checked=100
    )
    return SynthesisAttempt(seed_index=seed_index, candidate=candidate, test=result)


class TestSynthesisAttempt:
    def test_released_mirrors_test_outcome(self, toy_schema):
        assert make_attempt(toy_schema, passed=True).released
        assert not make_attempt(toy_schema, passed=False).released


class TestSynthesisReport:
    def test_empty_report(self, toy_schema):
        report = SynthesisReport(schema=toy_schema)
        assert report.num_attempts == 0
        assert report.num_released == 0
        assert report.pass_rate == 0.0
        assert report.mean_plausible_seeds == 0.0
        assert len(report.released_dataset()) == 0
        assert len(report.all_candidates_dataset()) == 0

    def test_counts_and_pass_rate(self, toy_schema):
        report = SynthesisReport(schema=toy_schema)
        report.record(make_attempt(toy_schema, passed=True))
        report.record(make_attempt(toy_schema, passed=False))
        report.record(make_attempt(toy_schema, passed=True))
        assert report.num_attempts == 3
        assert report.num_released == 2
        assert report.pass_rate == pytest.approx(2 / 3)

    def test_released_dataset_contains_only_passing_candidates(self, toy_schema):
        report = SynthesisReport(schema=toy_schema)
        report.record(make_attempt(toy_schema, passed=True, value=1))
        report.record(make_attempt(toy_schema, passed=False, value=0))
        released = report.released_dataset()
        assert len(released) == 1
        assert len(report.all_candidates_dataset()) == 2

    def test_mean_plausible_seeds(self, toy_schema):
        report = SynthesisReport(schema=toy_schema)
        report.record(make_attempt(toy_schema))
        assert report.mean_plausible_seeds == 10.0

    def test_merge(self, toy_schema):
        first = SynthesisReport(schema=toy_schema)
        first.record(make_attempt(toy_schema, passed=True))
        second = SynthesisReport(schema=toy_schema)
        second.record(make_attempt(toy_schema, passed=False))
        merged = first.merge(second)
        assert merged.num_attempts == 2
        assert merged.num_released == 1

    def test_release_counter_is_incremental(self, toy_schema):
        # Regression: num_released used to re-scan the whole attempt list on
        # every access, making the until-n-released loop quadratic.  The
        # counter must stay exact through record(), construction from an
        # existing attempt list, and merge().
        attempts = [
            make_attempt(toy_schema, passed=bool(index % 2)) for index in range(9)
        ]
        from_list = SynthesisReport(schema=toy_schema, attempts=list(attempts))
        assert from_list.num_released == 4
        from_list.record(make_attempt(toy_schema, passed=True))
        assert from_list.num_released == 5
        merged = from_list.merge(from_list)
        assert merged.num_released == 10
        assert merged.num_attempts == 20

    def test_merge_requires_same_schema(self, toy_schema, acs_dataset):
        first = SynthesisReport(schema=toy_schema)
        second = SynthesisReport(schema=acs_dataset.schema)
        with pytest.raises(ValueError):
            first.merge(second)

    def test_merge_accepts_many_reports(self, toy_schema):
        # Regression: merging W worker reports used to re-copy the growing
        # attempt list once per worker; merge now takes them all at once.
        reports = []
        for index in range(5):
            report = SynthesisReport(schema=toy_schema)
            report.record(make_attempt(toy_schema, passed=index % 2 == 0, value=index))
            reports.append(report)
        merged = reports[0].merge(*reports[1:])
        assert merged.num_attempts == 5
        assert merged.num_released == 3
        assert [a.candidate[0] for a in merged.attempts] == [0, 1, 0, 1, 0]

    def test_merged_truncates_at_release_target(self, toy_schema):
        chunks = []
        for _ in range(3):
            chunk = SynthesisReport(schema=toy_schema)
            chunk.record(make_attempt(toy_schema, passed=True))
            chunk.record(make_attempt(toy_schema, passed=False))
            chunk.record(make_attempt(toy_schema, passed=True))
            chunks.append(chunk)
        # Concatenated: P F P | P F P | P F P — the 3rd release is attempt 3.
        merged = SynthesisReport.merged(toy_schema, chunks, stop_after_released=3)
        assert merged.num_released == 3
        assert merged.num_attempts == 4
        assert merged.attempts[-1].released

    def test_arrays_round_trip(self, toy_schema):
        report = SynthesisReport(schema=toy_schema)
        for index in range(4):
            report.record(
                make_attempt(toy_schema, passed=index % 2 == 0, seed_index=index, value=index)
            )
        rebuilt = SynthesisReport.from_arrays(toy_schema, report.to_arrays())
        assert rebuilt.num_attempts == report.num_attempts
        assert rebuilt.num_released == report.num_released
        for original, restored in zip(report.attempts, rebuilt.attempts):
            assert original.seed_index == restored.seed_index
            assert np.array_equal(original.candidate, restored.candidate)
            assert original.test == restored.test

    def test_empty_arrays_round_trip(self, toy_schema):
        report = SynthesisReport(schema=toy_schema)
        rebuilt = SynthesisReport.from_arrays(toy_schema, report.to_arrays())
        assert rebuilt.num_attempts == 0
