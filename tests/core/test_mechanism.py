"""Tests for Mechanism 1 (seed -> candidate -> privacy test -> release)."""

import numpy as np
import pytest

from repro.core.mechanism import SynthesisMechanism
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams


@pytest.fixture(scope="module")
def mechanism(unnoised_model, acs_splits):
    params = PlausibleDeniabilityParams(k=20, gamma=4.0, epsilon0=1.0)
    return SynthesisMechanism(unnoised_model, acs_splits.seeds, params)


class TestConstruction:
    def test_requires_matching_schema(self, unnoised_model, toy_dataset):
        params = PlausibleDeniabilityParams(k=5, gamma=2.0)
        with pytest.raises(ValueError):
            SynthesisMechanism(unnoised_model, toy_dataset, params)

    def test_requires_at_least_k_seed_records(self, unnoised_model, acs_splits):
        params = PlausibleDeniabilityParams(k=10_000_000, gamma=2.0)
        with pytest.raises(ValueError):
            SynthesisMechanism(unnoised_model, acs_splits.seeds, params)

    def test_exposes_components(self, mechanism, unnoised_model, acs_splits):
        assert mechanism.model is unnoised_model
        assert mechanism.seed_dataset is acs_splits.seeds
        assert mechanism.params.k == 20


class TestPropose:
    def test_propose_returns_valid_attempt(self, mechanism, rng):
        attempt = mechanism.propose(rng)
        assert 0 <= attempt.seed_index < len(mechanism.seed_dataset)
        assert attempt.candidate.shape == (11,)
        assert attempt.test.plausible_seeds >= 0

    def test_plausible_seed_count_counts_matching_records(self, mechanism, rng):
        attempt = mechanism.propose(rng)
        # Recompute the plausible-seed count directly from the model.
        model = mechanism.model
        seeds = mechanism.seed_dataset
        probabilities = model.batch_seed_probabilities(seeds.data, attempt.candidate)
        seed_probability = model.seed_probability(
            seeds.record(attempt.seed_index), attempt.candidate
        )
        from repro.privacy.plausible_deniability import partition_numbers

        partitions = partition_numbers(probabilities, mechanism.params.gamma)
        seed_partition = partition_numbers(
            np.array([seed_probability]), mechanism.params.gamma
        )[0]
        assert attempt.test.plausible_seeds == int(np.sum(partitions == seed_partition))

    def test_evaluate_candidate_with_external_record(self, mechanism, rng):
        candidate = mechanism.seed_dataset.record(0).copy()
        attempt = mechanism.evaluate_candidate(0, candidate, rng)
        assert attempt.candidate is candidate


class TestGenerate:
    def test_generate_until_target_released(self, mechanism, rng):
        report = mechanism.generate(10, rng)
        assert report.num_released >= 10 or report.num_attempts >= 1000

    def test_generate_respects_max_attempts(self, unnoised_model, acs_splits, rng):
        # Impossible parameters: k equal to the seed-set size cannot be met by
        # a seed-dependent candidate, so the mechanism must stop at the limit.
        params = PlausibleDeniabilityParams(k=len(acs_splits.seeds), gamma=4.0)
        mechanism = SynthesisMechanism(unnoised_model, acs_splits.seeds, params)
        report = mechanism.generate(5, rng, max_attempts=20)
        assert report.num_attempts == 20
        assert report.num_released < 5

    def test_generate_zero_records(self, mechanism, rng):
        report = mechanism.generate(0, rng)
        assert report.num_attempts == 0

    def test_generate_negative_rejected(self, mechanism, rng):
        with pytest.raises(ValueError):
            mechanism.generate(-1, rng)

    def test_run_attempts_exact_count(self, mechanism, rng):
        report = mechanism.run_attempts(25, rng)
        assert report.num_attempts == 25

    def test_run_attempts_negative_rejected(self, mechanism, rng):
        with pytest.raises(ValueError):
            mechanism.run_attempts(-1, rng)

    def test_released_records_satisfy_plausible_deniability(self, unnoised_model, acs_splits, rng):
        # Deterministic test: every released record must have at least k
        # plausible seeds (Definition 1 via the bucket criterion).
        params = PlausibleDeniabilityParams(k=15, gamma=4.0)
        mechanism = SynthesisMechanism(unnoised_model, acs_splits.seeds, params)
        report = mechanism.run_attempts(40, rng)
        for attempt in report.attempts:
            if attempt.released:
                assert attempt.test.plausible_seeds >= 15

    def test_lower_k_gives_higher_pass_rate(self, unnoised_model, acs_splits):
        lenient = SynthesisMechanism(
            unnoised_model, acs_splits.seeds, PlausibleDeniabilityParams(k=5, gamma=4.0)
        ).run_attempts(60, np.random.default_rng(0))
        strict = SynthesisMechanism(
            unnoised_model, acs_splits.seeds, PlausibleDeniabilityParams(k=500, gamma=4.0)
        ).run_attempts(60, np.random.default_rng(0))
        assert lenient.pass_rate >= strict.pass_rate

    def test_early_termination_knobs_do_not_release_implausible_records(
        self, unnoised_model, acs_splits, rng
    ):
        params = PlausibleDeniabilityParams(
            k=10, gamma=4.0, max_plausible=10, max_check_plausible=2000
        )
        mechanism = SynthesisMechanism(unnoised_model, acs_splits.seeds, params)
        report = mechanism.run_attempts(30, rng)
        for attempt in report.attempts:
            if attempt.released:
                assert attempt.test.plausible_seeds >= 10
            assert attempt.test.records_checked <= 2000
