"""Tests for the end-to-end synthesis pipeline."""

import numpy as np
import pytest

from repro.core.config import GenerationConfig
from repro.core.pipeline import SynthesisPipeline
from repro.generative.builder import GenerativeModelSpec
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams


@pytest.fixture(scope="module")
def fitted_pipeline(acs_dataset):
    config = GenerationConfig(
        privacy=PlausibleDeniabilityParams(k=20, gamma=4.0, epsilon0=1.0),
        model=GenerativeModelSpec.with_total_epsilon(1.0, num_attributes=11, omega=9),
    )
    return SynthesisPipeline(acs_dataset, config, rng=np.random.default_rng(0)).fit()


class TestLifecycle:
    def test_explicit_rng_required(self, acs_dataset):
        # Same policy as the learners and the builder: no silent
        # default_rng(0) fallback.
        with pytest.raises(ValueError, match="rng"):
            SynthesisPipeline(acs_dataset)
        with pytest.raises(ValueError, match="rng"):
            SynthesisPipeline(acs_dataset, GenerationConfig(), rng=None)

    def test_accessors_require_fit(self, acs_dataset):
        pipeline = SynthesisPipeline(acs_dataset, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            _ = pipeline.model
        with pytest.raises(RuntimeError):
            _ = pipeline.splits
        with pytest.raises(RuntimeError):
            _ = pipeline.mechanism
        with pytest.raises(RuntimeError):
            _ = pipeline.marginal_model

    def test_fit_populates_components(self, fitted_pipeline):
        assert len(fitted_pipeline.model.tables) == 11
        assert len(fitted_pipeline.marginal_model.marginals) == 11
        assert fitted_pipeline.splits.total_records > 0
        assert fitted_pipeline.timings.model_learning_seconds > 0

    def test_generate_releases_requested_records(self, fitted_pipeline):
        report = fitted_pipeline.generate(20)
        assert report.num_released == 20
        released = report.released_dataset()
        assert released.schema == fitted_pipeline.splits.seeds.schema
        assert fitted_pipeline.timings.synthesis_seconds > 0

    def test_generate_marginals(self, fitted_pipeline):
        dataset = fitted_pipeline.generate_marginals(100)
        assert len(dataset) == 100

    def test_generate_without_fit_triggers_fit(self, acs_dataset):
        pipeline = SynthesisPipeline(
            acs_dataset,
            GenerationConfig(
                privacy=PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0),
                model=GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None),
            ),
            rng=np.random.default_rng(1),
        )
        report = pipeline.generate(5)
        assert report.num_released == 5


class TestPrivacyReporting:
    def test_model_guarantee_respects_configured_budget(self, fitted_pipeline):
        epsilon, delta = fitted_pipeline.model_privacy_guarantee()
        assert epsilon <= 1.0 + 1e-6
        assert delta <= 1e-8

    def test_release_guarantee_matches_theorem1(self, fitted_pipeline):
        epsilon, delta, t = fitted_pipeline.release_privacy_guarantee()
        params = fitted_pipeline.config.privacy
        from repro.privacy.plausible_deniability import theorem1_delta, theorem1_epsilon

        assert epsilon == pytest.approx(theorem1_epsilon(params.epsilon0, params.gamma, t))
        assert delta == pytest.approx(theorem1_delta(params.epsilon0, params.k, t))

    def test_release_guarantee_requires_randomized_test(self, acs_dataset):
        config = GenerationConfig(
            privacy=PlausibleDeniabilityParams(k=10, gamma=4.0),
            model=GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None),
        )
        pipeline = SynthesisPipeline(acs_dataset, config, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            pipeline.release_privacy_guarantee()

    def test_baseline_budget_tracked_separately(self, fitted_pipeline):
        # The marginals baseline must not inflate the main model's ledger.
        labels = fitted_pipeline.accountant.labels()
        assert "marginals/counts" not in labels


class TestEnginePath:
    def test_generate_via_in_process_engine(self, fitted_pipeline):
        report = fitted_pipeline.generate(8, num_workers=1)
        assert report.num_released == 8

    def test_config_num_workers_routes_to_engine(self, acs_dataset, monkeypatch):
        config = GenerationConfig(
            privacy=PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0),
            model=GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None),
            num_workers=1,
            chunk_size=64,
        )
        pipeline = SynthesisPipeline(acs_dataset, config, rng=np.random.default_rng(2))
        calls = []
        from repro.core import pipeline as pipeline_module

        original = pipeline_module.SynthesisEngine

        def _tracking(*args, **kwargs):
            calls.append(kwargs)
            return original(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "SynthesisEngine", _tracking)
        report = pipeline.generate(5)
        assert report.num_released == 5
        assert calls and calls[0]["num_workers"] == 1
        assert calls[0]["chunk_size"] == 64


class TestRunStoreCaching:
    def test_fit_cached_across_pipelines(self, acs_dataset, tmp_path):
        from repro.core.run_store import RunStore

        store = RunStore(tmp_path / "store")
        config = GenerationConfig(
            privacy=PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0),
            model=GenerativeModelSpec.with_total_epsilon(1.0, num_attributes=11, omega=9),
        )
        first = SynthesisPipeline(
            acs_dataset, config, rng=np.random.default_rng(5), run_store=store
        ).fit()
        report_first = first.generate(5)

        # Same dataset/config/seed: the second pipeline loads the artifact
        # (no refit) and, because the RNG is restored to its post-fit state,
        # generates bit-identical synthetics.
        import repro.core.pipeline as pipeline_module

        def _boom(*args, **kwargs):
            raise AssertionError("cached fit must not refit the model")

        original = pipeline_module.fit_bayesian_network
        pipeline_module.fit_bayesian_network = _boom
        try:
            second = SynthesisPipeline(
                acs_dataset, config, rng=np.random.default_rng(5), run_store=store
            ).fit()
        finally:
            pipeline_module.fit_bayesian_network = original
        report_second = second.generate(5)
        assert np.array_equal(
            report_first.all_candidates_dataset().data,
            report_second.all_candidates_dataset().data,
        )
        assert first.model_privacy_guarantee() == second.model_privacy_guarantee()

    def test_generation_knobs_do_not_invalidate_the_fit_key(self, acs_dataset):
        def key_for(**overrides):
            config = GenerationConfig(
                privacy=PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0),
                model=GenerativeModelSpec(
                    omega=9, epsilon_structure=None, epsilon_parameters=None
                ),
                **overrides,
            )
            return SynthesisPipeline(
                acs_dataset, config, rng=np.random.default_rng(5)
            ).fit_artifact_key()

        base = key_for()
        assert key_for(num_workers=2, batch_size=64, chunk_size=128) == base
        assert key_for(seed_fraction=0.5, structure_fraction=0.2) != base

    def test_different_seed_is_a_different_artifact(self, acs_dataset, tmp_path):
        from repro.core.run_store import RunStore

        store = RunStore(tmp_path / "store")
        config = GenerationConfig(
            privacy=PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0),
            model=GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None),
        )
        SynthesisPipeline(
            acs_dataset, config, rng=np.random.default_rng(5), run_store=store
        ).fit()
        artifacts = list((store.root / "artifacts").iterdir())
        SynthesisPipeline(
            acs_dataset, config, rng=np.random.default_rng(6), run_store=store
        ).fit()
        assert len(list((store.root / "artifacts").iterdir())) == len(artifacts) + 1
