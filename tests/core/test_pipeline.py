"""Tests for the end-to-end synthesis pipeline."""

import numpy as np
import pytest

from repro.core.config import GenerationConfig
from repro.core.pipeline import SynthesisPipeline
from repro.generative.builder import GenerativeModelSpec
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams


@pytest.fixture(scope="module")
def fitted_pipeline(acs_dataset):
    config = GenerationConfig(
        privacy=PlausibleDeniabilityParams(k=20, gamma=4.0, epsilon0=1.0),
        model=GenerativeModelSpec.with_total_epsilon(1.0, num_attributes=11, omega=9),
    )
    return SynthesisPipeline(acs_dataset, config, rng=np.random.default_rng(0)).fit()


class TestLifecycle:
    def test_accessors_require_fit(self, acs_dataset):
        pipeline = SynthesisPipeline(acs_dataset)
        with pytest.raises(RuntimeError):
            _ = pipeline.model
        with pytest.raises(RuntimeError):
            _ = pipeline.splits
        with pytest.raises(RuntimeError):
            _ = pipeline.mechanism
        with pytest.raises(RuntimeError):
            _ = pipeline.marginal_model

    def test_fit_populates_components(self, fitted_pipeline):
        assert len(fitted_pipeline.model.tables) == 11
        assert len(fitted_pipeline.marginal_model.marginals) == 11
        assert fitted_pipeline.splits.total_records > 0
        assert fitted_pipeline.timings.model_learning_seconds > 0

    def test_generate_releases_requested_records(self, fitted_pipeline):
        report = fitted_pipeline.generate(20)
        assert report.num_released == 20
        released = report.released_dataset()
        assert released.schema == fitted_pipeline.splits.seeds.schema
        assert fitted_pipeline.timings.synthesis_seconds > 0

    def test_generate_marginals(self, fitted_pipeline):
        dataset = fitted_pipeline.generate_marginals(100)
        assert len(dataset) == 100

    def test_generate_without_fit_triggers_fit(self, acs_dataset):
        pipeline = SynthesisPipeline(
            acs_dataset,
            GenerationConfig(
                privacy=PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0),
                model=GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None),
            ),
            rng=np.random.default_rng(1),
        )
        report = pipeline.generate(5)
        assert report.num_released == 5


class TestPrivacyReporting:
    def test_model_guarantee_respects_configured_budget(self, fitted_pipeline):
        epsilon, delta = fitted_pipeline.model_privacy_guarantee()
        assert epsilon <= 1.0 + 1e-6
        assert delta <= 1e-8

    def test_release_guarantee_matches_theorem1(self, fitted_pipeline):
        epsilon, delta, t = fitted_pipeline.release_privacy_guarantee()
        params = fitted_pipeline.config.privacy
        from repro.privacy.plausible_deniability import theorem1_delta, theorem1_epsilon

        assert epsilon == pytest.approx(theorem1_epsilon(params.epsilon0, params.gamma, t))
        assert delta == pytest.approx(theorem1_delta(params.epsilon0, params.k, t))

    def test_release_guarantee_requires_randomized_test(self, acs_dataset):
        config = GenerationConfig(
            privacy=PlausibleDeniabilityParams(k=10, gamma=4.0),
            model=GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None),
        )
        pipeline = SynthesisPipeline(acs_dataset, config)
        with pytest.raises(ValueError):
            pipeline.release_privacy_guarantee()

    def test_baseline_budget_tracked_separately(self, fitted_pipeline):
        # The marginals baseline must not inflate the main model's ledger.
        labels = fitted_pipeline.accountant.labels()
        assert "marginals/counts" not in labels
