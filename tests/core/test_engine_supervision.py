"""Worker supervision: crash detection, deterministic chunk retry, pool health.

The chaos tests SIGKILL a live worker at a chosen chunk (via the
:mod:`repro.testing.faults` harness) and assert the recovered run is
*bit-identical* to the undisturbed serial reference — chunk content is a pure
function of ``(base_seed, chunk_index)``, so a retry can never change the
released output, only the wall clock.
"""

import numpy as np
import pytest

from repro.core.engine import (
    ChunkRetryExhaustedError,
    EngineBrokenError,
    SynthesisEngine,
)
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams
from repro.testing import KillWorkerAtChunk
from repro.testing.invariants import assert_reports_identical

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def params():
    return PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0)


def serial_report(unnoised_model, acs_splits, params, **run):
    with SynthesisEngine(
        unnoised_model, acs_splits.seeds, params, chunk_size=16, batch_size=8
    ) as engine:
        if "num_released" in run:
            return engine.generate(
                run["num_released"],
                base_seed=run["base_seed"],
                max_attempts=run.get("max_attempts"),
            )
        return engine.run_attempts(run["num_attempts"], base_seed=run["base_seed"])


class TestCrashRecovery:
    def test_sigkilled_worker_is_respawned_and_run_is_bit_identical(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        fault = KillWorkerAtChunk(chunk_index=1, marker_dir=str(tmp_path), times=1)
        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
            fault_injector=fault,
        ) as engine:
            report = engine.run_attempts(48, base_seed=11)
            health = engine.pool_health()
        assert fault.kills_fired() == 1
        assert health["worker_restarts"] == 1
        assert health["chunk_retries"] == {1: 1}
        assert health["workers_alive"] == health["num_workers"] == 2
        assert not health["broken"]
        expected = serial_report(
            unnoised_model, acs_splits, params, num_attempts=48, base_seed=11
        )
        assert_reports_identical(expected, report)

    def test_until_n_run_survives_a_crash_and_matches_serial(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        fault = KillWorkerAtChunk(chunk_index=0, marker_dir=str(tmp_path), times=1)
        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
            fault_injector=fault,
        ) as engine:
            report = engine.generate(10, base_seed=3, max_attempts=2000)
        assert fault.kills_fired() == 1
        assert report.num_released == 10
        expected = serial_report(
            unnoised_model,
            acs_splits,
            params,
            num_released=10,
            base_seed=3,
            max_attempts=2000,
        )
        assert_reports_identical(expected, report)

    def test_pool_stays_usable_across_jobs_after_a_crash(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        fault = KillWorkerAtChunk(chunk_index=2, marker_dir=str(tmp_path), times=1)
        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
            fault_injector=fault,
        ) as engine:
            first = engine.run_attempts(48, base_seed=7)
            second = engine.run_attempts(48, base_seed=7)
        assert fault.kills_fired() == 1  # only the first job saw the fault
        assert_reports_identical(first, second)


class TestRetryExhaustion:
    def test_repeated_crashes_fail_the_job_but_not_the_engine(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        # times = max_chunk_retries + 1 kills the original execution and every
        # allowed retry of chunk 1; the job must fail cleanly and name the
        # chunk, and the repaired pool must serve the next job bit-exactly.
        fault = KillWorkerAtChunk(chunk_index=1, marker_dir=str(tmp_path), times=2)
        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
            max_chunk_retries=1,
            fault_injector=fault,
        ) as engine:
            with pytest.raises(ChunkRetryExhaustedError) as excinfo:
                engine.run_attempts(48, base_seed=11)
            assert excinfo.value.chunk_indices == (1,)
            health = engine.pool_health()
            assert health["worker_restarts"] == 2
            assert not health["broken"]
            # Fault markers are spent: the same job now runs to completion.
            report = engine.run_attempts(48, base_seed=11)
        assert fault.kills_fired() == 2
        expected = serial_report(
            unnoised_model, acs_splits, params, num_attempts=48, base_seed=11
        )
        assert_reports_identical(expected, report)

    def test_zero_retries_means_any_crash_fails_the_job(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        fault = KillWorkerAtChunk(chunk_index=0, marker_dir=str(tmp_path), times=1)
        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            max_chunk_retries=0,
            fault_injector=fault,
        ) as engine:
            with pytest.raises(ChunkRetryExhaustedError):
                engine.run_attempts(32, base_seed=5)


class TestBrokenEngine:
    def test_unstartable_pool_raises_engine_broken(
        self, unnoised_model, acs_splits, params
    ):
        # A spawn failure (here: an unpicklable fault injector) has no chunk
        # to retry deterministically — the pool is marked broken for good.
        engine = SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            fault_injector=lambda index: None,
        )
        try:
            with pytest.raises(EngineBrokenError):
                engine.run_attempts(16, base_seed=1)
            assert engine.pool_health()["broken"]
            with pytest.raises(EngineBrokenError):
                engine.run_attempts(16, base_seed=1)
            with pytest.raises(EngineBrokenError):
                engine.start()
        finally:
            engine.close()

    def test_validation_and_serial_health(self, unnoised_model, acs_splits, params):
        with pytest.raises(ValueError):
            SynthesisEngine(
                unnoised_model, acs_splits.seeds, params, max_chunk_retries=-1
            )
        with SynthesisEngine(unnoised_model, acs_splits.seeds, params) as engine:
            engine.run_attempts(8, base_seed=0)
            health = engine.pool_health()
        assert health["workers_alive"] == 0  # serial path has no pool
        assert health["worker_restarts"] == 0
        assert not health["broken"]


class TestSwallowedChunkRequeue:
    """A SIGKILL can lose *already-sent* chunk messages with the dead
    worker's queue feeder thread, not just the chunk in its inflight slot.
    Supervision must requeue every claimed-but-undelivered hole."""

    def test_holes_requeued_inflight_and_delivered_skipped(
        self, unnoised_model, acs_splits, params
    ):
        from queue import Empty

        from repro.core.engine import _Job, _Lane

        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
        ) as engine:
            engine.run_attempts(16, base_seed=0)  # spin the pool up
            job = _Job(
                job_id=99,
                chunk_size=16,
                batch_size=8,
                lanes=(_Lane(limit=80, base_seed=3, target_released=None),),
                plan=None,
                completed=frozenset(),
            )
            # Chunks 0-3 claimed; 0 and 2 delivered, 3 executing on a live
            # worker, 1 swallowed by a crash; 4 never claimed.
            engine._next_chunk.value = 4
            engine._inflight[0] = 3
            engine._chunk_retries = {}
            engine._retry_pending = set()
            engine._requeue_swallowed_chunks(job, {0: object(), 2: object()})
            engine._inflight[0] = -1
            requeued = []
            while True:
                try:
                    requeued.append(engine._retry_queue.get(timeout=1.0))
                except Empty:
                    break
            assert requeued == [1]
            assert engine._retry_pending == {1}
            # Holes are victims of someone else's crash, never charged.
            assert engine._chunk_retries == {}

    def test_hole_requeue_ignores_the_crash_retry_budget(
        self, unnoised_model, acs_splits, params
    ):
        # A hole is requeued even when its own budget is spent: the chunk
        # did not cause this crash, only its delivery was collateral damage.
        from repro.core.engine import _Job, _Lane

        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
            max_chunk_retries=1,
        ) as engine:
            engine.run_attempts(16, base_seed=0)
            job = _Job(
                job_id=99,
                chunk_size=16,
                batch_size=8,
                lanes=(_Lane(limit=48, base_seed=3, target_released=None),),
                plan=None,
                completed=frozenset(),
            )
            engine._next_chunk.value = 2
            engine._chunk_retries = {1: 1}  # already crash-retried once
            engine._retry_pending = set()
            engine._requeue_swallowed_chunks(job, {0: object()})
            assert engine._retry_queue.get(timeout=1.0) == 1
            assert engine._chunk_retries == {1: 1}  # unchanged, not exhausted


class TestPoolRebuild:
    """Recovery from a wedged pool: a SIGKILL landing inside the shared
    results queue's feeder lock silences every surviving worker, so the
    engine rebuilds the whole pool on fresh queues and resumes the job
    from the chunks already delivered."""

    def test_rebuild_pool_recovers_a_usable_pool(
        self, unnoised_model, acs_splits, params
    ):
        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
        ) as engine:
            first = engine.run_attempts(48, base_seed=7)
            engine._rebuild_pool()
            second = engine.run_attempts(48, base_seed=7)
            health = engine.pool_health()
        assert health["pool_rebuilds"] == 1
        assert health["workers_alive"] == 2
        assert not health["broken"]
        assert_reports_identical(first, second)

    def test_wedged_job_resumes_bit_identically_after_rebuild(
        self, unnoised_model, acs_splits, params
    ):
        from repro.core.engine import _PoolStuckError, chunk_rng

        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
        ) as engine:
            real = engine._run_on_pool
            calls = {"n": 0}

            def flaky(job, reports, tracker, run_id):
                calls["n"] += 1
                if calls["n"] == 1:
                    # Chunk 0 was delivered before the pool wedged.
                    lane = job.lanes[0]
                    reports[0] = engine._mechanism().run_attempts(
                        job.chunk_attempts(0),
                        chunk_rng(lane.base_seed, 0),
                        batch_size=job.batch_size,
                    )
                    raise _PoolStuckError("simulated wedge")
                # The resumed job adopted the delivered prefix as completed.
                assert 0 in job.completed
                return real(job, reports, tracker, run_id)

            engine._run_on_pool = flaky
            report = engine.run_attempts(48, base_seed=11)
            health = engine.pool_health()
        assert calls["n"] == 2
        assert health["pool_rebuilds"] == 1
        expected = serial_report(
            unnoised_model, acs_splits, params, num_attempts=48, base_seed=11
        )
        assert_reports_identical(expected, report)

    def test_repeatedly_wedged_job_breaks_the_engine(
        self, unnoised_model, acs_splits, params
    ):
        from repro.core.engine import _PoolStuckError

        with SynthesisEngine(
            unnoised_model,
            acs_splits.seeds,
            params,
            num_workers=2,
            chunk_size=16,
            batch_size=8,
        ) as engine:

            def always_wedged(job, reports, tracker, run_id):
                raise _PoolStuckError("simulated wedge")

            engine._run_on_pool = always_wedged
            with pytest.raises(EngineBrokenError):
                engine.run_attempts(48, base_seed=11)
            assert engine.pool_health()["broken"]
            assert (
                engine.pool_health()["pool_rebuilds"]
                == engine._MAX_POOL_REBUILDS
            )


class TestKillFaultHarness:
    def test_fault_only_fires_on_its_chunk(self, tmp_path):
        fault = KillWorkerAtChunk(chunk_index=3, marker_dir=str(tmp_path), times=1)
        fault.fire(0)  # wrong chunk: no kill, no marker
        assert fault.kills_fired() == 0

    def test_marker_claims_are_exclusive(self, tmp_path):
        fault = KillWorkerAtChunk(chunk_index=0, marker_dir=str(tmp_path), times=2)
        (tmp_path / "kill.0").touch()
        (tmp_path / "kill.1").touch()
        fault.fire(0)  # both kills already spent elsewhere: survives
        assert fault.kills_fired() == 2
