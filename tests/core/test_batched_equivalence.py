"""Equivalence of the batched synthesis engine and the single-record reference path.

The batched Mechanism 1 must be a pure performance optimization: probability
computations agree exactly with the per-record loop, release decisions for a
given candidate are identical under the deterministic test, and the sampled
candidates follow the same distribution.  Decision-level comparisons go
through the shared conformance checker
(:func:`repro.testing.invariants.check_batched_mechanism_parity`).
"""

import numpy as np
import pytest

from repro.core.mechanism import SynthesisMechanism
from repro.privacy.plausible_deniability import (
    PlausibleDeniabilityParams,
    batch_plausible_seed_counts,
    plausible_seed_count,
)
from repro.testing.invariants import check_batched_mechanism_parity


@pytest.fixture(scope="module")
def det_mechanism(unnoised_model, acs_splits):
    """Mechanism with the deterministic test (decisions are candidate-pure)."""
    params = PlausibleDeniabilityParams(k=20, gamma=4.0)
    return SynthesisMechanism(unnoised_model, acs_splits.seeds, params)


@pytest.fixture(scope="module")
def omega_set_model(unnoised_model):
    """The fitted network re-wrapped with an ω *set* ("ω ∈R [5-11]")."""
    from repro.generative.bayesian_network import BayesianNetworkSynthesizer

    return BayesianNetworkSynthesizer(
        unnoised_model.schema,
        unnoised_model.structure,
        unnoised_model.tables,
        omega=(5, 7, 9, 11),
    )


class TestModelBatchEquivalence:
    def test_candidate_factors_batch_matches_scalar(self, unnoised_model, acs_splits, rng):
        candidates = unnoised_model.generate_batch(acs_splits.seeds.data[:40], rng)
        for omega in (0, 5, 9, 11):
            batched = unnoised_model.candidate_factors_batch(candidates, omega)
            scalar = np.array(
                [unnoised_model.candidate_factor(candidate, omega) for candidate in candidates]
            )
            np.testing.assert_allclose(batched, scalar, rtol=1e-12)

    def test_probability_matrix_matches_stacked_rows(self, unnoised_model, acs_splits, rng):
        seeds = acs_splits.seeds.data
        candidates = unnoised_model.generate_batch(seeds[:25], rng)
        matrix = unnoised_model.batch_probability_matrix(seeds, candidates)
        stacked = np.vstack(
            [unnoised_model.batch_seed_probabilities(seeds, candidate) for candidate in candidates]
        )
        np.testing.assert_allclose(matrix, stacked, rtol=1e-12)

    def test_probability_matrix_matches_scalar_seed_probability(
        self, unnoised_model, acs_splits, rng
    ):
        seeds = acs_splits.seeds.data[:200]
        candidates = unnoised_model.generate_batch(seeds[:10], rng)
        matrix = unnoised_model.batch_probability_matrix(seeds, candidates)
        for c in range(candidates.shape[0]):
            for s in range(0, seeds.shape[0], 37):
                scalar = unnoised_model.seed_probability(seeds[s], candidates[c])
                assert matrix[c, s] == pytest.approx(scalar, rel=1e-12)

    def test_generate_batch_copies_fixed_attributes(self, unnoised_model, acs_splits, rng):
        seeds = acs_splits.seeds.data[:60]
        omega = 9
        out = unnoised_model.generate_batch(seeds, rng, omegas=np.full(60, omega))
        fixed = list(unnoised_model._fixed_attributes(omega))
        assert np.array_equal(out[:, fixed], seeds[:, fixed])

    def test_generate_batch_generated_records_have_positive_seed_probability(
        self, unnoised_model, acs_splits, rng
    ):
        seeds = acs_splits.seeds.data[:60]
        out = unnoised_model.generate_batch(seeds, rng)
        matrix = unnoised_model.batch_probability_matrix(seeds, out)
        assert np.all(matrix[np.arange(60), np.arange(60)] > 0.0)

    def test_generate_batch_matches_single_path_distribution(
        self, unnoised_model, acs_splits
    ):
        # Full re-sampling (omega = m) makes generation seed-independent, so
        # per-attribute frequencies from the two paths must agree within
        # sampling noise.
        m = len(unnoised_model.schema)
        seeds = np.tile(acs_splits.seeds.data[0], (1500, 1))
        batched = unnoised_model.generate_batch(
            seeds, np.random.default_rng(7), omegas=np.full(1500, m)
        )
        rng_single = np.random.default_rng(8)
        single = np.vstack(
            [unnoised_model.generate_with_omega(seeds[0], m, rng_single) for _ in range(1500)]
        )
        for attribute in range(m):
            cardinality = unnoised_model.schema[attribute].cardinality
            freq_batched = np.bincount(batched[:, attribute], minlength=cardinality) / 1500
            freq_single = np.bincount(single[:, attribute], minlength=cardinality) / 1500
            assert np.abs(freq_batched - freq_single).max() < 0.06

    def test_generate_batch_validates_inputs(self, unnoised_model, acs_splits, rng):
        with pytest.raises(ValueError):
            unnoised_model.generate_batch(acs_splits.seeds.data[0], rng)
        with pytest.raises(ValueError):
            unnoised_model.generate_batch(
                acs_splits.seeds.data[:5], rng, omegas=np.full(4, 9)
            )
        with pytest.raises(ValueError):
            unnoised_model.generate_batch(
                acs_splits.seeds.data[:5], rng, omegas=np.full(5, 99)
            )

    def test_generate_batch_empty(self, unnoised_model, rng):
        out = unnoised_model.generate_batch(
            np.empty((0, len(unnoised_model.schema)), dtype=np.int64), rng
        )
        assert out.shape == (0, len(unnoised_model.schema))


class TestBatchPlausibleSeedCounts:
    def test_matches_scalar_counts_without_knobs(self, rng):
        matrix = rng.random((30, 400)) * rng.integers(0, 2, size=(30, 400))
        seed_probs = np.clip(matrix.max(axis=1), 1e-9, 1.0)
        counts, partitions, checked, _ = batch_plausible_seed_counts(
            seed_probs, matrix, gamma=2.0
        )
        for index in range(30):
            count, partition, scanned, _ = plausible_seed_count(
                float(seed_probs[index]), matrix[index], gamma=2.0
            )
            assert counts[index] == count
            assert partitions[index] == partition
            assert checked[index] == scanned

    def test_max_plausible_caps_counts(self, rng):
        matrix = np.full((5, 100), 0.4)
        counts, _, _, saturated = batch_plausible_seed_counts(
            np.full(5, 0.4), matrix, gamma=2.0, max_plausible=10, rng=rng
        )
        assert np.all(counts == 10)
        assert np.all(saturated)

    def test_max_check_plausible_limits_scan(self, rng):
        matrix = np.full((5, 100), 0.4)
        counts, _, checked, _ = batch_plausible_seed_counts(
            np.full(5, 0.4), matrix, gamma=2.0, max_check_plausible=30, rng=rng
        )
        assert np.all(checked == 30)
        assert np.all(counts == 30)

    def test_early_termination_requires_rng(self):
        matrix = np.full((3, 10), 0.4)
        with pytest.raises(ValueError, match="requires an rng"):
            batch_plausible_seed_counts(
                np.full(3, 0.4), matrix, gamma=2.0, max_check_plausible=5
            )

    def test_scan_subsets_are_independent_per_candidate(self, rng):
        # Half the records are plausible; a limited scan hits a random subset,
        # so identical candidates should not always report identical counts.
        row = np.concatenate([np.full(50, 0.4), np.full(50, 1e-6)])
        matrix = np.tile(row, (40, 1))
        counts, _, _, _ = batch_plausible_seed_counts(
            np.full(40, 0.4), matrix, gamma=2.0, max_check_plausible=20, rng=rng
        )
        assert len(set(counts.tolist())) > 1

    def test_validates_shapes_and_positivity(self):
        with pytest.raises(ValueError):
            batch_plausible_seed_counts(np.array([0.5]), np.array([0.5]), gamma=2.0)
        with pytest.raises(ValueError):
            batch_plausible_seed_counts(
                np.array([0.5, 0.5]), np.full((3, 4), 0.5), gamma=2.0
            )
        with pytest.raises(ValueError):
            batch_plausible_seed_counts(
                np.array([0.5, 0.0]), np.full((2, 4), 0.5), gamma=2.0
            )


class TestMechanismBatchEquivalence:
    def test_batched_decisions_match_reference_evaluation(self, det_mechanism, rng):
        # Same candidates -> same release decisions: the deterministic test is
        # a pure function of the candidate, so re-running each batched attempt
        # through the single-record path must reproduce it exactly.
        attempts = check_batched_mechanism_parity(det_mechanism, rng, batch_size=50)
        assert len(attempts) == 50

    def test_run_attempts_batched_counts(self, det_mechanism, rng):
        report = det_mechanism.run_attempts_batched(70, rng, batch_size=32)
        assert report.num_attempts == 70

    def test_pass_rates_agree_within_noise(self, det_mechanism):
        single = det_mechanism.run_attempts(200, np.random.default_rng(21))
        batched = det_mechanism.run_attempts_batched(
            200, np.random.default_rng(22), batch_size=64
        )
        pooled = (single.num_released + batched.num_released) / 400
        sigma = np.sqrt(max(pooled * (1 - pooled), 1e-4) * (1 / 200 + 1 / 200))
        assert abs(single.pass_rate - batched.pass_rate) < 5 * sigma + 1e-9

    def test_generate_batched_stops_at_target(self, det_mechanism, rng):
        report = det_mechanism.generate(15, rng, batch_size=64)
        assert report.num_released == 15

    def test_generate_batched_respects_max_attempts(self, unnoised_model, acs_splits, rng):
        params = PlausibleDeniabilityParams(k=len(acs_splits.seeds), gamma=4.0)
        mechanism = SynthesisMechanism(unnoised_model, acs_splits.seeds, params)
        report = mechanism.generate(5, rng, max_attempts=20, batch_size=8)
        assert report.num_attempts == 20
        assert report.num_released < 5

    def test_propose_batch_with_randomized_test(self, unnoised_model, acs_splits, rng):
        params = PlausibleDeniabilityParams(k=20, gamma=4.0, epsilon0=1.0)
        mechanism = SynthesisMechanism(unnoised_model, acs_splits.seeds, params)
        attempts = mechanism.propose_batch(40, rng)
        thresholds = {attempt.test.threshold for attempt in attempts}
        assert len(thresholds) > 1  # one Laplace draw per candidate
        for attempt in attempts:
            assert attempt.test.passed == (
                attempt.test.plausible_seeds >= attempt.test.threshold
            )

    def test_propose_batch_with_early_termination_knobs(
        self, unnoised_model, acs_splits, rng
    ):
        params = PlausibleDeniabilityParams(
            k=10, gamma=4.0, max_plausible=10, max_check_plausible=500
        )
        mechanism = SynthesisMechanism(unnoised_model, acs_splits.seeds, params)
        for attempt in mechanism.propose_batch(30, rng):
            assert attempt.test.records_checked <= 500
            assert attempt.test.plausible_seeds <= 10
            if attempt.released:
                assert attempt.test.plausible_seeds >= 10

    def test_propose_batch_validates_batch_size(self, det_mechanism, rng):
        with pytest.raises(ValueError):
            det_mechanism.propose_batch(0, rng)


class TestFastCountEquivalence:
    """The prefix-key fast path must reproduce the dense-matrix counts exactly."""

    @pytest.mark.parametrize("model_fixture", ["unnoised_model", "omega_set_model"])
    def test_fast_counts_match_matrix_counts(
        self, model_fixture, acs_splits, rng, request
    ):
        model = request.getfixturevalue(model_fixture)
        mechanism = SynthesisMechanism(
            model, acs_splits.seeds, PlausibleDeniabilityParams(k=20, gamma=4.0)
        )
        seed_indices = rng.integers(len(acs_splits.seeds), size=60)
        candidates = model.generate_batch(acs_splits.seeds.data[seed_indices], rng)

        fast = mechanism._fast_batch_counts(seed_indices, candidates)
        assert fast is not None

        matrix = model.batch_probability_matrix(acs_splits.seeds.data, candidates)
        seed_probabilities = matrix[np.arange(60), seed_indices]
        counts, partitions, checked, saturated = batch_plausible_seed_counts(
            seed_probabilities, matrix, gamma=4.0
        )
        np.testing.assert_array_equal(fast[0], counts)
        np.testing.assert_array_equal(fast[1], partitions)
        np.testing.assert_array_equal(fast[2], checked)
        np.testing.assert_array_equal(fast[3], saturated)

    def test_fast_path_skipped_with_early_termination_knobs(
        self, unnoised_model, acs_splits, rng
    ):
        params = PlausibleDeniabilityParams(k=10, gamma=4.0, max_check_plausible=500)
        mechanism = SynthesisMechanism(unnoised_model, acs_splits.seeds, params)
        seed_indices = rng.integers(len(acs_splits.seeds), size=5)
        candidates = unnoised_model.generate_batch(
            acs_splits.seeds.data[seed_indices], rng
        )
        assert mechanism._fast_batch_counts(seed_indices, candidates) is None

    def test_omega_set_decisions_match_reference_evaluation(
        self, omega_set_model, acs_splits, rng
    ):
        mechanism = SynthesisMechanism(
            omega_set_model, acs_splits.seeds, PlausibleDeniabilityParams(k=20, gamma=4.0)
        )
        check_batched_mechanism_parity(mechanism, rng, batch_size=40)
