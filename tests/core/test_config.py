"""Tests for the generation configuration."""

import pytest

from repro.core.config import GenerationConfig
from repro.generative.builder import GenerativeModelSpec
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams


class TestGenerationConfig:
    def test_defaults(self):
        config = GenerationConfig()
        assert config.privacy.k == 50
        assert config.privacy.gamma == 4.0
        assert config.privacy.epsilon0 == 1.0

    def test_paper_defaults_match_section_6_1(self):
        config = GenerationConfig.paper_defaults()
        assert config.privacy.k == 50
        assert config.privacy.gamma == 4.0
        assert config.privacy.epsilon0 == 1.0
        assert config.model.omega == 9
        assert config.model.epsilon_structure is not None
        assert config.model.epsilon_parameters is not None

    def test_paper_defaults_with_custom_budget(self):
        tight = GenerationConfig.paper_defaults(total_epsilon=0.1)
        loose = GenerationConfig.paper_defaults(total_epsilon=1.0)
        assert tight.model.epsilon_parameters < loose.model.epsilon_parameters

    def test_split_fraction_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(seed_fraction=0.9, structure_fraction=0.2)
        with pytest.raises(ValueError):
            GenerationConfig(seed_fraction=-0.2)

    def test_max_attempts_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(max_attempts_per_release=0)

    def test_custom_components(self):
        config = GenerationConfig(
            privacy=PlausibleDeniabilityParams(k=10, gamma=2.0),
            model=GenerativeModelSpec(omega=5),
        )
        assert config.privacy.k == 10
        assert config.model.omega == 5
