"""Tests for the disk-backed experiment artifact store."""

import numpy as np
import pytest

from repro.core.run_store import (
    RunStore,
    RunStoreCorruptionError,
    canonical_payload,
    dataset_fingerprint,
)
from repro.datasets.dataset import Dataset


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestCanonicalPayload:
    def test_key_order_is_irrelevant(self):
        assert canonical_payload({"a": 1, "b": 2}) == canonical_payload({"b": 2, "a": 1})

    def test_tuples_and_numpy_scalars_normalize(self):
        assert canonical_payload((1, np.int64(2))) == canonical_payload([1, 2])
        assert canonical_payload(np.float64(0.5)) == canonical_payload(0.5)

    def test_non_json_values_rejected(self):
        with pytest.raises(TypeError):
            canonical_payload({"rng": np.random.default_rng(0)})


class TestArtifacts:
    def test_round_trip(self, store):
        key = RunStore.artifact_key("demo", {"x": 1})
        assert not store.has_artifact(key)
        store.save_artifact(key, {"array": np.arange(5), "label": "hi"})
        assert store.has_artifact(key)
        loaded = store.load_artifact(key)
        assert loaded["label"] == "hi"
        assert np.array_equal(loaded["array"], np.arange(5))

    def test_key_depends_on_kind_and_payload(self):
        base = RunStore.artifact_key("demo", {"x": 1})
        assert RunStore.artifact_key("demo", {"x": 2}) != base
        assert RunStore.artifact_key("other", {"x": 1}) != base
        assert RunStore.artifact_key("demo", {"x": 1}) == base

    def test_missing_artifact_raises(self, store):
        with pytest.raises(KeyError):
            store.load_artifact(RunStore.artifact_key("demo", {"x": 1}))

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ValueError):
            store.has_artifact("../escape")

    def test_shared_across_store_instances(self, tmp_path):
        key = RunStore.artifact_key("demo", {"x": 1})
        RunStore(tmp_path / "store").save_artifact(key, 42)
        assert RunStore(tmp_path / "store").load_artifact(key) == 42


class TestRunCheckpoints:
    def test_chunk_round_trip(self, store):
        arrays = {
            "seed_indices": np.array([1, 2, 3]),
            "candidates": np.arange(12).reshape(3, 4),
        }
        store.save_chunk("run-a", 0, arrays)
        store.save_chunk("run-a", 7, arrays)
        assert store.completed_chunks("run-a") == {0, 7}
        loaded = store.load_chunks("run-a")
        assert set(loaded) == {0, 7}
        assert np.array_equal(loaded[7]["candidates"], arrays["candidates"])

    def test_meta_round_trip(self, store):
        assert store.load_run_meta("run-b") is None
        store.save_run_meta("run-b", {"chunk_size": 16, "base_seed": 3})
        assert store.load_run_meta("run-b") == {"chunk_size": 16, "base_seed": 3}

    def test_unknown_run_is_empty(self, store):
        assert store.load_chunks("never-ran") == {}
        assert store.completed_chunks("never-ran") == set()

    def test_invalid_run_ids_rejected(self, store):
        for bad in ("", "../up", "a/b", ".hidden", "x" * 200):
            with pytest.raises(ValueError):
                store.save_run_meta(bad, {})

    def test_negative_chunk_index_rejected(self, store):
        with pytest.raises(ValueError):
            store.save_chunk("run-c", -1, {"x": np.arange(2)})


class TestCorruptionHandling:
    """Damaged store entries fail with a diagnosable error, never silently."""

    def test_truncated_artifact_raises_corruption_error(self, store):
        key = RunStore.artifact_key("demo", {"x": 1})
        store.save_artifact(key, {"array": np.arange(100)})
        path = store.root / "artifacts" / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[: 20])
        with pytest.raises(RunStoreCorruptionError, match="cannot be unpickled"):
            store.load_artifact(key)

    def test_garbage_artifact_raises_corruption_error(self, store):
        key = RunStore.artifact_key("demo", {"x": 2})
        path = store.root / "artifacts" / f"{key}.pkl"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(RunStoreCorruptionError):
            store.load_artifact(key)

    def test_corrupted_chunk_raises_corruption_error(self, store):
        store.save_chunk("run-x", 0, {"values": np.arange(10)})
        path = store.root / "runs" / "run-x" / "chunk_00000000.npz"
        path.write_bytes(b"\x00" * 16)
        with pytest.raises(RunStoreCorruptionError, match="chunk_00000000"):
            store.load_chunks("run-x")

    def test_corrupted_meta_raises_corruption_error(self, store):
        store.save_run_meta("run-y", {"chunk_size": 16})
        path = store.root / "runs" / "run-y" / "meta.json"
        path.write_text('{"chunk_size": 16')  # truncated JSON
        with pytest.raises(RunStoreCorruptionError, match="meta.json"):
            store.load_run_meta("run-y")

    def test_partial_tmp_write_is_invisible(self, store):
        # A crash between the temp write and the atomic rename leaves only a
        # *.tmp file; neither chunk listing nor loading may see it.
        store.save_chunk("run-z", 0, {"values": np.arange(4)})
        run_dir = store.root / "runs" / "run-z"
        (run_dir / "chunk_00000001.npz.tmp").write_bytes(b"partial")
        assert store.completed_chunks("run-z") == {0}
        assert set(store.load_chunks("run-z")) == {0}

    def test_missing_entries_still_raise_key_errors(self, store):
        # Corruption handling must not blur the absent-vs-damaged distinction.
        with pytest.raises(KeyError):
            store.load_artifact(RunStore.artifact_key("demo", {"x": 3}))
        assert store.load_run_meta("never") is None


class TestDatasetFingerprint:
    def test_sensitive_to_contents_and_schema(self, toy_schema, toy_dataset_small):
        base = dataset_fingerprint(toy_dataset_small)
        assert dataset_fingerprint(toy_dataset_small) == base
        mutated = toy_dataset_small.data.copy()
        mutated[0, 0] = (mutated[0, 0] + 1) % 2
        assert dataset_fingerprint(Dataset(toy_schema, mutated)) != base


class TestGarbageCollection:
    @staticmethod
    def _fill(store: RunStore, count: int, size: int = 2000) -> list[str]:
        import os
        import time as _time

        keys = []
        for index in range(count):
            key = RunStore.artifact_key("gc-test", {"index": index})
            store.save_artifact(key, b"x" * size)
            # Distinct, strictly increasing mtimes without sleeping.
            path = store.root / "artifacts" / f"{key}.pkl"
            stamp = _time.time() - (count - index) * 60
            os.utime(path, (stamp, stamp))
            keys.append(key)
        return keys

    def test_evicts_oldest_first_until_under_bound(self, tmp_path):
        store = RunStore(tmp_path / "store")
        keys = self._fill(store, 4)
        per_artifact = store.artifacts_size_bytes() // 4
        evicted = store.gc(max_bytes=2 * per_artifact)
        assert evicted == keys[:2]  # oldest two went first
        assert store.artifacts_size_bytes() <= 2 * per_artifact
        assert [store.has_artifact(key) for key in keys] == [False, False, True, True]

    def test_load_refreshes_recency(self, tmp_path):
        store = RunStore(tmp_path / "store")
        keys = self._fill(store, 3)
        store.load_artifact(keys[0])  # the oldest becomes the most recent
        per_artifact = store.artifacts_size_bytes() // 3
        evicted = store.gc(max_bytes=per_artifact)
        assert keys[0] not in evicted
        assert store.has_artifact(keys[0])

    def test_pinned_artifacts_survive_eviction(self, tmp_path):
        store = RunStore(tmp_path / "store")
        keys = self._fill(store, 4)
        pinned = {keys[0], keys[1]}  # pin the two *oldest* (worst case for LRU)
        evicted = store.gc(max_bytes=0, keep=pinned)
        assert set(evicted) == set(keys[2:])
        assert store.has_artifact(keys[0]) and store.has_artifact(keys[1])

    def test_gc_under_bound_is_a_noop(self, tmp_path):
        store = RunStore(tmp_path / "store")
        keys = self._fill(store, 2)
        assert store.gc(max_bytes=store.artifacts_size_bytes()) == []
        assert all(store.has_artifact(key) for key in keys)

    def test_gc_never_touches_run_checkpoints(self, tmp_path):
        store = RunStore(tmp_path / "store")
        self._fill(store, 2)
        store.save_run_meta("run1", {"sig": 1})
        store.save_chunk("run1", 0, {"a": np.arange(5)})
        store.gc(max_bytes=0)
        assert store.artifact_keys() == []
        assert store.load_run_meta("run1") == {"sig": 1}
        assert 0 in store.load_chunks("run1")

    def test_negative_bound_rejected(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.gc(max_bytes=-1)
