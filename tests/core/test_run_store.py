"""Tests for the disk-backed experiment artifact store."""

import numpy as np
import pytest

from repro.core.run_store import RunStore, canonical_payload, dataset_fingerprint
from repro.datasets.dataset import Dataset


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestCanonicalPayload:
    def test_key_order_is_irrelevant(self):
        assert canonical_payload({"a": 1, "b": 2}) == canonical_payload({"b": 2, "a": 1})

    def test_tuples_and_numpy_scalars_normalize(self):
        assert canonical_payload((1, np.int64(2))) == canonical_payload([1, 2])
        assert canonical_payload(np.float64(0.5)) == canonical_payload(0.5)

    def test_non_json_values_rejected(self):
        with pytest.raises(TypeError):
            canonical_payload({"rng": np.random.default_rng(0)})


class TestArtifacts:
    def test_round_trip(self, store):
        key = RunStore.artifact_key("demo", {"x": 1})
        assert not store.has_artifact(key)
        store.save_artifact(key, {"array": np.arange(5), "label": "hi"})
        assert store.has_artifact(key)
        loaded = store.load_artifact(key)
        assert loaded["label"] == "hi"
        assert np.array_equal(loaded["array"], np.arange(5))

    def test_key_depends_on_kind_and_payload(self):
        base = RunStore.artifact_key("demo", {"x": 1})
        assert RunStore.artifact_key("demo", {"x": 2}) != base
        assert RunStore.artifact_key("other", {"x": 1}) != base
        assert RunStore.artifact_key("demo", {"x": 1}) == base

    def test_missing_artifact_raises(self, store):
        with pytest.raises(KeyError):
            store.load_artifact(RunStore.artifact_key("demo", {"x": 1}))

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ValueError):
            store.has_artifact("../escape")

    def test_shared_across_store_instances(self, tmp_path):
        key = RunStore.artifact_key("demo", {"x": 1})
        RunStore(tmp_path / "store").save_artifact(key, 42)
        assert RunStore(tmp_path / "store").load_artifact(key) == 42


class TestRunCheckpoints:
    def test_chunk_round_trip(self, store):
        arrays = {
            "seed_indices": np.array([1, 2, 3]),
            "candidates": np.arange(12).reshape(3, 4),
        }
        store.save_chunk("run-a", 0, arrays)
        store.save_chunk("run-a", 7, arrays)
        assert store.completed_chunks("run-a") == {0, 7}
        loaded = store.load_chunks("run-a")
        assert set(loaded) == {0, 7}
        assert np.array_equal(loaded[7]["candidates"], arrays["candidates"])

    def test_meta_round_trip(self, store):
        assert store.load_run_meta("run-b") is None
        store.save_run_meta("run-b", {"chunk_size": 16, "base_seed": 3})
        assert store.load_run_meta("run-b") == {"chunk_size": 16, "base_seed": 3}

    def test_unknown_run_is_empty(self, store):
        assert store.load_chunks("never-ran") == {}
        assert store.completed_chunks("never-ran") == set()

    def test_invalid_run_ids_rejected(self, store):
        for bad in ("", "../up", "a/b", ".hidden", "x" * 200):
            with pytest.raises(ValueError):
                store.save_run_meta(bad, {})

    def test_negative_chunk_index_rejected(self, store):
        with pytest.raises(ValueError):
            store.save_chunk("run-c", -1, {"x": np.arange(2)})


class TestDatasetFingerprint:
    def test_sensitive_to_contents_and_schema(self, toy_schema, toy_dataset_small):
        base = dataset_fingerprint(toy_dataset_small)
        assert dataset_fingerprint(toy_dataset_small) == base
        mutated = toy_dataset_small.data.copy()
        mutated[0, 0] = (mutated[0, 0] + 1) % 2
        assert dataset_fingerprint(Dataset(toy_schema, mutated)) != base
